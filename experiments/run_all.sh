#!/bin/sh
# Regenerate every experiment and benchmark from scratch.
set -e
cargo build --release -p magneto-bench --bins
./target/release/eval_all "$@"
cargo bench --workspace
