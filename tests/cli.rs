//! Integration tests for the `magneto` CLI binary: the pretrain →
//! inspect → infer → learn → infer round trip through real process
//! invocations and on-disk bundle storage.

use std::path::PathBuf;
use std::process::Command;

fn magneto() -> Command {
    Command::new(env!("CARGO_BIN_EXE_magneto"))
}

fn temp_bundle(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("magneto_cli_test_{name}_{}.mag", std::process::id()))
}

fn run(cmd: &mut Command) -> (bool, String) {
    let out = cmd.output().expect("spawn magneto");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn full_cli_lifecycle() {
    let bundle = temp_bundle("lifecycle");

    // pretrain (tiny + fast so the test stays quick)
    let (ok, text) = run(magneto()
        .args(["pretrain", "--out"])
        .arg(&bundle)
        .args(["--fast", "--windows-per-class", "16", "--epochs", "6"]));
    assert!(ok, "pretrain failed:\n{text}");
    assert!(text.contains("< 5 MB: true"), "{text}");
    assert!(bundle.exists());

    // inspect
    let (ok, text) = run(magneto().arg("inspect").arg(&bundle));
    assert!(ok, "inspect failed:\n{text}");
    assert!(text.contains("drive") && text.contains("walk"), "{text}");
    assert!(text.contains("support set"), "{text}");

    // infer a known activity
    let (ok, text) = run(magneto()
        .arg("infer")
        .arg(&bundle)
        .args(["--activity", "still", "--seconds", "3"]));
    assert!(ok, "infer failed:\n{text}");
    assert!(text.contains("activity timeline"), "{text}");
    assert!(text.contains("uplink 0 B"), "{text}");

    // learn a new activity, writing back to the same bundle
    let (ok, text) = run(magneto()
        .arg("learn")
        .arg(&bundle)
        .args(["--label", "gesture_hi", "--activity", "gesture_hi", "--seconds", "15"]));
    assert!(ok, "learn failed:\n{text}");
    assert!(text.contains("gesture_hi"), "{text}");

    // the updated bundle knows 6 classes and can infer the new one
    let (ok, text) = run(magneto().arg("inspect").arg(&bundle));
    assert!(ok);
    assert!(text.contains("gesture_hi"), "{text}");

    std::fs::remove_file(&bundle).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    // No args -> usage, non-zero exit.
    let (ok, text) = run(&mut magneto());
    assert!(!ok);
    assert!(text.contains("usage"), "{text}");

    // Unknown subcommand.
    let (ok, _) = run(magneto().arg("frobnicate"));
    assert!(!ok);

    // Missing required flag.
    let (ok, text) = run(magneto().arg("pretrain"));
    assert!(!ok);
    assert!(text.contains("--out"), "{text}");

    // Inspecting a missing bundle.
    let (ok, text) = run(magneto().args(["inspect", "/nonexistent/x.mag"]));
    assert!(!ok);
    assert!(text.contains("error"), "{text}");

    // Unknown activity name.
    let bundle = temp_bundle("badusage");
    let (ok, _) = run(magneto()
        .args(["pretrain", "--out"])
        .arg(&bundle)
        .args(["--fast", "--windows-per-class", "8", "--epochs", "2"]));
    assert!(ok);
    let (ok, text) = run(magneto()
        .arg("infer")
        .arg(&bundle)
        .args(["--activity", "yoga"]));
    assert!(!ok);
    assert!(text.contains("unknown activity"), "{text}");
    std::fs::remove_file(&bundle).ok();
}
