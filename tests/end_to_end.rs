//! End-to-end integration tests spanning every crate: the full MAGNETO
//! lifecycle from Cloud initialisation to on-device personalisation.

use magneto::core::incremental::ModelState;
use magneto::core::CoreError;
use magneto::prelude::*;
use magneto::tensor::vector::DistanceMetric;

fn small_corpus(seed: u64) -> SensorDataset {
    SensorDataset::generate(&GeneratorConfig::base_five(20), seed)
}

fn fast_bundle(seed: u64) -> EdgeBundle {
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 8;
    cfg.seed = seed;
    CloudInitializer::new(cfg)
        .pretrain(&small_corpus(seed))
        .expect("pretrain")
        .0
}

#[test]
fn full_lifecycle_cloud_to_edge_to_personalisation() {
    // 1. Cloud initialisation.
    let bundle = fast_bundle(1);
    assert!(bundle.size_report(false).within_5mb());

    // 2. Transfer: serialise, "download", deserialise.
    let wire_bytes = bundle.to_bytes(false);
    let received = EdgeBundle::from_bytes(&wire_bytes).expect("decode");
    assert_eq!(received, bundle);

    // 3. Deploy and infer.
    let mut device = EdgeDevice::deploy(received, EdgeConfig::default()).expect("deploy");
    assert_eq!(device.classes().len(), 5);
    let probe = SensorDataset::generate(&GeneratorConfig::base_five(8), 99);
    let mut correct = 0;
    for w in &probe.windows {
        let pred = device.infer_window(&w.channels).expect("infer");
        assert!(device.classes().contains(&pred.label));
        assert!(pred.confidence > 0.0 && pred.confidence <= 1.0);
        if pred.label == w.label {
            correct += 1;
        }
    }
    // Five classes → 20% chance rate. The fast-demo model is deliberately
    // tiny, so assert it clearly learned (double the chance rate) rather
    // than pinning a seed-sensitive exact accuracy.
    assert!(
        correct * 5 > probe.windows.len() * 2,
        "accuracy should be well above the 20% chance rate: {correct}/{}",
        probe.windows.len()
    );

    // 4. Learn a new activity on-device.
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        20.0,
        7,
    );
    let report = device
        .learn_new_activity("gesture_hi", &recording)
        .expect("incremental")
        .committed()
        .expect("incremental committed");
    assert_eq!(report.classes_after.len(), 6);

    // 5. Calibrate an existing activity.
    let walk_recording = SensorDataset::record_session(
        "walk",
        ActivityKind::Walk,
        PersonProfile::nominal(),
        10.0,
        8,
    );
    device
        .calibrate_activity("walk", &walk_recording)
        .expect("calibration")
        .committed()
        .expect("calibration committed");
    assert_eq!(device.classes().len(), 6);

    // 6. Privacy invariant across the whole lifecycle.
    device.privacy_ledger().assert_no_uplink();
    assert!(device.privacy_ledger().downlink_bytes() > 0);
}

#[test]
fn quantized_bundle_deploys_and_infers() {
    let bundle = fast_bundle(2);
    let wire = bundle.to_bytes(true);
    assert!(wire.len() < bundle.to_bytes(false).len());
    let received = EdgeBundle::from_bytes(&wire).expect("decode quantized");
    let mut device = EdgeDevice::deploy(received, EdgeConfig::default()).expect("deploy");
    let probe = SensorDataset::generate(&GeneratorConfig::base_five(2), 5);
    for w in &probe.windows {
        device.infer_window(&w.channels).expect("infer");
    }
}

#[test]
fn whole_flow_is_deterministic() {
    let run = || {
        let bundle = fast_bundle(3);
        let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
        let recording = SensorDataset::record_session(
            "jump",
            ActivityKind::Jump,
            PersonProfile::nominal(),
            15.0,
            9,
        );
        device
            .learn_new_activity("jump", &recording)
            .unwrap()
            .committed()
            .unwrap();
        let probe = SensorDataset::generate(&GeneratorConfig::base_five(3), 11);
        probe
            .windows
            .iter()
            .map(|w| device.infer_window(&w.channels).unwrap().label)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn streaming_inference_across_activity_change() {
    let bundle = fast_bundle(4);
    let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
    let mut labels_seen = Vec::new();
    for (kind, seed) in [(ActivityKind::Still, 20u64), (ActivityKind::Run, 21)] {
        device.reset_session();
        let mut stream = SensorStream::new(
            kind.profile(),
            PersonProfile::nominal(),
            magneto::sensors::stream::StreamConfig::ideal(),
            SeededRng::new(seed),
        );
        let mut last = None;
        for _ in 0..(120 * 4) {
            let frame = stream.next().unwrap();
            if let Some(p) = device.push_frame(&frame).unwrap() {
                last = Some(p.smoothed_label);
            }
        }
        labels_seen.push(last.expect("at least one window"));
    }
    // The two activity phases must not produce the same stable label.
    assert_ne!(labels_seen[0], labels_seen[1]);
}

#[test]
fn model_state_survives_bundle_snapshot() {
    let bundle = fast_bundle(5);
    let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
    let recording = SensorDataset::record_session(
        "stairs_up",
        ActivityKind::StairsUp,
        PersonProfile::nominal(),
        15.0,
        12,
    );
    device
        .learn_new_activity("stairs_up", &recording)
        .unwrap()
        .committed()
        .unwrap();

    // Snapshot, restore on a "new phone", verify the learned class moved
    // with it.
    let snapshot = device.as_bundle().to_bytes(false);
    let restored = EdgeBundle::from_bytes(&snapshot).unwrap();
    let device2 = EdgeDevice::deploy(restored, EdgeConfig::default()).unwrap();
    assert!(device2.classes().contains(&"stairs_up".to_string()));
    assert_eq!(device2.classes(), device.classes());
}

#[test]
fn privacy_violation_error_carries_details() {
    let bundle = fast_bundle(6);
    let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
    match device.try_sync_to_cloud("telemetry") {
        Err(CoreError::PrivacyViolation { description, bytes }) => {
            assert_eq!(description, "telemetry");
            assert!(bytes > 0);
        }
        other => panic!("expected privacy violation, got {other:?}"),
    }
}

#[test]
fn model_state_assemble_matches_device_view() {
    let bundle = fast_bundle(7);
    let state = ModelState::assemble(
        bundle.model.clone(),
        bundle.support_set.clone(),
        bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .unwrap();
    assert_eq!(state.ncm.num_classes(), 5);
    let device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
    assert_eq!(device.state().ncm.labels(), state.ncm.labels());
}
