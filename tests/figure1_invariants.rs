//! Integration tests for the Figure-1 protocol comparison: the
//! qualitative relationships the paper's architecture argument rests on
//! must hold for any trained model.

use magneto::core::incremental::ModelState;
use magneto::prelude::*;
use magneto::tensor::vector::DistanceMetric;

struct Parts {
    bundle: EdgeBundle,
    state: ModelState,
    windows: Vec<Vec<Vec<f32>>>,
}

fn parts(seed: u64) -> Parts {
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(15), seed);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 6;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    let state = ModelState::assemble(
        bundle.model.clone(),
        bundle.support_set.clone(),
        bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .unwrap();
    let probe = SensorDataset::generate(&GeneratorConfig::base_five(4), seed ^ 77);
    let windows = probe.windows.into_iter().map(|w| w.channels).collect();
    Parts {
        bundle,
        state,
        windows,
    }
}

fn edge(p: &Parts, device: DeviceModel) -> EdgeProtocol {
    EdgeProtocol::new(
        p.bundle.pipeline.clone(),
        p.state.model.clone(),
        p.state.ncm.clone(),
        device,
        EnergyModel::lte_phone(),
        p.bundle.total_bytes(),
    )
}

fn cloud(p: &Parts, link: NetworkLink, seed: u64) -> CloudProtocol {
    CloudProtocol::new(
        p.bundle.pipeline.clone(),
        p.state.model.clone(),
        p.state.ncm.clone(),
        link,
        EnergyModel::lte_phone(),
        SeededRng::new(seed),
    )
}

#[test]
fn protocols_agree_on_every_label() {
    let p = parts(1);
    let mut e = edge(&p, DeviceModel::budget_phone());
    let mut c = cloud(&p, NetworkLink::lte(), 2);
    for w in &p.windows {
        assert_eq!(
            e.infer_window(w).unwrap().label,
            c.infer_window(w).unwrap().label
        );
    }
}

#[test]
fn edge_beats_cloud_on_latency_privacy_energy() {
    let p = parts(3);
    let mut e = edge(&p, DeviceModel::budget_phone());
    let mut c = cloud(&p, NetworkLink::wifi(), 4);
    for w in &p.windows {
        let eo = e.infer_window(w).unwrap();
        let co = c.infer_window(w).unwrap();
        assert!(eo.latency < co.latency, "latency: {eo:?} vs {co:?}");
        assert_eq!(eo.uplink_bytes, 0);
        assert!(co.uplink_bytes > 10_000);
        assert!(eo.energy_joules < co.energy_joules);
    }
    e.ledger().assert_no_uplink();
    assert!(c.ledger().uplink_bytes() > 0);
}

#[test]
fn worse_links_strictly_worsen_cloud_latency() {
    let p = parts(5);
    let mut prev = 0.0f64;
    for link in [
        NetworkLink::ideal(),
        NetworkLink::wifi(),
        NetworkLink::lte(),
        NetworkLink::cellular_3g(),
    ] {
        let mut c = cloud(&p, link, 6);
        let total: f64 = p
            .windows
            .iter()
            .map(|w| c.infer_window(w).unwrap().latency.as_secs_f64())
            .sum();
        assert!(total >= prev, "link ordering violated: {total} < {prev}");
        prev = total;
    }
}

#[test]
fn edge_latency_orders_by_device_speed() {
    let p = parts(7);
    let mut latencies = Vec::new();
    for device in [
        DeviceModel::flagship_phone(),
        DeviceModel::budget_phone(),
        DeviceModel::wearable(),
    ] {
        let mut e = edge(&p, device);
        latencies.push(e.infer_window(&p.windows[0]).unwrap().latency);
    }
    assert!(latencies[0] < latencies[1]);
    assert!(latencies[1] < latencies[2]);
}

#[test]
fn bundle_fits_every_target_device_class() {
    let p = parts(8);
    let bytes = p.bundle.total_bytes();
    for device in [
        DeviceModel::flagship_phone(),
        DeviceModel::budget_phone(),
        DeviceModel::wearable(),
    ] {
        assert!(device.fits_in_memory(bytes), "{}", device.name);
        assert!(device.fits_in_storage(bytes), "{}", device.name);
    }
}
