//! Property-based integration tests: platform invariants that must hold
//! for arbitrary activities, users, seeds and window contents.

use magneto::dsp::{FeatureExtractor, NUM_FEATURES};
use magneto::prelude::*;
use magneto::sensors::imu::SignalSynthesizer;
use proptest::prelude::*;

fn any_activity() -> impl Strategy<Value = ActivityKind> {
    prop::sample::select(vec![
        ActivityKind::Drive,
        ActivityKind::EScooter,
        ActivityKind::Run,
        ActivityKind::Still,
        ActivityKind::Walk,
        ActivityKind::GestureHi,
        ActivityKind::GestureCircle,
        ActivityKind::Jump,
        ActivityKind::StairsUp,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any synthesised window yields exactly 80 finite features.
    #[test]
    fn features_always_80_and_finite(kind in any_activity(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let person = PersonProfile::sample(&mut rng);
        let mut synth = SignalSynthesizer::new(kind.profile(), person, SeededRng::new(seed));
        let frames: Vec<_> = (0..120).map(|i| synth.frame(i as f64 / 120.0)).collect();
        let window = magneto::sensors::dataset::LabeledWindow::from_frames(kind.label(), &frames);
        let feats = FeatureExtractor::default().extract(&window.channels).unwrap();
        prop_assert_eq!(feats.len(), NUM_FEATURES);
        prop_assert!(feats.iter().all(|v| v.is_finite()));
    }

    /// Every synthesised frame is finite on all 22 channels.
    #[test]
    fn frames_are_always_finite(kind in any_activity(), seed in 0u64..500) {
        let mut synth = SignalSynthesizer::new(
            kind.profile(),
            PersonProfile::nominal(),
            SeededRng::new(seed),
        );
        for i in 0..240 {
            let f = synth.frame(i as f64 / 120.0);
            prop_assert!(f.values.iter().all(|v| v.is_finite()), "{kind:?} frame {i}");
        }
    }

    /// The in-place pipeline (`process_into` writing one feature-matrix
    /// row) is byte-identical to the allocating `process` for any window.
    #[test]
    fn process_into_equals_process(kind in any_activity(), seed in 0u64..500) {
        let mut synth = SignalSynthesizer::new(
            kind.profile(),
            PersonProfile::nominal(),
            SeededRng::new(seed),
        );
        let frames: Vec<_> = (0..120).map(|i| synth.frame(i as f64 / 120.0)).collect();
        let window = magneto::sensors::dataset::LabeledWindow::from_frames(kind.label(), &frames);
        let pipeline = magneto::dsp::PreprocessingPipeline::new(
            magneto::dsp::PipelineConfig::default(),
        );
        let allocated = pipeline.process(&window.channels).unwrap();
        let mut in_place = vec![0.0f32; NUM_FEATURES];
        pipeline.process_into(&window.channels, &mut in_place).unwrap();
        prop_assert_eq!(allocated, in_place);
    }

    /// One batched forward pass over stacked feature rows equals the
    /// per-sample embedding loop, row for row, for any batch — including
    /// batches past the register-tiled matmul dispatch threshold.
    #[test]
    fn batched_embedding_equals_per_sample(
        batch in 1usize..40,
        seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let model = magneto::core::ResidentModel::from(magneto::nn::SiameseNetwork::new(
            magneto::nn::Mlp::new(&[10, 8, 4], &mut rng).unwrap(),
            1.0,
        ));
        let rows: Vec<Vec<f32>> = (0..batch)
            .map(|_| (0..10).map(|_| rng.normal()).collect())
            .collect();
        let mut embedder = magneto::core::BatchEmbedder::new();
        let mut out = magneto::tensor::Matrix::default();
        embedder.embed_rows(&model, &rows, &mut out).unwrap();
        prop_assert_eq!(out.shape(), (batch, 4));
        for (i, row) in rows.iter().enumerate() {
            let single = model.embed_one(row).unwrap();
            prop_assert_eq!(out.row(i), single.as_slice(), "row {}", i);
        }
    }

    /// Dataset generation honours the requested shape for any size.
    #[test]
    fn dataset_shape_invariant(windows in 1usize..20, seed in 0u64..100) {
        let cfg = GeneratorConfig {
            windows_per_class: windows,
            ..GeneratorConfig::tiny()
        };
        let ds = SensorDataset::generate(&cfg, seed);
        prop_assert_eq!(ds.len(), windows * 5);
        for w in &ds.windows {
            prop_assert_eq!(w.channels.len(), 22);
            prop_assert_eq!(w.len(), cfg.window_len);
        }
    }

    /// Stratified splits conserve windows and never mix labels up.
    #[test]
    fn split_conserves_windows(frac in 0.1f64..0.9, seed in 0u64..50) {
        let ds = SensorDataset::generate(&GeneratorConfig::tiny(), seed);
        let mut rng = SeededRng::new(seed);
        let (train, test) = ds.split(frac, &mut rng);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let mut all: Vec<String> = train.windows.iter().chain(test.windows.iter())
            .map(|w| w.label.clone()).collect();
        all.sort();
        let mut orig: Vec<String> = ds.windows.iter().map(|w| w.label.clone()).collect();
        orig.sort();
        prop_assert_eq!(all, orig);
    }
}

proptest! {
    // Deployment-level properties get fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed, a freshly initialised device classifies every window
    /// into a known class, never panics, and never uplinks.
    #[test]
    fn device_total_on_arbitrary_inputs(seed in 0u64..50) {
        let corpus = SensorDataset::generate(&GeneratorConfig::base_five(8), seed);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 3;
        cfg.seed = seed;
        let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
        let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
        let probe = SensorDataset::generate(&GeneratorConfig::base_five(2), seed ^ 0xAB);
        for w in &probe.windows {
            let pred = device.infer_window(&w.channels).unwrap();
            prop_assert!(device.classes().contains(&pred.label));
            prop_assert!(pred.confidence.is_finite());
        }
        device.privacy_ledger().assert_no_uplink();
    }

    /// Bundle serialisation round-trips for any seed, both precisions.
    #[test]
    fn bundle_roundtrip_any_seed(seed in 0u64..50, quantized in any::<bool>()) {
        let corpus = SensorDataset::generate(&GeneratorConfig::base_five(6), seed);
        let mut cfg = CloudConfig::fast_demo();
        cfg.trainer.epochs = 2;
        cfg.seed = seed;
        let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
        let bytes = bundle.to_bytes(quantized);
        let back = EdgeBundle::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.registry, bundle.registry);
        prop_assert_eq!(back.support_set, bundle.support_set);
        prop_assert_eq!(back.model.dims(), bundle.model.dims());
        if quantized {
            prop_assert_eq!(back.model.precision(), magneto::core::Precision::Int8);
        } else {
            prop_assert_eq!(back.model, bundle.model);
        }
    }
}
