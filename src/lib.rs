//! # MAGNETO
//!
//! A Rust reproduction of *MAGNETO: Edge AI for Human Activity
//! Recognition — Privacy and Personalization* (EDBT 2024).
//!
//! MAGNETO pushes the whole HAR pipeline — data collection,
//! pre-processing, model adaptation/re-training/calibration, inference
//! and visualisation — onto the Edge device. After a one-time
//! Cloud → Edge bundle transfer, the device recognises activities in a
//! few milliseconds, learns brand-new user-defined activities on-device
//! without catastrophic forgetting, and never sends a byte of user data
//! back to the Cloud.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`tensor`] — dense linear algebra, seeded RNG, binary codecs;
//! * [`sensors`] — 22-channel synthetic smartphone sensor substrate
//!   (the stand-in for the paper's 100 GB collection campaigns);
//! * [`dsp`] — the pre-processing function (denoise → segment →
//!   80 statistical features → normalise);
//! * [`nn`] — from-scratch Siamese MLP with contrastive + distillation
//!   losses;
//! * [`core`] — the MAGNETO platform: Cloud initialisation, edge bundle,
//!   NCM inference, support set, incremental learning, privacy ledger;
//! * [`platform`] — the simulated Cloud/Edge deployment environment used
//!   for the paper's Figure-1 protocol comparison;
//! * [`fleet`] — concurrent multi-device serving runtime with
//!   cross-session micro-batching (sharded sessions, bounded queues,
//!   deterministic scheduling).
//!
//! ## Quickstart
//!
//! ```
//! use magneto::prelude::*;
//!
//! // Cloud (offline): pre-train on the open corpus and package.
//! let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 42);
//! let (bundle, _report) = CloudInitializer::new(CloudConfig::fast_demo())
//!     .pretrain(&corpus)
//!     .unwrap();
//! assert!(bundle.size_report(false).within_5mb());
//!
//! // Edge (online): deploy and infer locally.
//! let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
//! let probe = SensorDataset::generate(&GeneratorConfig::tiny(), 7);
//! let pred = device.infer_window(&probe.windows[0].channels).unwrap();
//! assert!(device.classes().contains(&pred.label));
//! device.privacy_ledger().check_no_uplink().unwrap();
//! ```

pub use magneto_core as core;
pub use magneto_dsp as dsp;
pub use magneto_fleet as fleet;
pub use magneto_nn as nn;
pub use magneto_platform as platform;
pub use magneto_sensors as sensors;
pub use magneto_tensor as tensor;

/// The most common imports for application code.
pub mod prelude {
    pub use magneto_core::{
        BundleSizeReport, CloudConfig, CloudInitializer, ConfusionMatrix, DriftMonitor,
        DriftStatus, EdgeBundle, EdgeConfig, EdgeDevice, HealingStats, LabelRegistry,
        NcmClassifier, Precision, PrivacyLedger, QuantizedSupportSet, Recalibrator,
        ResidentModel, ResidentSupport, SelectionStrategy, SelfHealingConfig, SupportSet,
    };
    pub use magneto_fleet::{Fleet, FleetConfig, FleetReply, ModelKey, SessionId, SubmitError};
    pub use magneto_platform::{
        CloudProtocol, DeviceModel, EdgeProtocol, EnergyModel, FleetAccounting, HarProtocol,
        NetworkLink,
    };
    pub use magneto_sensors::{
        ActivityKind, GeneratorConfig, PersonProfile, SensorDataset, SensorStream,
    };
    pub use magneto_tensor::SeededRng;
}
