//! `magneto` — command-line front end for the MAGNETO platform.
//!
//! A terminal stand-in for the paper's Android app: pre-train a bundle,
//! inspect it, run live inference sessions, teach new activities, and
//! calibrate — with the (personalised) bundle persisted to disk between
//! invocations, exactly like an app surviving restarts.
//!
//! ```sh
//! magneto pretrain --out device.mag
//! magneto inspect device.mag
//! magneto infer device.mag --activity walk --seconds 6
//! magneto learn device.mag --label gesture_hi --activity gesture_hi --seconds 25
//! magneto calibrate device.mag --label walk --seconds 20 --atypical
//! magneto demo
//! ```

use magneto::core::storage::{load_bundle, save_bundle};
use magneto::core::timeline::TimelineBuilder;
use magneto::core::Lineage;
use magneto::prelude::*;
use magneto::sensors::stream::StreamConfig;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(raw[i].clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  magneto pretrain  --out PATH [--windows-per-class N] [--epochs N] [--seed N] [--model-version N] [--fast] [--quantized] [--retune]
  magneto inspect   BUNDLE
  magneto infer     BUNDLE --activity NAME [--seconds N] [--seed N] [--atypical] [--precision f32|int8] [--retune]
  magneto learn     BUNDLE --label NAME --activity NAME [--seconds N] [--seed N] [--out PATH] [--precision f32|int8] [--retune]
  magneto calibrate BUNDLE --label NAME [--seconds N] [--seed N] [--atypical] [--out PATH] [--precision f32|int8] [--retune]
  magneto demo      [--fast] [--precision f32|int8]

--retune re-runs the kernel-plan autotune instead of loading the cached *.plan.json
--precision picks the resident execution precision: int8 keeps the quantised
  weights and support set resident (~4x smaller, int8 kernels end-to-end)

activities: drive e_scooter run still walk gesture_hi gesture_circle jump stairs_up"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    let result = match command.as_str() {
        "pretrain" => cmd_pretrain(&args),
        "inspect" => cmd_inspect(&args),
        "infer" => cmd_infer(&args),
        "learn" => cmd_learn(&args),
        "calibrate" => cmd_calibrate(&args),
        "demo" => cmd_demo(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn person_for(args: &Args) -> PersonProfile {
    if args.has("atypical") {
        let mut rng = SeededRng::new(args.num("seed", 0u64) ^ 0xA7);
        PersonProfile::sample_atypical(&mut rng)
    } else {
        PersonProfile::nominal()
    }
}

fn bundle_path(args: &Args) -> Result<PathBuf, String> {
    args.positional
        .first()
        .map(PathBuf::from)
        .ok_or_else(|| "missing bundle path".into())
}

fn precision_for(args: &Args) -> Result<Precision, String> {
    match args.flag("precision") {
        None => Ok(Precision::F32),
        Some(name) => Precision::parse(name).map_err(|e| e.to_string()),
    }
}

/// Install the process-wide execution context for this device.
///
/// The autotuned kernel plan is cached next to the bundle
/// (`*.plan.json`); first run — or `--retune` — pays a short
/// micro-benchmark pass, every later run loads the cache. A missing or
/// corrupt cache silently falls back to the host default: tuning state
/// must never stop the app from starting.
fn install_compute_plan(bundle: &Path, args: &Args) {
    use magneto::core::storage::{kernel_plan_path, load_kernel_plan, save_kernel_plan};
    let plan = if !args.has("retune") && kernel_plan_path(bundle).exists() {
        load_kernel_plan(bundle)
    } else {
        println!("[compute] autotuning kernel plan…");
        let plan = magneto::tensor::KernelPlan::autotune();
        if let Err(e) = save_kernel_plan(&plan, bundle) {
            eprintln!("warning: could not cache kernel plan: {e}");
        }
        plan
    };
    magneto::tensor::install_global(magneto::tensor::Exec::from_plan(plan));
    println!(
        "[compute] {} | host {}",
        plan.describe(),
        magneto::tensor::Backend::isa_summary()
    );
}

fn cmd_pretrain(args: &Args) -> Result<(), String> {
    let out = PathBuf::from(args.flag("out").ok_or("--out PATH is required")?);
    let windows = args.num("windows-per-class", 120usize);
    let epochs = args.num("epochs", 15usize);
    let seed = args.num("seed", 0u64);
    let mut config = if args.has("fast") {
        CloudConfig::fast_demo()
    } else {
        CloudConfig::default()
    };
    config.trainer.epochs = epochs;
    config.seed = seed;
    install_compute_plan(&out, args);

    println!("[cloud] generating corpus: {windows} windows x 5 activities (seed {seed})…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(windows), seed);
    println!("[cloud] pre-training ({epochs} epochs)…");
    let (bundle, report) = CloudInitializer::new(config)
        .pretrain(&corpus)
        .map_err(|e| e.to_string())?;
    println!(
        "[cloud] loss {:.4} -> {:.4} over {} epochs",
        report.training.epoch_losses.first().unwrap_or(&f32::NAN),
        report.training.final_loss().unwrap_or(f32::NAN),
        report.training.epochs_run
    );
    let version = args.num("model-version", 1u32);
    let bundle = bundle.with_lineage(Lineage::root(version));
    let quantized = args.has("quantized");
    save_bundle(&bundle, &out, quantized).map_err(|e| e.to_string())?;
    let sizes = bundle.size_report(quantized);
    println!(
        "[cloud] wrote {} ({}, {:.2} MiB, quantized: {quantized}, < 5 MB: {})",
        out.display(),
        bundle.version(),
        sizes.total_mib(),
        sizes.within_5mb()
    );
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let path = bundle_path(args)?;
    let bundle = load_bundle(&path).map_err(|e| e.to_string())?;
    let sizes = bundle.size_report(false);
    println!("bundle {}", path.display());
    let version = match &bundle.lineage {
        None => format!("{} (legacy, unversioned)", bundle.version()),
        Some(l) => match l.parent {
            None => format!("{} (root)", bundle.version()),
            Some(hash) => format!("{} (parent {hash:016x})", bundle.version()),
        },
    };
    println!("  version        : {version}");
    println!("  classes        : {:?}", bundle.registry.labels());
    println!("  backbone       : {:?}", bundle.model.dims());
    println!(
        "  precision      : {} ({} KiB resident)",
        bundle.model.precision(),
        bundle.model.resident_bytes() / 1024
    );
    println!(
        "  parameters     : {} ({} KiB at stored precision)",
        bundle.model.param_count(),
        bundle.model.resident_bytes() / 1024
    );
    println!(
        "  support set    : {} exemplars across {} classes ({} KiB)",
        bundle.support_set.total_samples(),
        bundle.support_set.num_classes(),
        bundle.support_set.bytes() / 1024
    );
    println!(
        "  serialized     : {:.2} MiB f32 / {:.2} MiB int8 (< 5 MB: {})",
        sizes.total_mib(),
        bundle.size_report(true).total_mib(),
        sizes.within_5mb()
    );
    Ok(())
}

fn load_device(path: &Path, precision: Precision) -> Result<EdgeDevice, String> {
    let bundle = load_bundle(path).map_err(|e| e.to_string())?;
    let config = EdgeConfig {
        precision,
        ..EdgeConfig::default()
    };
    let device = EdgeDevice::deploy(bundle, config).map_err(|e| e.to_string())?;
    println!(
        "[edge] precision {} — model+support resident ≈ {} KiB",
        device.precision(),
        device.resident_bytes() / 1024
    );
    Ok(device)
}

fn cmd_infer(args: &Args) -> Result<(), String> {
    let path = bundle_path(args)?;
    let activity = args.flag("activity").ok_or("--activity NAME is required")?;
    let kind = ActivityKind::from_label(activity)
        .ok_or_else(|| format!("unknown activity `{activity}`"))?;
    let seconds = args.num("seconds", 5usize);
    let seed = args.num("seed", 1u64);

    install_compute_plan(&path, args);
    let mut device = load_device(&path, precision_for(args)?)?;
    println!(
        "[edge] session: {seconds}s of `{activity}` (device knows {:?})",
        device.classes()
    );
    let mut stream = SensorStream::new(
        kind.profile(),
        person_for(args),
        StreamConfig::default(),
        SeededRng::new(seed),
    );
    let mut timeline = TimelineBuilder::new(1.0, 1);
    for second in 0..seconds {
        let mut last = None;
        for _ in 0..120 {
            if let Some(frame) = stream.poll() {
                if let Some(p) = device.push_frame(&frame).map_err(|e| e.to_string())? {
                    last = Some(p);
                }
            }
        }
        if let Some(p) = last {
            timeline.push(second as f64, &p.smoothed_label);
            println!(
                "  t={second:>3}s  ▷ {:<14} ({:>5.1}% conf, {:.1} ms)",
                p.smoothed_label,
                p.raw.confidence * 100.0,
                p.raw.latency.as_secs_f64() * 1e3
            );
        }
    }
    println!("\n{}", timeline.to_report());
    let stats = device.latency_stats();
    println!(
        "latency: mean {:.2} ms, p99 {:.2} ms over {} windows; uplink 0 B",
        stats.mean_us / 1e3,
        stats.p99_us / 1e3,
        stats.count
    );
    device
        .privacy_ledger()
        .check_no_uplink()
        .map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_learn(args: &Args) -> Result<(), String> {
    let path = bundle_path(args)?;
    let label = args.flag("label").ok_or("--label NAME is required")?;
    let activity = args.flag("activity").ok_or("--activity NAME is required")?;
    let kind = ActivityKind::from_label(activity)
        .ok_or_else(|| format!("unknown activity `{activity}`"))?;
    let seconds = args.num("seconds", 25.0f64);
    let seed = args.num("seed", 2u64);
    let out = args.flag("out").map(PathBuf::from).unwrap_or_else(|| path.clone());

    install_compute_plan(&path, args);
    let mut device = load_device(&path, precision_for(args)?)?;
    println!("[edge] recording {seconds:.0}s of `{label}`…");
    let recording =
        SensorDataset::record_session(label, kind, person_for(args), seconds, seed);
    println!("[edge] updating the model on-device…");
    let report = device
        .learn_new_activity(label, &recording)
        .and_then(|outcome| outcome.committed())
        .map_err(|e| e.to_string())?;
    println!(
        "[edge] {} epochs, final loss {:.4}; classes now {:?}",
        report.training.epochs_run,
        report.training.final_loss().unwrap_or(f32::NAN),
        report.classes_after
    );
    save_bundle(
        &device.as_bundle(),
        &out,
        device.precision() == Precision::Int8,
    )
    .map_err(|e| e.to_string())?;
    println!("[edge] saved updated bundle to {}", out.display());
    device
        .privacy_ledger()
        .check_no_uplink()
        .map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let path = bundle_path(args)?;
    let label = args.flag("label").ok_or("--label NAME is required")?;
    let kind = ActivityKind::from_label(label)
        .ok_or_else(|| format!("`{label}` is not a simulatable activity"))?;
    let seconds = args.num("seconds", 20.0f64);
    let seed = args.num("seed", 3u64);
    let out = args.flag("out").map(PathBuf::from).unwrap_or_else(|| path.clone());

    install_compute_plan(&path, args);
    let mut device = load_device(&path, precision_for(args)?)?;
    let person = person_for(args);
    println!(
        "[edge] recording {seconds:.0}s of the user's own `{label}` (atypicality {:.2})…",
        person.atypicality()
    );
    let recording = SensorDataset::record_session(label, kind, person, seconds, seed);
    let report = device
        .calibrate_activity(label, &recording)
        .and_then(|outcome| outcome.committed())
        .map_err(|e| e.to_string())?;
    println!(
        "[edge] calibrated `{label}` in {} epochs (final loss {:.4})",
        report.training.epochs_run,
        report.training.final_loss().unwrap_or(f32::NAN)
    );
    save_bundle(
        &device.as_bundle(),
        &out,
        device.precision() == Precision::Int8,
    )
    .map_err(|e| e.to_string())?;
    println!("[edge] saved updated bundle to {}", out.display());
    Ok(())
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    // The Figure-3 script end-to-end, through real storage.
    let dir = std::env::temp_dir().join(format!("magneto_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let bundle_file = dir.join("device.mag");

    println!("=== MAGNETO demo (storage-backed) ===\n");
    let pretrain_args = if args.has("fast") {
        vec![
            "--out".to_string(),
            bundle_file.display().to_string(),
            "--fast".to_string(),
            "--windows-per-class".to_string(),
            "40".to_string(),
            "--epochs".to_string(),
            "10".to_string(),
        ]
    } else {
        vec![
            "--out".to_string(),
            bundle_file.display().to_string(),
            "--windows-per-class".to_string(),
            "60".to_string(),
        ]
    };
    cmd_pretrain(&Args::parse(&pretrain_args))?;

    let precision = precision_for(args)?;
    let infer = |activity: &str| {
        cmd_infer(&Args::parse(&[
            bundle_file.display().to_string(),
            "--activity".to_string(),
            activity.to_string(),
            "--seconds".to_string(),
            "3".to_string(),
            "--precision".to_string(),
            precision.name().to_string(),
        ]))
    };
    println!("\n(a) still:");
    infer("still")?;
    println!("\n(b) walk:");
    infer("walk")?;
    println!("\n(c+d) record & learn gesture_hi:");
    cmd_learn(&Args::parse(&[
        bundle_file.display().to_string(),
        "--label".to_string(),
        "gesture_hi".to_string(),
        "--activity".to_string(),
        "gesture_hi".to_string(),
        "--precision".to_string(),
        precision.name().to_string(),
    ]))?;
    println!("\n(e) gesture_hi after learning (reloaded from storage):");
    infer("gesture_hi")?;

    std::fs::remove_dir_all(&dir).ok();
    println!("\ndemo complete; nothing ever left the device.");
    Ok(())
}
