//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser understands the shapes this
//! workspace actually derives on:
//!
//! - structs with named fields (including lifetime-generic structs and
//!   reference fields, for serialize-only envelopes),
//! - newtype structs,
//! - enums with unit variants (optionally with explicit discriminants),
//!   newtype variants, and struct variants,
//! - the `#[serde(skip_serializing)]`, `#[serde(skip_deserializing)]`,
//!   `#[serde(default)]`, `#[serde(default = "path")]` and
//!   `#[serde(skip_serializing_if = "path")]` field attributes.
//!
//! Representation matches real serde's external JSON encoding for these
//! shapes: structs become field maps, unit variants become their name as a
//! string, data-carrying variants become `{"Name": payload}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip_serializing: bool,
    skip_deserializing: bool,
    /// `Some("")` for `default`, `Some(path)` for `default = "path"`.
    default: Option<String>,
    /// Predicate path from `skip_serializing_if = "path"`; the field is
    /// omitted from the serialized map when `path(&field)` is true.
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Generic parameter list verbatim, e.g. `<'a>`; empty when absent.
    generics: String,
    kind: ItemKind,
}

/// Cursor over a flattened token list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume attributes (`#[...]`), returning any parsed serde attrs.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while self.at_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_serde_attr(g.stream(), &mut attrs);
                }
                other => panic!("serde shim derive: malformed attribute, found {other:?}"),
            }
        }
        attrs
    }

    /// Consume a visibility qualifier if present (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consume a generic parameter list if present and return it verbatim.
    fn skip_generics(&mut self) -> String {
        if !self.at_punct('<') {
            return String::new();
        }
        let mut depth = 0usize;
        let mut out = String::new();
        loop {
            let Some(t) = self.next() else {
                panic!("serde shim derive: unterminated generics");
            };
            let s = t.to_string();
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            if out.ends_with(|c: char| c.is_alphanumeric() || c == '_')
                && s.starts_with(|c: char| c.is_alphanumeric() || c == '_')
            {
                out.push(' ');
            }
            out.push_str(&s);
            if depth == 0 {
                return out;
            }
        }
    }

    /// Skip tokens until a top-level comma (or the end), consuming the comma.
    fn skip_to_comma(&mut self) {
        let mut angle = 0isize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut cur = Cursor::new(stream);
    if !cur.at_ident("serde") {
        return; // doc comment, #[default], etc.
    }
    cur.next();
    let Some(TokenTree::Group(g)) = cur.next() else {
        return; // bare `#[serde]` — nothing to do
    };
    let mut inner = Cursor::new(g.stream());
    while let Some(t) = inner.next() {
        let TokenTree::Ident(word) = t else { continue };
        let word = word.to_string();
        let mut value = None;
        if inner.at_punct('=') {
            inner.next();
            if let Some(TokenTree::Literal(lit)) = inner.next() {
                value = Some(lit.to_string().trim_matches('"').to_string());
            }
        }
        match word.as_str() {
            "skip" => {
                attrs.skip_serializing = true;
                attrs.skip_deserializing = true;
            }
            "skip_serializing" => attrs.skip_serializing = true,
            "skip_deserializing" => attrs.skip_deserializing = true,
            "default" => attrs.default = Some(value.unwrap_or_default()),
            "skip_serializing_if" => {
                attrs.skip_serializing_if =
                    Some(value.expect("serde shim derive: skip_serializing_if needs a path"));
            }
            other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = cur.skip_attrs();
        cur.skip_visibility();
        let name = cur.expect_ident("field name");
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field, found {other:?}"),
        }
        cur.skip_to_comma();
        fields.push(Field { name, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0isize;
    while let Some(t) = cur.next() {
        match t {
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle == 0 && cur.peek().is_some() =>
            {
                count += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attrs();
        let name = cur.expect_ident("variant name");
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                cur.next();
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        cur.skip_to_comma();
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_visibility();
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    let generics = cur.skip_generics();
    // A `where` clause would sit here; none of the workspace types use one.
    let kind = match (keyword.as_str(), cur.peek()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            if count_tuple_fields(g.stream()) == 1 {
                ItemKind::NewtypeStruct
            } else {
                panic!("serde shim derive: multi-field tuple structs are not supported")
            }
        }
        ("struct", _) => ItemKind::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Enum(parse_variants(g.stream()))
        }
        (kw, t) => panic!("serde shim derive: cannot parse {kw} body at {t:?}"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

fn default_expr(attrs: &FieldAttrs) -> String {
    match attrs.default.as_deref() {
        Some("") | None => "::std::default::Default::default()".to_string(),
        Some(path) => format!("{path}()"),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let generics = &item.generics;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip_serializing {
                    continue;
                }
                let push = format!(
                    "__fields.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                );
                match &f.attrs.skip_serializing_if {
                    Some(pred) => pushes.push_str(&format!(
                        "if !{pred}(&self.{}) {{\n{push}}}\n",
                        f.name
                    )),
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__fields)"
            )
        }
        ItemKind::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        // Struct variants build the map eagerly; a
                        // skip_serializing_if predicate on one would need
                        // the push-style builder — unused in-tree.
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip_serializing)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let output = format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {name}{generics} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    output.parse().expect("serde shim derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let fname = &f.name;
                if f.attrs.skip_deserializing {
                    inits.push_str(&format!("{fname}: {},\n", default_expr(&f.attrs)));
                } else if f.attrs.default.is_some() {
                    inits.push_str(&format!(
                        "{fname}: match ::serde::__opt_field(__map, \"{fname}\", \"{name}\")? {{\n\
                             ::std::option::Option::Some(__v) => __v,\n\
                             ::std::option::Option::None => {},\n\
                         }},\n",
                        default_expr(&f.attrs)
                    ));
                } else {
                    inits.push_str(&format!(
                        "{fname}: ::serde::__get_field(__map, \"{fname}\", \"{name}\")?,\n"
                    ));
                }
            }
            format!(
                "let __map = __v.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        ItemKind::NewtypeStruct => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Newtype => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let gets: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __seq = __inner.as_seq().ok_or_else(|| \
                                     ::serde::Error::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                                 if __seq.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::expected(\
                                         \"{arity}-element sequence\", \"{name}::{vname}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let fname = &f.name;
                            if f.attrs.skip_deserializing {
                                inits.push_str(&format!(
                                    "{fname}: {},\n",
                                    default_expr(&f.attrs)
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{fname}: ::serde::__get_field(__map, \"{fname}\", \
                                     \"{name}::{vname}\")?,\n"
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __map = __inner.as_map().ok_or_else(|| \
                                     ::serde::Error::expected(\"map\", \"{name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::expected(\
                         \"string or single-key map\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    let output = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    output.parse().expect("serde shim derive: generated invalid Deserialize impl")
}
