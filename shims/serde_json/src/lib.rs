//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the [`serde::Value`] data model as JSON text. The
//! supported API is exactly what this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], [`from_slice`].
//!
//! Numbers keep their integer/float distinction: integers print without a
//! decimal point, floats use Rust's shortest round-trip formatting, so
//! `f32`/`f64` values survive a text round-trip bit-for-bit. Non-finite
//! floats print as `null`, matching serde_json's lossy default.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
///
/// # Errors
/// Never fails for types produced by the shim's derive; the `Result`
/// return mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
///
/// # Errors
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize a value to compact JSON bytes.
///
/// # Errors
/// See [`to_string`].
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

/// Deserialize a value from JSON bytes.
///
/// # Errors
/// On invalid UTF-8, malformed JSON, or a shape mismatch with `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid utf8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "bad escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Value::Int(i)),
                // Fall back to float on overflow.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error::custom(format!("bad number `{text}`: {e}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.25e2").unwrap(), -225.0);
    }

    #[test]
    fn f32_text_roundtrip_is_exact() {
        for v in [0.1f32, 1.0 / 3.0, f32::MIN, f32::MAX, -0.0, 1e-38] {
            let s = to_string(&v).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}✋";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0, 4.5]];
        let back: Vec<Vec<f32>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("walk".to_string(), 3usize);
        m.insert("run".to_string(), 1usize);
        let back: std::collections::BTreeMap<String, usize> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![1u32, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u32> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<u32>("1 junk").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
