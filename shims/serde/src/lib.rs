//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `serde` dependency is replaced by this small self-contained
//! crate. It keeps the parts of the serde surface the workspace actually
//! uses: `#[derive(Serialize, Deserialize)]` on structs and enums, the
//! `Serialize`/`Deserialize` traits, and enough of serde's data model to
//! round-trip every type in the repo through JSON (see the sibling
//! `serde_json` shim).
//!
//! The data model is a single self-describing [`Value`] tree instead of
//! serde's visitor machinery: `Serialize` renders a type into a `Value`,
//! `Deserialize` reads one back. Representations match real serde's JSON
//! behaviour where the workspace depends on it (field maps for structs,
//! string for unit enum variants, `{"Variant": {..}}` for struct variants,
//! `{"secs", "nanos"}` for `Duration`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

/// Self-describing serialized value (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (wide enough for `u64`/`i64`/`usize` without loss).
    Int(i128),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key → value map with stable insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// View as a field map, if this value is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as a sequence, if this value is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a string, if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Build a type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {context}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the shim.
pub type Result<T> = std::result::Result<T, Error>;

/// Render `self` into the serialized data model.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the serialized data model.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`].
    fn from_value(v: &Value) -> Result<Self>;
}

// ---------------------------------------------------------------------------
// Derive support helpers (referenced by generated code; not a public API).
// ---------------------------------------------------------------------------

/// Look up a required struct field in a field map.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(map: &[(String, Value)], key: &str, ctx: &str) -> Result<T> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error::custom(format!("{ctx}.{key}: {e}"))),
        None => Err(Error::custom(format!("missing field `{key}` in {ctx}"))),
    }
}

/// Look up an optional struct field (used when a `default` is declared).
#[doc(hidden)]
pub fn __opt_field<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<Option<T>> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v)
            .map(Some)
            .map_err(|e| Error::custom(format!("{ctx}.{key}: {e}"))),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self> {
                let wide = match v {
                    Value::Int(i) => *i,
                    // Tolerate integral floats (JSON has one number type).
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => *f as i128,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows `&str` zero-copy from the input; this value
    /// model owns its strings, so `&'static str` fields are interned
    /// instead. The intern table grows by one entry per *distinct* string
    /// ever deserialized (these fields hold short diagnostic labels).
    fn from_value(v: &Value) -> Result<Self> {
        use std::collections::BTreeSet;
        use std::sync::{Mutex, OnceLock};

        static INTERN: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();

        let s = match v {
            Value::Str(s) => s.as_str(),
            _ => return Err(Error::expected("string", "&str")),
        };
        let table = INTERN.get_or_init(|| Mutex::new(BTreeSet::new()));
        let mut guard = table.lock().expect("intern table poisoned");
        if let Some(interned) = guard.get(s) {
            return Ok(interned);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        guard.insert(leaked);
        Ok(leaked)
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self> {
        let seq = v.as_seq().ok_or_else(|| Error::expected("sequence", "array"))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                seq.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("2-element sequence", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::expected("3-element sequence", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self> {
        match v.as_seq() {
            Some([a, b, c, d]) => Ok((
                A::from_value(a)?,
                B::from_value(b)?,
                C::from_value(c)?,
                D::from_value(d)?,
            )),
            _ => Err(Error::expected("4-element sequence", "tuple")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic, matching the
        // expectations of byte-level footprint tests.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "HashMap"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i128)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i128)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self> {
        let m = v.as_map().ok_or_else(|| Error::expected("map", "Duration"))?;
        let secs: u64 = __get_field(m, "secs", "Duration")?;
        let nanos: u32 = __get_field(m, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self> {
        Ok(v.clone())
    }
}
