//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API shape the bench targets use (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `Bencher::iter`,
//! `iter_batched`, `BenchmarkId`, `black_box`) with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery: warm up
//! briefly, time batches until a time budget is spent, report the median
//! per-iteration time.
//!
//! Command-line behaviour matches what cargo drives: `--bench` (passed by
//! `cargo bench`) runs the benchmarks, `--test` (passed by
//! `cargo test --benches`) exits immediately after checking the harness
//! wires up, and a bare positional argument filters benchmarks by
//! substring.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (allows `&str` or `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// The label to report under.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the measured routine.
    elapsed_per_iter: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `routine` called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: a few calls to page in code and data.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(60) && warmup_iters < 1_000 {
            black_box(routine());
            warmup_iters += 1;
        }

        let mut samples: Vec<f64> = Vec::new();
        let budget = self.measurement_time;
        let run_start = Instant::now();
        // Batch size chosen so one batch is ~1/20 of the budget.
        let per_iter = (warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64)
            .max(1e-9);
        let batch = ((budget.as_secs_f64() / 20.0 / per_iter) as u64).clamp(1, 1_000_000);
        while run_start.elapsed() < budget || samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.elapsed_per_iter = Duration::from_secs_f64(samples[samples.len() / 2]);
    }

    /// Measure `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup.
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let mut samples: Vec<f64> = Vec::new();
        let budget = self.measurement_time;
        let run_start = Instant::now();
        while run_start.elapsed() < budget || samples.len() < 5 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_secs_f64());
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        self.elapsed_per_iter = Duration::from_secs_f64(samples[samples.len() / 2]);
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[derive(Debug, Clone)]
struct Mode {
    /// `cargo test --benches` passes `--test`: verify wiring, skip timing.
    test_only: bool,
    /// Positional argument: substring filter on benchmark labels.
    filter: Option<String>,
}

impl Mode {
    fn from_args() -> Self {
        let mut test_only = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_only = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Mode { test_only, filter }
    }

    fn selects(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::from_args(),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Override the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        if !self.mode.selects(label) {
            return;
        }
        if self.mode.test_only {
            println!("{label}: bench harness ok (skipped under --test)");
            return;
        }
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        println!("{label:<56} time: [{}]", format_time(b.elapsed_per_iter));
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: IntoBenchmarkId, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            measurement_time: Duration::from_millis(10),
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.elapsed_per_iter > Duration::ZERO);

        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(b.elapsed_per_iter > Duration::ZERO);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).into_label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }
}
