//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `Bytes`/`BytesMut`/`Buf`/`BufMut` the codec
//! modules in this workspace use. Semantics match the real crate at the
//! API level (a `Bytes` is a consumable view; reading advances it), but
//! the implementation is a plain `Vec<u8>` with an offset — no reference
//! counting or zero-copy slicing, which the workspace never relies on.

use std::ops::{Bound, Deref, RangeBounds};

/// An immutable byte buffer that is consumed by reading from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    off: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer over a static byte slice (copied; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
            off: 0,
        }
    }

    /// Buffer holding a copy of `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
            off: 0,
        }
    }

    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.off
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..]
    }

    /// Copy of the unread bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A new buffer over a sub-range of the unread bytes.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.as_slice()[start..end].to_vec(),
            off: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, off: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read-side cursor operations over a byte buffer.
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Discard `cnt` bytes from the front.
    ///
    /// # Panics
    /// If `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    ///
    /// # Panics
    /// On underflow.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read one signed byte.
    ///
    /// # Panics
    /// On underflow.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Read a little-endian `u16`.
    ///
    /// # Panics
    /// On underflow.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    ///
    /// # Panics
    /// On underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    ///
    /// # Panics
    /// On underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian `f32`.
    ///
    /// # Panics
    /// On underflow.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    ///
    /// # Panics
    /// On underflow.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Fill `dst` from the front of the buffer.
    ///
    /// # Panics
    /// On underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Split off the next `len` bytes as an owned buffer.
    ///
    /// # Panics
    /// On underflow.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.off += cnt;
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copy of the written bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freeze into an immutable, readable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            off: 0,
        }
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations over a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.put_f32_le(-1.25);
        buf.put_u8(0xAB);
        buf.put_i8(-3);
        assert_eq!(buf.len(), 10);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 10);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_f32_le(), -1.25);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_i8(), -3);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_copy_to_bytes() {
        let b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let mut c = b.clone();
        let front = c.copy_to_bytes(2);
        assert_eq!(front.as_slice(), &[1, 2]);
        assert_eq!(c.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.advance(3);
    }
}
