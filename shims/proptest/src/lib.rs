//! Offline stand-in for `proptest`.
//!
//! Supports the property-test surface this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range/tuple/closure strategies, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the assertion message directly. Case generation is deterministic —
//! the RNG is seeded from the test function's name — so failures reproduce
//! across runs and machines.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed deterministically from a test name (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}


pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy built from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Box the strategy (type erasure).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    // span can exceed u64 only for 128-bit-wide full ranges,
                    // which this workspace never uses.
                    (lo + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as f64;
                    let hi = self.end as f64;
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as f64;
                    let hi = *self.end() as f64;
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Choose uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e3
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1e3
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Namespaced access to strategy modules, mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

// Re-exports so macro expansions can use absolute paths.
pub use strategy::Strategy;
pub use test_runner::ProptestConfig;

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Define property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// function running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let ($($arg,)*) = (
                    $( $crate::Strategy::sample(&($strat), &mut __rng), )*
                );
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

// Keep the unused-import lints honest in downstream crates.
#[doc(hidden)]
pub struct __Unused(PhantomData<(Range<u8>, RangeInclusive<u8>)>);

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in -50i32..=50, u in 3usize..9, f in 0.5f32..2.0) {
            prop_assert!((-50..=50).contains(&v));
            prop_assert!((3..9).contains(&u));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_and_map_compose(
            xs in prop::collection::vec((-8i32..=8).prop_map(|v| v * 2), 2..6),
            flag in any::<bool>(),
            pick in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|v| v % 2 == 0));
            prop_assert!(flag || !flag);
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        #[test]
        fn flat_map_links_dimensions(
            (len, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..10, n))
            }),
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
