//! A "day in the life" session: one continuous multi-activity recording
//! (still → walk → drive → walk → still) streamed through the deployed
//! device and aggregated into the activity timeline a fitness/health app
//! would display — the §1 application the paper motivates.
//!
//! ```sh
//! cargo run --release --example daily_timeline
//! ```

use magneto::core::timeline::TimelineBuilder;
use magneto::prelude::*;
use magneto::sensors::SessionScript;

fn main() {
    println!("[cloud] pre-training…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(60), 21);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 15;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();

    // One continuous 85 s errand, with smooth transitions.
    let script = SessionScript::errand(PersonProfile::nominal());
    println!(
        "[user]  recording one continuous {:.0}s errand: still → walk → drive → walk → still\n",
        script.duration_s()
    );
    let frames = script.synthesize(&mut SeededRng::new(22));

    // Stream through the device; build the timeline with 3-window
    // hysteresis against transition flicker.
    let mut timeline = TimelineBuilder::new(1.0, 3);
    for frame in &frames {
        if let Some(pred) = device.push_frame(frame).expect("inference") {
            timeline.push(frame.timestamp.floor(), &pred.smoothed_label);
        }
    }

    println!("{}", timeline.to_report());

    // Compare against ground truth segment by segment.
    println!("ground truth:");
    for t in script.truth() {
        println!("  {:>8.1}s – {:>8.1}s  {}", t.start_s, t.end_s, t.label);
    }

    // Windows correctly labelled (1 s resolution).
    let truth = script.truth();
    let label_at = |t: f64| {
        truth
            .iter()
            .find(|s| t >= s.start_s && t < s.end_s)
            .map(|s| s.label.clone())
            .unwrap_or_default()
    };
    let mut correct = 0usize;
    let mut total = 0usize;
    for seg in timeline.segments() {
        let mut t = seg.start_s;
        while t < seg.end_s {
            total += 1;
            if label_at(t + 0.5) == seg.label {
                correct += 1;
            }
            t += 1.0;
        }
    }
    println!(
        "\nsecond-level timeline accuracy: {:.1}% ({} / {} seconds)",
        100.0 * correct as f64 / total.max(1) as f64,
        correct,
        total
    );
    if let Err(e) = device.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    println!("uplink bytes: 0 ✓");
}
