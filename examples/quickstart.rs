//! Quickstart: the full MAGNETO lifecycle in ~40 lines.
//!
//! Cloud initialisation → bundle transfer → edge inference, mirroring the
//! architecture of Figure 2 of the paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use magneto::prelude::*;

fn main() {
    // ---------------- Cloud (offline) ----------------------------------
    // Simulated stand-in for the paper's collection campaigns: five base
    // activities, many users, one-second 22-channel windows at 120 Hz.
    println!("[cloud] generating pre-training corpus…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(60), 42);
    println!(
        "[cloud] corpus: {} windows over {:?}",
        corpus.len(),
        corpus.classes()
    );

    println!("[cloud] pre-training the Siamese embedding network…");
    let mut config = CloudConfig::fast_demo();
    config.trainer.epochs = 15;
    let (bundle, report) = CloudInitializer::new(config)
        .pretrain(&corpus)
        .expect("cloud initialisation");
    println!(
        "[cloud] trained {} epochs, loss {:.4} -> {:.4}",
        report.training.epochs_run,
        report.training.epoch_losses[0],
        report.training.final_loss().unwrap_or(f32::NAN)
    );

    let sizes = bundle.size_report(false);
    println!(
        "[cloud] bundle: pipeline {} B + model {} B + support set {} B = {:.2} MiB (< 5 MB: {})",
        sizes.pipeline_bytes,
        sizes.model_bytes,
        sizes.support_set_bytes,
        sizes.total_mib(),
        sizes.within_5mb()
    );

    // ---------------- Edge (online) ------------------------------------
    let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).expect("deploy");
    println!("[edge]  deployed; classes = {:?}", device.classes());

    // Classify held-out windows of every base activity.
    let probe = SensorDataset::generate(&GeneratorConfig::base_five(4), 777);
    let mut cm = ConfusionMatrix::new();
    for w in &probe.windows {
        let pred = device.infer_window(&w.channels).expect("inference");
        cm.record(&w.label, &pred.label);
    }
    println!("[edge]  held-out accuracy: {:.1}%", cm.accuracy() * 100.0);
    println!("{}", cm.to_table());

    let lat = device.latency_stats();
    println!(
        "[edge]  inference latency: mean {:.2} ms, p95 {:.2} ms over {} windows",
        lat.mean_us / 1e3,
        lat.p95_us / 1e3,
        lat.count
    );

    // Definition 1: nothing ever went Edge → Cloud.
    if let Err(e) = device.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    println!(
        "[edge]  privacy: downlink {} B, uplink {} B ✓",
        device.privacy_ledger().downlink_bytes(),
        device.privacy_ledger().uplink_bytes()
    );
}
