//! Terminal replay of the Android demo (Figure 3 of the paper).
//!
//! The GUI's five panels become five phases of a textual timeline:
//! (a) live inference on *Still*, (b) live inference on *Walk*,
//! (c) recording a new activity (*Gesture Hi*), (d) updating the Edge
//! model, (e) live inference on the freshly learned gesture.
//!
//! ```sh
//! cargo run --release --example realtime_demo
//! ```

use magneto::prelude::*;
use magneto::sensors::stream::StreamConfig;

/// The app's one-word drift indicator.
fn drift_tag(status: Option<DriftStatus>) -> String {
    match status {
        None => "off".into(),
        Some(DriftStatus::WarmingUp) => "warming".into(),
        Some(DriftStatus::Stable) => "stable".into(),
        Some(DriftStatus::Drifted { severity }) => format!("DRIFTED ×{severity:.1}"),
    }
}

/// Stream `seconds` of an activity through the device, printing the
/// smoothed label once per second like the app's status line.
fn live_inference(
    device: &mut EdgeDevice,
    kind: ActivityKind,
    person: PersonProfile,
    seconds: usize,
    seed: u64,
) {
    device.reset_session();
    let mut stream = SensorStream::new(kind.profile(), person, StreamConfig::default(), SeededRng::new(seed));
    for _ in 0..seconds {
        let mut last = None;
        // ~1 s of frames at 120 Hz.
        for _ in 0..120 {
            if let Some(frame) = stream.poll() {
                if let Some(pred) = device.push_frame(&frame).expect("inference") {
                    last = Some(pred);
                }
            }
        }
        if let Some(p) = last {
            println!(
                "    ▷ {:<12} (confidence {:>5.1}%, agreement {:>5.1}%, {:.1} ms, drift {})",
                p.smoothed_label,
                p.raw.confidence * 100.0,
                p.agreement * 100.0,
                p.raw.latency.as_secs_f64() * 1e3,
                drift_tag(p.raw.drift)
            );
        }
    }
}

fn main() {
    println!("== MAGNETO demo replay (Figure 3) ==\n");
    println!(
        "[setup] compute: {}",
        magneto::tensor::pool::global_plan().describe()
    );
    println!("[setup] cloud initialisation…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(60), 11);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 15;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    // Self-healing on: every status line carries the drift monitor's
    // verdict, baselined on this user's own live distances.
    let config = EdgeConfig {
        healing: Some(SelfHealingConfig::default()),
        ..EdgeConfig::default()
    };
    let mut device = EdgeDevice::deploy(bundle, config).unwrap();
    println!("[setup] phone is offline from here on.\n");
    let user = PersonProfile::nominal();

    println!("(a) participant holds the phone still:");
    live_inference(&mut device, ActivityKind::Still, user, 4, 100);

    println!("\n(b) participant walks around the booth:");
    live_inference(&mut device, ActivityKind::Walk, user, 4, 101);

    println!("\n(c) recording new activity `gesture_hi` for 25 s…");
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        user,
        25.0,
        102,
    );
    println!("    captured {} one-second windows", recording.len());

    println!("\n(d) updating the Edge model (contrastive + distillation)…");
    let report = device
        .learn_new_activity("gesture_hi", &recording)
        .unwrap()
        .committed()
        .unwrap();
    println!(
        "    {} epochs, final loss {:.4}; model now knows {:?}",
        report.training.epochs_run,
        report.training.final_loss().unwrap_or(f32::NAN),
        report.classes_after
    );

    println!("\n(e) participant waves at the phone:");
    live_inference(&mut device, ActivityKind::GestureHi, user, 4, 103);

    let lat = device.latency_stats();
    println!(
        "\n[stats] latency: mean {:.1} ms, p99 {:.1} ms across {} inferences",
        lat.mean_us / 1e3,
        lat.p99_us / 1e3,
        lat.count
    );
    let footprint = device.memory_footprint(false);
    println!(
        "[stats] on-device footprint: {:.2} MiB (< 5 MB: {})",
        footprint.total_mib(),
        footprint.within_5mb()
    );
    if let Some(stats) = device.healing_stats() {
        println!(
            "[stats] self-healing: {} drift alerts, {} auto-recalibrations, {} rollbacks",
            stats.drift_alerts, stats.auto_recals, stats.recal_rollbacks
        );
    }
    if let Err(e) = device.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    println!("[stats] uplink bytes: 0 ✓  — the demo phone never talked to the Cloud");
}
