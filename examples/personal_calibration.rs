//! Personalisation by calibration (§3.3, final paragraph).
//!
//! A user with an atypical gait (slow cadence, unusual phone carry,
//! shaky hands) gets degraded accuracy from the population-trained model.
//! Calibration replaces the *walk* support data with ~20 s of the user's
//! own recording and re-trains on-device; this example shows the per-user
//! accuracy recovering.
//!
//! ```sh
//! cargo run --release --example personal_calibration
//! ```

use magneto::prelude::*;

fn walk_recall(device: &mut EdgeDevice, test: &SensorDataset) -> f64 {
    let mut cm = ConfusionMatrix::new();
    for w in &test.windows {
        let pred = device.infer_window(&w.channels).expect("inference");
        cm.record(&w.label, &pred.label);
    }
    cm.recall("walk").unwrap_or(0.0)
}

fn main() {
    println!("[cloud] pre-training on the population…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(60), 3);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 15;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();

    // An atypical user, far from the training population.
    let mut rng = SeededRng::new(17);
    let user = PersonProfile::sample_atypical(&mut rng);
    println!(
        "[user]  atypical user: cadence ×{:.2}, amplitude ×{:.2}, atypicality {:.2}",
        user.gait_freq_scale,
        user.amplitude_scale,
        user.atypicality()
    );

    // This user's personal test data (never uploaded anywhere).
    let personal_test = SensorDataset::generate_for_person(
        &GeneratorConfig {
            windows_per_class: 15,
            ..GeneratorConfig::base_five(15)
        },
        user,
        555,
    );

    let before = walk_recall(&mut device, &personal_test);
    println!(
        "[edge]  walk recall for this user BEFORE calibration: {:.1}%",
        before * 100.0
    );

    // Calibrate: 20 s of the user's own walking replaces the walk support
    // data; the model re-trains on-device.
    println!("[edge]  recording 20 s of the user's own walk and calibrating…");
    let recording =
        SensorDataset::record_session("walk", ActivityKind::Walk, user, 20.0, 18);
    let report = device
        .calibrate_activity("walk", &recording)
        .unwrap()
        .committed()
        .unwrap();
    println!(
        "[edge]  calibration re-trained {} epochs on {} personal windows",
        report.training.epochs_run, report.new_windows
    );

    let after = walk_recall(&mut device, &personal_test);
    println!(
        "[edge]  walk recall for this user AFTER calibration:  {:.1}%",
        after * 100.0
    );
    println!(
        "[edge]  recovery: {:+.1} percentage points",
        (after - before) * 100.0
    );

    if let Err(e) = device.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    println!("[edge]  the user's data never left the device ✓");
}
