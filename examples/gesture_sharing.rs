//! Extension demo: peer-to-peer gesture sharing and drift monitoring.
//!
//! Alice teaches her phone *Gesture Hi*, exports it as a ~KB class pack
//! and beams it to Bob's phone (Bluetooth — never the Cloud). Bob's phone
//! learns it through the normal incremental machinery. Meanwhile a drift
//! monitor on Bob's phone watches nearest-prototype distances and flags
//! when his data stops looking like the support set — the cue to
//! recalibrate.
//!
//! ```sh
//! cargo run --release --example gesture_sharing
//! ```

use magneto::core::drift::{DriftMonitor, DriftStatus};
use magneto::core::sharing::ClassPack;
use magneto::prelude::*;

fn deploy(seed: u64) -> EdgeDevice {
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(60), seed);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 15;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap()
}

fn main() {
    println!("[setup] deploying two phones from the same cloud bundle…");
    let mut alice = deploy(50);
    let mut bob = deploy(50);

    // --- Alice teaches her phone a gesture -----------------------------
    println!("\n[alice] recording 25 s of `gesture_hi` and learning it…");
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        51,
    );
    alice
        .learn_new_activity("gesture_hi", &recording)
        .unwrap()
        .committed()
        .unwrap();
    println!("[alice] phone now knows {:?}", alice.classes());

    // --- Share it with Bob, peer-to-peer --------------------------------
    let pack = alice.export_class("gesture_hi").unwrap();
    let wire = pack.to_bytes();
    println!(
        "\n[share] exported class pack: {} exemplars, {} bytes (fits one BLE exchange)",
        pack.len(),
        wire.len()
    );
    let received = ClassPack::from_bytes(&wire).unwrap();
    bob.import_class(&received).unwrap().committed().unwrap();
    println!("[bob]   imported; phone now knows {:?}", bob.classes());

    let probe = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        10.0,
        52,
    );
    let hits = probe
        .windows
        .iter()
        .filter(|w| bob.infer_window(&w.channels).unwrap().label == "gesture_hi")
        .count();
    println!(
        "[bob]   recognises Alice's gesture: {hits}/{} windows",
        probe.windows.len()
    );

    // --- Drift monitoring on Bob's phone --------------------------------
    // Bootstrap the baseline from the support set, then re-anchor it on
    // Bob's own early data (the principled deployment recipe: the
    // baseline should describe *this* user's normal).
    let bootstrap = bob.rejection_threshold(75.0, 1.0).unwrap();
    let mut monitor = DriftMonitor::new(bootstrap, 3.0, 0.15, 10).unwrap();

    // Phase 1: Bob behaves like the population — stable.
    let normal = SensorDataset::generate(&GeneratorConfig::base_five(8), 53);
    for w in &normal.windows {
        let pred = bob.infer_window(&w.channels).unwrap();
        let d = pred.distances.iter().cloned().fold(f32::INFINITY, f32::min);
        monitor.observe(d);
    }
    println!("\n[drift] after population-like data: {:?}", monitor.status());
    let baseline = monitor.smoothed_distance().unwrap();
    // Once the baseline describes *this* user's normal, a much tighter
    // alert band is appropriate.
    let mut monitor = DriftMonitor::new(baseline, 1.6, 0.15, 8).unwrap();
    println!(
        "[drift] re-anchored baseline to Bob's normal: {baseline:.3}; alert at 1.6x"
    );
    // Re-warm the monitor on a little more normal data.
    for w in normal.windows.iter().take(12) {
        let pred = bob.infer_window(&w.channels).unwrap();
        let d = pred.distances.iter().cloned().fold(f32::INFINITY, f32::min);
        monitor.observe(d);
    }

    // Phase 2: Bob's style shifts hard (injury, new phone pocket) — the
    // monitor flags it.
    let mut rng = SeededRng::new(54);
    let shifted_user = PersonProfile::sample_atypical(&mut rng);
    let mut exaggerated = shifted_user;
    exaggerated.tremor_scale = 2.8; // a cracked screen protector over the sensors, say
    exaggerated.amplitude_scale *= 1.6;
    let shifted = SensorDataset::generate_for_person(
        &GeneratorConfig::base_five(15),
        exaggerated,
        55,
    );
    let mut alert = None;
    for (i, w) in shifted.windows.iter().enumerate() {
        let pred = bob.infer_window(&w.channels).unwrap();
        let d = pred.distances.iter().cloned().fold(f32::INFINITY, f32::min);
        if let DriftStatus::Drifted { severity } = monitor.observe(d) {
            alert = Some((i, severity));
            break;
        }
    }
    match alert {
        Some((i, severity)) => println!(
            "[drift] DRIFT detected after {i} shifted windows (severity {severity:.1}x) → suggest recalibration"
        ),
        None => println!("[drift] no drift detected (style shift too mild)"),
    }

    if let Err(e) = alice.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    if let Err(e) = bob.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    println!("\n[privacy] both phones: 0 bytes Edge → Cloud ✓");
}
