//! Fleet serving: 64 simulated users, each with their own personalised
//! edge session, streaming sensor windows into a shared micro-batching
//! runtime — the ROADMAP's "production-scale system" sketched on one
//! machine.
//!
//! One Cloud bundle is deployed 64 times; a quarter of the users then
//! calibrate their session on a short personal recording (on-device,
//! nothing uploaded), which re-keys them so their diverged weights never
//! batch with the stock model. Producer threads submit traffic
//! concurrently with retry-on-backpressure; worker threads coalesce
//! pending windows across sessions into single backbone forwards. The
//! run ends with the per-shard serving table and the fleet energy
//! ledger.
//!
//! ```sh
//! cargo run --release --example fleet_serving
//! ```

use magneto::prelude::*;
use magneto::sensors::pool::StreamPool;
use magneto::sensors::stream::StreamConfig;
use std::time::{Duration, Instant};

const USERS: usize = 64;
const ROUNDS: usize = 12;
const CALIBRATED_EVERY: usize = 4; // users 0, 4, 8, … calibrate

fn submit_retrying(fleet: &Fleet, id: SessionId, window: &[Vec<f32>]) {
    loop {
        match fleet.submit(id, window.to_vec()) {
            Ok(_) => return,
            Err(e) => match e.retry_after() {
                Some(wait) => std::thread::sleep(wait),
                None => panic!("submit failed: {e}"),
            },
        }
    }
}

fn main() {
    println!("== MAGNETO fleet serving: {USERS} users, one runtime ==\n");

    println!("[cloud] pre-training the shared bundle…");
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 42);
    let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .unwrap();
    let bundle_bytes = bundle.to_bytes(false).len();
    let backbone_dims = bundle.model.dims();
    let classes = bundle.registry.labels().len();

    // The population: distinct sampled person styles, base activities
    // cycled across users, deterministic traffic given the seed.
    let mut pool = StreamPool::new(USERS, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), 7);

    let fleet = Fleet::new(FleetConfig {
        shards: 8,
        workers: 4,
        ..FleetConfig::default()
    })
    .unwrap();
    println!(
        "[fleet] compute (shared across workers): {}",
        fleet.compute_plan().describe()
    );
    let key = ModelKey::of_bundle(&bundle);

    // Cheap on-device calibration for the demo: a couple of epochs is
    // enough to diverge the weights and exercise re-keying.
    let mut edge_cfg = EdgeConfig::default();
    edge_cfg.incremental.trainer.epochs = 2;

    println!("[edge] deploying {USERS} sessions ({bundle_bytes} bytes each)…");
    let mut accounting =
        FleetAccounting::new(EnergyModel::lte_phone(), &backbone_dims, classes, 22, 120);
    let sessions: Vec<_> = (0..USERS)
        .map(|_| {
            accounting.record_deploy(bundle_bytes);
            let dev = EdgeDevice::deploy(bundle.clone(), edge_cfg.clone()).unwrap();
            fleet.register(dev, key)
        })
        .collect();

    println!("[edge] calibrating every {CALIBRATED_EVERY}th user on a personal recording…");
    let calib_start = Instant::now();
    let mut calibrated = 0;
    for u in (0..USERS).step_by(CALIBRATED_EVERY) {
        let recording = SensorDataset::record_session(
            pool.activity(u).label(),
            pool.activity(u),
            *pool.person(u),
            10.0,
            1000 + u as u64,
        );
        fleet
            .update_session(sessions[u].0, |dev| {
                dev.calibrate_activity(recording.windows[0].label.as_str(), &recording)
                    .unwrap()
                    .committed()
                    .unwrap();
            })
            .unwrap();
        assert!(fleet.session_key(sessions[u].0).unwrap().is_unique());
        calibrated += 1;
    }
    println!(
        "        {calibrated} sessions calibrated and re-keyed in {:.1}s\n",
        calib_start.elapsed().as_secs_f64()
    );

    // Pre-render the traffic so producer threads only submit.
    let mut traffic: Vec<Vec<Vec<Vec<f32>>>> = (0..USERS).map(|_| Vec::new()).collect();
    for _ in 0..ROUNDS {
        for (u, w) in pool.next_round().into_iter().enumerate() {
            traffic[u].push(w);
        }
    }

    println!("[serve] {} windows from 4 producer threads…", USERS * ROUNDS);
    let ids: Vec<SessionId> = sessions.iter().map(|(id, _)| *id).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for chunk in 0..4 {
            let fleet = &fleet;
            let ids = &ids;
            let traffic = &traffic;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    for u in (chunk * USERS / 4)..((chunk + 1) * USERS / 4) {
                        submit_retrying(fleet, ids[u], &traffic[u][r]);
                    }
                }
            });
        }
    });
    assert!(fleet.wait_idle(Duration::from_secs(120)), "fleet stalled");
    let elapsed = start.elapsed();

    let mut served = 0usize;
    for (_, rx) in &sessions {
        served += rx.try_iter().filter(|r| r.outcome.is_ok()).count();
    }
    println!(
        "        {served} windows served in {:.2}s → {:.0} windows/s\n",
        elapsed.as_secs_f64(),
        served as f64 / elapsed.as_secs_f64()
    );

    println!("shard  sessions  accepted  rejected  batches  mean  max   p50µs   p99µs");
    let mut total_rejected = 0;
    for stat in fleet.shard_stats() {
        total_rejected += stat.rejected;
        accounting.record_served(stat.windows, stat.batches);
        println!(
            "{:>5}  {:>8}  {:>8}  {:>8}  {:>7}  {:>4.1}  {:>3}  {:>6.0}  {:>6.0}",
            stat.shard,
            stat.sessions,
            stat.accepted,
            stat.rejected,
            stat.batches,
            stat.mean_batch(),
            stat.max_batch,
            stat.latency.p50_us,
            stat.latency.p99_us,
        );
    }
    println!("\n        {total_rejected} submissions rejected by backpressure (and retried)");

    let report = accounting.report();
    println!("\n[energy] fleet ledger over LTE ({USERS} deploys + {served} served windows):");
    println!("         total            {:>10.3} J", report.total_joules);
    println!("         per window       {:>10.6} J", report.joules_per_window);
    println!("         mean batch size  {:>10.2} windows", report.mean_batch_size);
    println!(
        "         cloud equivalent {:>10.3} J (every raw window radioed up)",
        report.cloud_equivalent_joules
    );

    fleet.shutdown();
    println!("\nEvery byte of user data stayed on its own session. Fin.");
}
