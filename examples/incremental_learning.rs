//! The demonstration scenario of §4.2.2: teach the phone a brand-new
//! gesture, on-device, without forgetting the base activities.
//!
//! The user records ~25 seconds of *Gesture Hi*; MAGNETO folds the
//! recording into the support set and re-trains with joint contrastive +
//! distillation losses. We then measure (a) accuracy on the new gesture
//! and (b) retained accuracy on the five base activities — and repeat the
//! update with distillation disabled to make catastrophic forgetting
//! visible.
//!
//! ```sh
//! cargo run --release --example incremental_learning
//! ```

use magneto::prelude::*;

fn evaluate(device: &mut EdgeDevice, test: &SensorDataset) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new();
    for w in &test.windows {
        let pred = device.infer_window(&w.channels).expect("inference");
        cm.record(&w.label, &pred.label);
    }
    cm
}

fn main() {
    // Cloud initialisation on the five base activities.
    println!("[cloud] pre-training on the 5 base activities…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(60), 1);
    let mut cloud_cfg = CloudConfig::fast_demo();
    cloud_cfg.trainer.epochs = 15;
    let (bundle, _) = CloudInitializer::new(cloud_cfg).pretrain(&corpus).unwrap();

    // Two identical devices: one updates with distillation (MAGNETO), one
    // without (the ablation). The MAGNETO device also runs the
    // self-healing loop, so its streaming predictions carry drift status.
    let magneto_cfg = EdgeConfig {
        healing: Some(SelfHealingConfig::default()),
        ..EdgeConfig::default()
    };
    let mut magneto = EdgeDevice::deploy(bundle.clone(), magneto_cfg).unwrap();
    let mut ablated_cfg = EdgeConfig::default();
    ablated_cfg.incremental.disable_distillation = true;
    let mut ablated = EdgeDevice::deploy(bundle, ablated_cfg).unwrap();

    // Held-out test data: base activities + the new gesture.
    let base_test = SensorDataset::generate(&GeneratorConfig::base_five(10), 999);
    let mut gesture_test = SensorDataset::generate(
        &GeneratorConfig {
            activities: vec![ActivityKind::GestureHi],
            windows_per_class: 20,
            ..GeneratorConfig::base_five(10)
        },
        998,
    );
    let before = evaluate(&mut magneto, &base_test);
    println!(
        "[edge] base-activity accuracy before update: {:.1}%",
        before.accuracy() * 100.0
    );

    // §4.2.2 — record ~25 s of the new gesture and learn it.
    println!("[edge] recording 25 s of `gesture_hi`…");
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        7,
    );
    println!("[edge] updating the model on-device (contrastive + distillation)…");
    let report = magneto
        .learn_new_activity("gesture_hi", &recording)
        .unwrap()
        .committed()
        .unwrap();
    println!(
        "[edge] re-trained {} epochs on {} fresh windows; classes = {:?}",
        report.training.epochs_run,
        report.new_windows,
        report.classes_after
    );
    ablated
        .learn_new_activity("gesture_hi", &recording)
        .unwrap()
        .committed()
        .unwrap();

    // Evaluate both devices.
    let mut full_test = base_test.clone();
    full_test.extend(std::mem::take(&mut gesture_test));

    for (name, device) in [("magneto", &mut magneto), ("no-distillation", &mut ablated)] {
        let cm = evaluate(device, &full_test);
        let old = cm.subset_accuracy(&["drive", "e_scooter", "run", "still", "walk"]);
        let new = cm.recall("gesture_hi").unwrap_or(0.0);
        println!(
            "[edge] {name:>16}: new-gesture recall {:.1}%, base retention {:.1}% (was {:.1}%)",
            new * 100.0,
            old * 100.0,
            before.accuracy() * 100.0
        );
    }

    // Stream a few seconds of walking so the drift monitor has live data
    // to judge: learning a gesture must not register as concept drift.
    let mut stream = SensorStream::new(
        ActivityKind::Walk.profile(),
        PersonProfile::nominal(),
        magneto::sensors::stream::StreamConfig::ideal(),
        SeededRng::new(55),
    );
    let frames: Vec<_> = (0..120 * 6).filter_map(|_| stream.poll()).collect();
    magneto.push_frames(&frames).expect("streaming");
    println!(
        "[edge] post-update drift status after 6 s of walking: {:?}",
        magneto.drift_status().expect("healing enabled")
    );

    if let Err(e) = magneto.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }
    println!("[edge] privacy invariant held: 0 bytes Edge → Cloud ✓");
}
