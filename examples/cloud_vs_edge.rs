//! The Figure-1 comparison: Cloud-based vs Edge-based HAR protocols.
//!
//! Both protocols run the *same* trained model, so differences are pure
//! deployment: latency (link vs local compute), privacy (uplink bytes)
//! and device energy (radio vs CPU).
//!
//! ```sh
//! cargo run --release --example cloud_vs_edge
//! ```

use magneto::core::incremental::ModelState;
use magneto::prelude::*;
use magneto::tensor::vector::DistanceMetric;

fn main() {
    println!("[setup] training a shared model…");
    let corpus = SensorDataset::generate(&GeneratorConfig::base_five(40), 5);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 12;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    let bundle_bytes = bundle.total_bytes();
    let state = ModelState::assemble(
        bundle.model.clone(),
        bundle.support_set.clone(),
        bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .unwrap();

    let probe = SensorDataset::generate(&GeneratorConfig::base_five(10), 909);
    let windows: Vec<Vec<Vec<f32>>> =
        probe.windows.iter().map(|w| w.channels.clone()).collect();

    println!(
        "[setup] {} test windows; bundle is {:.2} MiB\n",
        windows.len(),
        bundle_bytes as f64 / (1024.0 * 1024.0)
    );

    println!(
        "{:<12} {:>12} {:>14} {:>16} {:>14}",
        "protocol", "link", "p50 latency", "uplink/window", "energy/window"
    );

    // Edge protocol: local compute on a budget phone.
    let mut edge = EdgeProtocol::new(
        bundle.pipeline.clone(),
        state.model.clone(),
        state.ncm.clone(),
        DeviceModel::budget_phone(),
        EnergyModel::lte_phone(),
        bundle_bytes,
    );
    report("edge", "—", &mut edge, &windows);

    // Cloud protocol across link qualities.
    for (name, link) in [
        ("wifi", NetworkLink::wifi()),
        ("lte", NetworkLink::lte()),
        ("3g", NetworkLink::cellular_3g()),
        ("congested", NetworkLink::congested()),
    ] {
        let mut cloud = CloudProtocol::new(
            bundle.pipeline.clone(),
            state.model.clone(),
            state.ncm.clone(),
            link,
            EnergyModel::lte_phone(),
            SeededRng::new(42),
        );
        report("cloud", name, &mut cloud, &windows);
    }

    println!(
        "\nEdge leaks 0 bytes (Definition 1); Cloud uploads every raw window — \
         that column *is* the privacy cost."
    );
}

fn report(
    proto: &str,
    link: &str,
    protocol: &mut dyn HarProtocol,
    windows: &[Vec<Vec<f32>>],
) {
    let mut latencies: Vec<f64> = Vec::with_capacity(windows.len());
    let mut uplink = 0usize;
    let mut energy = 0.0f64;
    for w in windows {
        let out = protocol.infer_window(w).expect("inference");
        latencies.push(out.latency.as_secs_f64() * 1e3);
        uplink += out.uplink_bytes;
        energy += out.energy_joules;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = latencies[latencies.len() / 2];
    println!(
        "{:<12} {:>12} {:>11.2} ms {:>14} B {:>12.4} J",
        proto,
        link,
        p50,
        uplink / windows.len(),
        energy / windows.len() as f64
    );
}
