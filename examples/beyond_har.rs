//! §5 versatility claim: "Leveraging incremental learning, the system can
//! adapt to diverse data types, such as time series … By adjusting its
//! feature extractor or backbone model."
//!
//! This example swaps out the 22-channel HAR front end entirely and runs
//! the same platform core (Siamese embedding + support set + NCM +
//! incremental update) on a different domain: univariate "appliance
//! power-draw" time series (fridge / washing machine / kettle), with a
//! hand-rolled 12-feature extractor — then teaches a *new* appliance
//! (microwave) incrementally, exactly like the HAR demo teaches a
//! gesture.
//!
//! ```sh
//! cargo run --release --example beyond_har
//! ```

use magneto::core::incremental::{IncrementalConfig, ModelState, UpdateMode};
use magneto::core::{LabelRegistry, SelectionStrategy, SupportSet};
use magneto::nn::trainer::{train_siamese, TrainerConfig};
use magneto::nn::{Mlp, SiameseNetwork};
use magneto::tensor::vector::DistanceMetric;
use magneto::tensor::{stats, Matrix, SeededRng};

/// A synthetic appliance power trace: base load + duty-cycled element +
/// noise. Each appliance has a distinct cycle signature.
fn power_trace(appliance: &str, rng: &mut SeededRng) -> Vec<f32> {
    let n = 240; // 4 minutes at 1 Hz
    let (base, peak, period, duty) = match appliance {
        "fridge" => (40.0, 120.0, 60.0, 0.4),
        "washing_machine" => (20.0, 2000.0, 30.0, 0.6),
        "kettle" => (2.0, 2800.0, 200.0, 0.15),
        "microwave" => (5.0, 1100.0, 20.0, 0.5),
        _ => unreachable!(),
    };
    let jitter = rng.uniform(0.9, 1.1);
    (0..n)
        .map(|i| {
            let phase = (i as f32 / (period * jitter)).fract();
            let element = if phase < duty { peak } else { 0.0 };
            base + element * rng.uniform(0.92, 1.08) + rng.normal_with(0.0, base * 0.1)
        })
        .collect()
}

/// A 12-feature extractor for power traces — the "adjusted feature
/// extractor" of §5. Any domain only needs to produce a fixed-width
/// vector; everything downstream is unchanged.
fn power_features(trace: &[f32]) -> Vec<f32> {
    let on: Vec<f32> = trace.iter().filter(|&&v| v > 500.0).cloned().collect();
    vec![
        stats::mean(trace) / 1000.0,
        stats::std_dev(trace) / 1000.0,
        stats::max(trace) / 1000.0,
        stats::median(trace) / 1000.0,
        stats::iqr(trace) / 1000.0,
        stats::skewness(trace),
        stats::kurtosis(trace),
        stats::mean_crossing_rate(trace),
        stats::autocorrelation(trace, 20),
        stats::autocorrelation(trace, 60),
        on.len() as f32 / trace.len() as f32, // high-power duty fraction
        stats::mean(&on) / 1000.0,
    ]
}

fn dataset(appliances: &[&str], per_class: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for (id, app) in appliances.iter().enumerate() {
        for _ in 0..per_class {
            rows.push(power_features(&power_trace(app, &mut rng)));
            labels.push(id);
        }
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

fn main() {
    let base = ["fridge", "washing_machine", "kettle"];
    println!("[cloud] training an appliance-recognition embedding (12-d features)…");
    let (features, labels) = dataset(&base, 60, 1);
    let mut rng = SeededRng::new(2);
    // Same platform, different backbone width — §5's "adjusting the
    // backbone model".
    let mut model = SiameseNetwork::new(Mlp::new(&[12, 64, 32, 16], &mut rng).unwrap(), 1.0);
    let cfg = TrainerConfig {
        epochs: 15,
        pairs_per_epoch: 1024,
        learning_rate: 2e-3,
        ..TrainerConfig::default()
    };
    let report = train_siamese(&mut model, &features, &labels, None, &cfg).unwrap();
    println!(
        "[cloud] loss {:.3} -> {:.3}",
        report.epoch_losses[0],
        report.final_loss().unwrap_or(f32::NAN)
    );

    // Support set + NCM, exactly as for HAR.
    let mut support = SupportSet::new(30, SelectionStrategy::Herding);
    let mut srng = SeededRng::new(3);
    for (id, app) in base.iter().enumerate() {
        let class_rows: Vec<Vec<f32>> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == id)
            .map(|(r, _)| features.row(r).to_vec())
            .collect();
        support.set_class(app, &class_rows, &mut srng).unwrap();
    }
    let registry = LabelRegistry::from_labels(base);
    let mut state =
        ModelState::assemble(model, support, registry, DistanceMetric::Euclidean).unwrap();

    // Evaluate on fresh traces.
    let accuracy = |state: &ModelState, apps: &[&str], seed: u64| {
        let (test_f, test_l) = dataset(apps, 25, seed);
        let mut correct = 0;
        for r in 0..test_f.rows() {
            let emb = state.model.embed_one(test_f.row(r)).unwrap();
            let label = state.ncm.classify(&emb).unwrap().label;
            if label == apps[test_l[r]] {
                correct += 1;
            }
        }
        correct as f64 / test_l.len() as f64
    };
    println!(
        "[edge]  base appliances accuracy: {:.1}%",
        accuracy(&state, &base, 9) * 100.0
    );

    // Incremental learning of a new appliance — the same update code path
    // the HAR demo uses for Gesture Hi.
    println!("[edge]  user plugs in a microwave; recording 20 cycles…");
    let mut rec_rng = SeededRng::new(4);
    let new_data: Vec<Vec<f32>> = (0..20)
        .map(|_| power_features(&power_trace("microwave", &mut rec_rng)))
        .collect();
    let inc = IncrementalConfig::default();
    let mut urng = SeededRng::new(5);
    state
        .update("microwave", &new_data, UpdateMode::NewActivity, &inc, &mut urng)
        .unwrap();
    let all = ["fridge", "washing_machine", "kettle", "microwave"];
    println!(
        "[edge]  after on-device update: all-appliance accuracy {:.1}% (classes: {:?})",
        accuracy(&state, &all, 10) * 100.0,
        state.registry.labels()
    );
    println!("\nSame core — support set, Siamese embedding, NCM, distilled update —");
    println!("different domain, exactly as §5 of the paper claims.");
}
