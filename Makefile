# Developer entry points. `make check` is the gate every PR must pass.

CARGO ?= cargo

.PHONY: check build test test-all clippy fmt bench clean

check: build test clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-all:
	$(CARGO) test -q --workspace --no-fail-fast

clippy:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --all

bench:
	$(CARGO) bench -p magneto-bench --bench pipeline_stages

clean:
	$(CARGO) clean
