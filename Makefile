# Developer entry points. `make check` is the gate every PR must pass.

CARGO ?= cargo

.PHONY: check build test test-all clippy fmt bench bench-train bench-fleet fleet-smoke train-smoke clean

check: build test clippy fleet-smoke train-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-all:
	$(CARGO) test -q --workspace --no-fail-fast

clippy:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --all

bench:
	$(CARGO) bench -p magneto-bench --bench pipeline_stages

bench-fleet:
	$(CARGO) bench -p magneto-bench --bench fleet_throughput

# Training/inference wall-time sweep across compute-pool sizes; emits
# BENCH_train.json and BENCH_infer.json in the working directory.
bench-train: build
	$(CARGO) run --release -p magneto-bench --bin train_smoke

# Short release-mode fleet serving run: 4 worker threads, 16 sessions,
# asserts nonzero throughput and zero cross-session label leaks.
fleet-smoke: build
	$(CARGO) run --release -p magneto-bench --bin fleet_smoke

# Release-mode training smoke run: asserts trained weights and batched
# embeddings are bit-identical at pool sizes 1/2/4/8, and that the
# installed kernel plan is not slower than forced sequential.
train-smoke: build
	$(CARGO) run --release -p magneto-bench --bin train_smoke

clean:
	$(CARGO) clean
