# Developer entry points. `make check` is the gate every PR must pass.

CARGO ?= cargo

.PHONY: check build test test-all clippy lint-unsafe fmt bench bench-train bench-fleet bench-quant bench-fleet-scale bench-ncm bench-rollout bench-continual fleet-smoke fleet-scale-smoke train-smoke quant-smoke fault-smoke ncm-scale-smoke rollout-smoke continual-smoke chaos chaos-drift clean

check: build test clippy lint-unsafe fleet-smoke fleet-scale-smoke train-smoke quant-smoke fault-smoke ncm-scale-smoke rollout-smoke continual-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-all:
	$(CARGO) test -q --workspace --no-fail-fast

clippy:
	$(CARGO) clippy --workspace -- -D warnings

# Every `unsafe` block (and unsafe impl) must carry a `// SAFETY:`
# comment on one of the three lines above it. The SIMD micro-kernels in
# crates/tensor/src/kernels made unsafe common enough to lint for; the
# crate also sets `#![deny(unsafe_op_in_unsafe_fn)]` so no operation
# hides inside an `unsafe fn` without its own annotated block.
lint-unsafe:
	@fail=0; \
	for f in $$(grep -rln --include='*.rs' -e 'unsafe ' crates src 2>/dev/null); do \
		bad=$$(awk '/\/\/ SAFETY:/ { mark = NR } \
			/^[[:space:]]*\/\// { if (mark == NR - 1) mark = NR } \
			/unsafe (\{|impl )/ { if (mark == 0 || NR - mark > 3) print FILENAME ":" NR ": " $$0 }' $$f); \
		if [ -n "$$bad" ]; then echo "$$bad"; fail=1; fi; \
	done; \
	if [ $$fail -ne 0 ]; then \
		echo "error: unsafe block without a '// SAFETY:' comment ending within 3 lines above"; exit 1; \
	fi; \
	echo "lint-unsafe: all unsafe blocks annotated"

fmt:
	$(CARGO) fmt --all

bench:
	$(CARGO) bench -p magneto-bench --bench pipeline_stages

bench-fleet:
	$(CARGO) bench -p magneto-bench --bench fleet_throughput

# Training/inference wall-time sweep across compute-pool sizes; emits
# BENCH_train.json and BENCH_infer.json in the working directory.
bench-train: build
	$(CARGO) run --release -p magneto-bench --bin train_smoke

# Short release-mode fleet serving run: 4 worker threads, 16 sessions,
# asserts nonzero throughput and zero cross-session label leaks.
fleet-smoke: build
	$(CARGO) run --release -p magneto-bench --bin fleet_smoke

# Release-mode tiered-store scale run: 10k base+delta sessions under
# Zipf traffic through one shared base. Gates resident-bytes-per-user
# ≤ 0.5× the naive full-resident footprint and bit-identical serving
# after a page-out → rehydrate round trip; emits BENCH_fleet_scale.json
# in the working directory.
fleet-scale-smoke: build
	$(CARGO) run --release -p magneto-bench --bin fleet_scale_smoke

# The same gates at 100k sessions (the full scale bench).
bench-fleet-scale: build
	$(CARGO) run --release -p magneto-bench --bin fleet_scale_smoke -- --sessions 100000 --arrivals 40000

# Release-mode training smoke run: asserts trained weights and batched
# embeddings are bit-identical at pool sizes 1/2/4/8, and that the
# installed kernel plan is not slower than forced sequential.
train-smoke: build
	$(CARGO) run --release -p magneto-bench --bin train_smoke

# Release-mode quantised-path smoke run: asserts ≥99% f32/int8 prediction
# agreement, bit-identical int8 embeddings at pool sizes 0/1/2/8, and no
# regression of the int8 forward under the installed kernel plan; emits
# BENCH_quant.json in the working directory.
quant-smoke: build
	$(CARGO) run --release -p magneto-bench --bin quant_smoke

# Alias mirroring bench-train for the quantised path.
bench-quant: quant-smoke

# Release-mode NCM index scaling run: dense exact scan vs the two-stage
# quantized search over {8,32,64} classes × {16,64,256} exemplars/class.
# Gates ≥99% prediction agreement at every point, ≥3× speedup at 64×256
# (≥2× scalar-only hosts), and bit-identical decisions across coarse
# backends; emits BENCH_ncm_scale.json in the working directory.
ncm-scale-smoke: build
	$(CARGO) run --release -p magneto-bench --bin ncm_scale_smoke

# Alias mirroring bench-train for the NCM index sweep.
bench-ncm: ncm-scale-smoke

# Release-mode fault-tolerance smoke run: gates accuracy under 5%/20%
# frame drop, byte-exact transactional rollback, crash-safe journaled
# saves (torn and complete journals), and a 4-seed chaos sweep; emits
# BENCH_fault.json in the working directory.
fault-smoke: build
	$(CARGO) run --release -p magneto-bench --bin fault_smoke

# Release-mode rollout lifecycle smoke run: 1k-session fleet, healthy
# v1 → v2 rollout through the default canary waves (diff-shipped, every
# session migrated), then a seeded-regression v2 → v3 that must halt at
# the canary wave and restore every device to the prior version. Also
# gates Definition 1 (zero uplink, all downlink ≤ 5 MB) across both
# rollouts; emits BENCH_rollout.json in the working directory.
rollout-smoke: build
	$(CARGO) run --release -p magneto-bench --bin rollout_smoke

# Alias mirroring bench-train for the rollout lifecycle.
bench-rollout: rollout-smoke

# Release-mode continual-learning smoke run: class-incremental protocol
# (deploy → learn two gestures → calibrate walk to an atypical user)
# with per-step accuracy, forgetting and backward transfer, an open-set
# rejection-threshold sweep, and the self-healing gates — a sustained
# gait change must commit an automatic recalibration that lands
# post-heal accuracy within 10 points of pre-drift, a rejected
# recalibration must leave the bundle byte-identical, and
# check_no_uplink must hold throughout; emits BENCH_continual.json in
# the working directory.
continual-smoke: build
	$(CARGO) run --release -p magneto-bench --bin continual_smoke

# Alias mirroring bench-train for the continual-learning protocol.
bench-continual: continual-smoke

# Extended chaos sweep: the fault-smoke gates with 32 seeded all-faults
# plans (drops + frozen channels + NaN/saturation bursts + jitter)
# through the full streaming path, each replayed for bit-identity.
chaos: build
	$(CARGO) run --release -p magneto-bench --bin fault_smoke -- --chaos-seeds 32

# Extended drift sweep: the continual-smoke gates with 16 seeded
# fault + gait-drift plans composed through the self-healing streaming
# path, each replayed for bit-identity (drift statuses and healing
# counters included).
chaos-drift: build
	$(CARGO) run --release -p magneto-bench --bin continual_smoke -- --drift-seeds 16

clean:
	$(CARGO) clean
