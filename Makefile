# Developer entry points. `make check` is the gate every PR must pass.

CARGO ?= cargo

.PHONY: check build test test-all clippy fmt bench bench-fleet fleet-smoke clean

check: build test clippy fleet-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-all:
	$(CARGO) test -q --workspace --no-fail-fast

clippy:
	$(CARGO) clippy --workspace -- -D warnings

fmt:
	$(CARGO) fmt --all

bench:
	$(CARGO) bench -p magneto-bench --bench pipeline_stages

bench-fleet:
	$(CARGO) bench -p magneto-bench --bench fleet_throughput

# Short release-mode fleet serving run: 4 worker threads, 16 sessions,
# asserts nonzero throughput and zero cross-session label leaks.
fleet-smoke: build
	$(CARGO) run --release -p magneto-bench --bin fleet_smoke

clean:
	$(CARGO) clean
