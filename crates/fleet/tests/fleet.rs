//! Fleet integration tests: the determinism guarantee (fleet output is
//! bit-identical to sequential per-device inference at any worker/shard
//! count), explicit backpressure, admission control, re-keying, and
//! cross-session isolation.

use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, EdgeConfig, EdgeDevice, Prediction,
};
use magneto_fleet::{Fleet, FleetConfig, FleetReply, ModelKey, SessionId, SubmitError};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use proptest::prelude::*;
use std::sync::mpsc::Receiver;
use std::sync::OnceLock;
use std::time::Duration;

fn bundle() -> &'static EdgeBundle {
    static BUNDLE: OnceLock<EdgeBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap()
            .0
    })
}

fn device() -> EdgeDevice {
    EdgeDevice::deploy(bundle().clone(), EdgeConfig::default()).unwrap()
}

fn traffic(users: usize, rounds: usize, seed: u64) -> Vec<Vec<Vec<Vec<f32>>>> {
    let mut pool = StreamPool::new(
        users,
        &ActivityKind::BASE_FIVE,
        120,
        StreamConfig::ideal(),
        seed,
    );
    let mut per_user = vec![Vec::new(); users];
    for _ in 0..rounds {
        for (u, w) in pool.next_round().into_iter().enumerate() {
            per_user[u].push(w);
        }
    }
    per_user
}

fn submit_retrying(fleet: &Fleet, id: SessionId, window: &[Vec<f32>]) -> u64 {
    loop {
        match fleet.submit(id, window.to_vec()) {
            Ok(seq) => return seq,
            Err(e) if e.retry_after().is_some() => std::thread::sleep(Duration::from_micros(100)),
            Err(e) => panic!("submit failed: {e}"),
        }
    }
}

fn collect(rx: &Receiver<FleetReply>, n: usize) -> Vec<FleetReply> {
    (0..n)
        .map(|i| {
            rx.recv_timeout(Duration::from_secs(10))
                .unwrap_or_else(|_| panic!("reply {i}/{n} never arrived"))
        })
        .collect()
}

/// Drive the same per-user traffic through a fleet and through plain
/// sequential per-device `infer_window`, and assert bit-identical
/// outputs and per-session FIFO ordering.
fn assert_fleet_matches_sequential(workers: usize, shards: usize, seed: u64) {
    let users = 5;
    let rounds = 3;
    let per_user = traffic(users, rounds, seed);

    // Sequential oracle: each user's own device, windows in order.
    let oracle: Vec<Vec<Prediction>> = per_user
        .iter()
        .map(|windows| {
            let mut dev = device();
            windows
                .iter()
                .map(|w| dev.infer_window(w).unwrap())
                .collect()
        })
        .collect();

    let mut fleet = Fleet::new(FleetConfig {
        workers,
        shards,
        ..FleetConfig::default()
    })
    .unwrap();
    let key = ModelKey::of_bundle(bundle());
    let registered: Vec<(SessionId, Receiver<FleetReply>)> =
        (0..users).map(|_| fleet.register(device(), key)).collect();

    // Interleave submissions round-robin, the worst case for accidental
    // cross-session mixups.
    for r in 0..rounds {
        for (u, (id, _)) in registered.iter().enumerate() {
            submit_retrying(&fleet, *id, &per_user[u][r]);
        }
    }
    if workers == 0 {
        fleet.pump();
    } else {
        assert!(fleet.wait_idle(Duration::from_secs(30)), "fleet never idled");
    }

    for (u, (id, rx)) in registered.iter().enumerate() {
        let replies = collect(rx, rounds);
        for (r, reply) in replies.iter().enumerate() {
            assert_eq!(reply.session, *id);
            assert_eq!(reply.seq, r as u64, "user {u} replies out of order");
            let got = reply.outcome.as_ref().unwrap();
            let want = &oracle[u][r];
            assert_eq!(got.label, want.label, "user {u} round {r}");
            assert_eq!(got.confidence, want.confidence, "user {u} round {r}");
            assert_eq!(got.distances, want.distances, "user {u} round {r}");
        }
    }

    let stats = fleet.shard_stats();
    let served: u64 = stats.iter().map(|s| s.windows).sum();
    assert_eq!(served, (users * rounds) as u64);
    // Micro-batching actually happened: everyone shares one model key,
    // so at least one batch held more than one window.
    let max_batch = stats.iter().map(|s| s.max_batch).max().unwrap();
    assert!(max_batch >= 1);
    fleet.shutdown();
}

#[test]
fn fleet_output_is_bit_identical_at_1_2_and_8_workers() {
    for workers in [1, 2, 8] {
        assert_fleet_matches_sequential(workers, 3, 77);
    }
}

#[test]
fn deterministic_pump_mode_matches_sequential() {
    assert_fleet_matches_sequential(0, 1, 78);
    assert_fleet_matches_sequential(0, 4, 78);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The determinism guarantee, property-tested over the scheduling
    /// space: any worker count, any shard count, any traffic seed.
    #[test]
    fn fleet_matches_sequential_for_any_topology(
        workers in prop::sample::select(vec![0usize, 1, 2, 8]),
        shards in 1usize..6,
        seed in 0u64..1000,
    ) {
        assert_fleet_matches_sequential(workers, shards, seed);
    }
}

#[test]
fn saturated_shard_rejects_instead_of_growing() {
    // No workers and no pumping: the queue can only fill.
    let capacity = 8;
    let fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 1,
        queue_capacity: capacity,
        max_inflight_per_session: 1000,
        max_inflight_global: 1000,
        ..FleetConfig::default()
    })
    .unwrap();
    let (id, rx) = fleet.register(device(), ModelKey::shared(1));
    let window = traffic(1, 1, 5)[0][0].clone();

    let mut accepted = 0;
    let mut rejections = 0;
    for _ in 0..(capacity * 4) {
        match fleet.submit(id, window.clone()) {
            Ok(_) => accepted += 1,
            Err(SubmitError::QueueFull { shard, retry_after }) => {
                assert_eq!(shard, 0);
                assert!(retry_after > Duration::ZERO);
                rejections += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
        // The queue never grows past its bound.
        assert!(fleet.shard_stats()[0].pending <= capacity);
    }
    assert_eq!(accepted, capacity);
    assert_eq!(rejections, capacity * 3);
    let stats = &fleet.shard_stats()[0];
    assert_eq!(stats.accepted, capacity as u64);
    assert_eq!(stats.rejected, (capacity * 3) as u64);

    // Draining serves exactly the admitted windows and frees capacity.
    let mut fleet = fleet;
    assert_eq!(fleet.pump(), capacity);
    assert_eq!(collect(&rx, capacity).len(), capacity);
    assert!(fleet.submit(id, window).is_ok());
}

#[test]
fn per_session_and_global_inflight_caps_apply() {
    let fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 2,
        queue_capacity: 100,
        max_inflight_per_session: 2,
        max_inflight_global: 3,
        ..FleetConfig::default()
    })
    .unwrap();
    let (a, _rx_a) = fleet.register(device(), ModelKey::shared(1));
    let (b, _rx_b) = fleet.register(device(), ModelKey::shared(1));
    let window = traffic(1, 1, 6)[0][0].clone();

    assert!(fleet.submit(a, window.clone()).is_ok());
    assert!(fleet.submit(a, window.clone()).is_ok());
    assert!(matches!(
        fleet.submit(a, window.clone()),
        Err(SubmitError::SessionBusy { in_flight: 2, .. })
    ));
    assert!(fleet.submit(b, window.clone()).is_ok());
    assert!(matches!(
        fleet.submit(b, window.clone()),
        Err(SubmitError::FleetBusy { in_flight: 3, .. })
    ));
    assert_eq!(fleet.in_flight(), 3);
}

#[test]
fn personalisation_rekeys_a_session() {
    let mut fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 1,
        ..FleetConfig::default()
    })
    .unwrap();
    let key = ModelKey::of_bundle(bundle());
    let (a, rx_a) = fleet.register(device(), key);
    let (b, rx_b) = fleet.register(device(), key);
    assert_eq!(fleet.session_key(a).unwrap(), fleet.session_key(b).unwrap());

    // Session A learns a private gesture on-device, through the fleet.
    let recording = SensorDataset::record_session(
        "secret_gesture",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        9,
    );
    fleet
        .update_session(a, |dev| {
            dev.learn_new_activity("secret_gesture", &recording)
                .unwrap()
                .committed()
                .unwrap();
        })
        .unwrap();
    let key_a = fleet.session_key(a).unwrap();
    assert!(key_a.is_unique());
    assert_ne!(key_a, fleet.session_key(b).unwrap());

    // Both still serve; B's predictions never mention A's class.
    let per_user = traffic(2, 2, 10);
    for r in 0..2 {
        fleet.submit(a, per_user[0][r].clone()).unwrap();
        fleet.submit(b, per_user[1][r].clone()).unwrap();
    }
    fleet.pump();
    let classes_b = fleet.with_session(b, |dev| dev.classes()).unwrap();
    for reply in collect(&rx_a, 2) {
        let pred = reply.outcome.unwrap();
        assert_eq!(pred.distances.len(), 6); // 5 base + the new gesture
    }
    for reply in collect(&rx_b, 2) {
        let pred = reply.outcome.unwrap();
        assert_eq!(pred.distances.len(), 5);
        assert!(classes_b.contains(&pred.label));
        assert_ne!(pred.label, "secret_gesture");
    }
}

#[test]
fn deregister_returns_device_and_drops_queued_windows() {
    let mut fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 1,
        ..FleetConfig::default()
    })
    .unwrap();
    let (a, rx_a) = fleet.register(device(), ModelKey::shared(1));
    let (b, rx_b) = fleet.register(device(), ModelKey::shared(1));
    let window = traffic(1, 1, 11)[0][0].clone();
    fleet.submit(a, window.clone()).unwrap();
    fleet.submit(b, window.clone()).unwrap();

    let dev_a = fleet.deregister(a).unwrap();
    assert_eq!(dev_a.classes().len(), 5);
    assert!(matches!(
        fleet.submit(a, window.clone()),
        Err(SubmitError::UnknownSession(_))
    ));
    assert!(matches!(
        fleet.deregister(a),
        Err(SubmitError::UnknownSession(_))
    ));

    // B's window still serves; A's died with the session.
    fleet.pump();
    assert!(rx_b.recv_timeout(Duration::from_secs(5)).is_ok());
    assert!(rx_a.try_recv().is_err());
    assert_eq!(fleet.in_flight(), 0);
}

#[test]
fn shutdown_serves_everything_already_admitted() {
    let fleet = Fleet::new(FleetConfig {
        workers: 2,
        shards: 2,
        ..FleetConfig::default()
    })
    .unwrap();
    let key = ModelKey::of_bundle(bundle());
    let sessions: Vec<(SessionId, Receiver<FleetReply>)> =
        (0..4).map(|_| fleet.register(device(), key)).collect();
    let per_user = traffic(4, 2, 12);
    for r in 0..2 {
        for (u, (id, _)) in sessions.iter().enumerate() {
            submit_retrying(&fleet, *id, &per_user[u][r]);
        }
    }
    fleet.shutdown();
    for (_, rx) in &sessions {
        assert_eq!(collect(rx, 2).len(), 2);
    }
}

#[test]
fn fleet_latency_stats_feed_each_device() {
    let mut fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 1,
        ..FleetConfig::default()
    })
    .unwrap();
    let (id, _rx) = fleet.register(device(), ModelKey::shared(3));
    let per_user = traffic(1, 3, 13);
    for w in &per_user[0] {
        fleet.submit(id, w.clone()).unwrap();
    }
    fleet.pump();
    let stats = fleet.with_session(id, |dev| dev.latency_stats()).unwrap();
    assert_eq!(stats.count, 3);
    assert!(stats.mean_us > 0.0);
    let shard = &fleet.shard_stats()[0];
    assert_eq!(shard.latency.count, 3);
    assert!(shard.mean_batch() >= 1.0);
}

/// A deliberately panicking session in an 8-worker fleet is isolated and
/// quarantined; every innocent session's replies stay bit-identical to
/// the sequential oracle, and the shard stats account for the carnage.
#[test]
fn panicking_session_is_quarantined_and_innocents_match_sequential() {
    let users = 5;
    let rounds = 3;
    let victim = 0usize;
    let per_user = traffic(users, rounds, 91);

    // Sequential oracle for the innocent sessions only.
    let oracle: Vec<Vec<Prediction>> = per_user
        .iter()
        .map(|windows| {
            let mut dev = device();
            windows
                .iter()
                .map(|w| dev.infer_window(w).unwrap())
                .collect()
        })
        .collect();

    let fleet = Fleet::new(FleetConfig {
        workers: 8,
        shards: 2,
        quarantine_strikes: 2,
        quarantine_for: Duration::from_secs(60),
        ..FleetConfig::default()
    })
    .unwrap();
    let key = ModelKey::of_bundle(bundle());
    let registered: Vec<(SessionId, Receiver<FleetReply>)> =
        (0..users).map(|_| fleet.register(device(), key)).collect();
    let victim_id = registered[victim].0;

    // Two armed panics, one per victim window: each served victim window
    // blows up its micro-batch, re-blows up its solo retry, and lands one
    // strike. Two strikes trip the breaker.
    fleet.arm_panics(victim_id, 2).unwrap();

    for r in 0..rounds {
        for (u, (id, _)) in registered.iter().enumerate() {
            if u == victim && r >= 2 {
                continue; // third victim window may already be quarantined
            }
            submit_retrying(&fleet, *id, &per_user[u][r]);
        }
    }
    assert!(fleet.wait_idle(Duration::from_secs(30)), "fleet never idled");

    // Victim: both windows came back as errors naming the panic, never a
    // wedged channel and never a poisoned-lock crash of the whole fleet.
    let victim_replies = collect(&registered[victim].1, 2);
    for reply in &victim_replies {
        let err = reply.outcome.as_ref().unwrap_err();
        assert!(err.contains("panicked"), "unexpected victim error: {err}");
    }

    // Innocents: full service, bit-identical to sequential, in FIFO order,
    // despite sharing micro-batches with a panicking neighbour.
    for (u, (id, rx)) in registered.iter().enumerate() {
        if u == victim {
            continue;
        }
        let replies = collect(rx, rounds);
        for (r, reply) in replies.iter().enumerate() {
            assert_eq!(reply.session, *id);
            assert_eq!(reply.seq, r as u64, "user {u} replies out of order");
            let got = reply.outcome.as_ref().unwrap();
            let want = &oracle[u][r];
            assert_eq!(got.label, want.label, "user {u} round {r}");
            assert_eq!(got.confidence, want.confidence, "user {u} round {r}");
            assert_eq!(got.distances, want.distances, "user {u} round {r}");
        }
    }

    // The breaker is open: strikes accumulated and submits are refused
    // with a typed, retry-hinted rejection.
    let (strikes, open) = fleet.session_strikes(victim_id).unwrap();
    assert_eq!(strikes, 2);
    assert!(open, "breaker should be open after {strikes} strikes");
    match fleet.submit(victim_id, per_user[victim][2].clone()) {
        Err(SubmitError::Quarantined {
            strikes,
            retry_after,
        }) => {
            assert_eq!(strikes, 2);
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected Quarantined, got {other:?}"),
    }

    // Stats tell the story: every panic was caught (each armed window
    // fails its batch and then its solo retry), and one breaker tripped.
    let stats = fleet.shard_stats();
    let panics: u64 = stats.iter().map(|s| s.panics_caught).sum();
    let quarantined: u64 = stats.iter().map(|s| s.sessions_quarantined).sum();
    assert!(panics >= 3, "expected >=3 caught panics, saw {panics}");
    assert_eq!(quarantined, 1);
    let served: u64 = stats.iter().map(|s| s.windows).sum();
    assert_eq!(served, ((users - 1) * rounds) as u64);
    fleet.shutdown();
}

/// The breaker half-opens after `quarantine_for`: the session is admitted
/// again, serves cleanly, and re-trips immediately on its next strike.
/// Pump mode keeps the whole sequence deterministic.
#[test]
fn quarantine_half_opens_after_expiry_and_retrips_on_next_strike() {
    let mut fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 1,
        quarantine_strikes: 1,
        quarantine_for: Duration::from_millis(50),
        ..FleetConfig::default()
    })
    .unwrap();
    let (id, rx) = fleet.register(device(), ModelKey::of_bundle(bundle()));
    let per_user = traffic(1, 3, 92);
    let oracle = device().infer_window(&per_user[0][1]).unwrap();

    // Strike 1 trips the one-strike breaker.
    fleet.arm_panics(id, 1).unwrap();
    fleet.submit(id, per_user[0][0].clone()).unwrap();
    fleet.pump();
    assert!(collect(&rx, 1)[0].outcome.is_err());
    assert_eq!(fleet.session_strikes(id).unwrap(), (1, true));
    assert!(matches!(
        fleet.submit(id, per_user[0][1].clone()),
        Err(SubmitError::Quarantined { strikes: 1, .. })
    ));

    // After the window passes, the breaker half-opens: the submit is
    // admitted and a clean window serves bit-identically.
    std::thread::sleep(Duration::from_millis(60));
    fleet.submit(id, per_user[0][1].clone()).unwrap();
    fleet.pump();
    let reply = collect(&rx, 1).remove(0);
    let got = reply.outcome.as_ref().unwrap();
    assert_eq!(got.label, oracle.label);
    assert_eq!(got.confidence, oracle.confidence);
    assert_eq!(got.distances, oracle.distances);
    // Half-open clears the refusal but the strike history persists.
    assert_eq!(fleet.session_strikes(id).unwrap(), (1, false));

    // Next panic re-trips at the accumulated count, not from zero.
    fleet.arm_panics(id, 1).unwrap();
    fleet.submit(id, per_user[0][2].clone()).unwrap();
    fleet.pump();
    assert!(collect(&rx, 1)[0].outcome.is_err());
    assert_eq!(fleet.session_strikes(id).unwrap(), (2, true));

    // Quarantine state dies with the session.
    fleet.deregister(id).unwrap();
    assert!(matches!(
        fleet.submit(id, per_user[0][2].clone()),
        Err(SubmitError::UnknownSession(_))
    ));
}

/// Quarantine counts rejected submits as `rejected` in the shard stats,
/// and a zero-strike config disables the breaker entirely.
#[test]
fn zero_strike_threshold_disables_the_breaker() {
    let mut fleet = Fleet::new(FleetConfig {
        workers: 0,
        shards: 1,
        quarantine_strikes: 0,
        ..FleetConfig::default()
    })
    .unwrap();
    let (id, rx) = fleet.register(device(), ModelKey::of_bundle(bundle()));
    let per_user = traffic(1, 2, 93);

    fleet.arm_panics(id, 1).unwrap();
    fleet.submit(id, per_user[0][0].clone()).unwrap();
    fleet.pump();
    assert!(collect(&rx, 1)[0].outcome.is_err());

    // A strike landed but no breaker exists to trip.
    let (strikes, open) = fleet.session_strikes(id).unwrap();
    assert_eq!(strikes, 1);
    assert!(!open);
    fleet.submit(id, per_user[0][1].clone()).unwrap();
    fleet.pump();
    assert!(collect(&rx, 1)[0].outcome.is_ok());
    assert_eq!(
        fleet.shard_stats()[0].sessions_quarantined,
        0,
        "breaker disabled, nothing should quarantine"
    );
}
