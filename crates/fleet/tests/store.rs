//! Tiered session store integration tests: delta apply/revert
//! exactness (property-tested), base+delta serving equivalence, shared
//! -key batching for personalized sessions, and the headline guarantee
//! — a paged-out then rehydrated session serves *bit-identical*
//! predictions.

use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, EdgeConfig, EdgeDevice, Lineage, ModelVersion,
    NcmClassifier, PersonalDelta, Precision, Prediction, RollbackReason,
};
use magneto_fleet::{
    Fleet, FleetConfig, FleetReply, ModelKey, ReplayOutcome, SessionId, StoreError, SubmitError,
};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use magneto_tensor::vector::DistanceMetric;
use proptest::prelude::*;
use std::sync::mpsc::Receiver;
use std::sync::OnceLock;
use std::time::Duration;

fn bundle() -> &'static EdgeBundle {
    static BUNDLE: OnceLock<EdgeBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap()
            .0
    })
}

fn windows(count: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut pool = StreamPool::new(1, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), seed);
    (0..count).map(|_| pool.next_round().remove(0)).collect()
}

fn spool_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "magneto_store_test_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn recv_ok(rx: &Receiver<FleetReply>) -> Prediction {
    rx.recv_timeout(Duration::from_secs(30))
        .expect("reply")
        .outcome
        .expect("prediction")
}

/// Bitwise prediction equality, ignoring wall-clock latency.
fn assert_bit_identical(a: &Prediction, b: &Prediction) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
    assert_eq!(a.distances.len(), b.distances.len());
    for (x, y) in a.distances.iter().zip(&b.distances) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.quality, b.quality);
}

// ---------------------------------------------------------------------
// Satellite: streamed FNV key == reference over the full serialized copy.
// ---------------------------------------------------------------------

#[test]
fn streamed_model_key_matches_full_buffer_fnv() {
    let bytes = bundle().to_bytes(false);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in &bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let reference = ModelKey::shared(hash); // masks the unique bit
    assert_eq!(ModelKey::of_bundle(bundle()), reference);
    assert!(!ModelKey::of_bundle(bundle()).is_unique());
}

// ---------------------------------------------------------------------
// Property: delta apply → revert restores the classifier byte-for-byte.
// ---------------------------------------------------------------------

fn arb_ncm(dim: usize) -> impl Strategy<Value = NcmClassifier> {
    prop::collection::vec(
        prop::collection::vec(-1.0e3f32..1.0e3, dim),
        1..5,
    )
    .prop_map(move |protos| {
        let named = protos
            .into_iter()
            .enumerate()
            .map(|(i, p)| (format!("base_{i}"), p))
            .collect();
        NcmClassifier::new(DistanceMetric::Euclidean, named).unwrap()
    })
}

fn arb_delta(dim: usize) -> impl Strategy<Value = PersonalDelta> {
    // Labels overlap base labels (replacements) and add fresh ones;
    // duplicate draws collapse in the delta's ordered map.
    let labels: Vec<String> = (0..5)
        .map(|i| format!("base_{i}"))
        .chain((0..3).map(|i| format!("user_{i}")))
        .collect();
    prop::collection::vec(
        (
            prop::sample::select(labels),
            prop::collection::vec(-1.0e3f32..1.0e3, dim),
        ),
        0..6,
    )
    .prop_map(|entries| {
        let mut d = PersonalDelta::new();
        for (label, proto) in entries {
            d.set_prototype(&label, proto);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_revert_is_byte_identical(ncm in arb_ncm(6), delta in arb_delta(6)) {
        let mut live = ncm.clone();
        let before = serde_json::to_vec(&live).unwrap();
        let undo = delta.apply(&mut live).unwrap();
        undo.revert(&mut live);
        prop_assert_eq!(serde_json::to_vec(&live).unwrap(), before);
    }

    #[test]
    fn delta_bytes_roundtrip_rebuilds_identical_overlay(
        ncm in arb_ncm(6),
        delta in arb_delta(6),
    ) {
        // The rehydration path: delta → bytes → delta → apply must equal
        // a direct apply on the same base.
        let back = PersonalDelta::from_bytes(&delta.to_bytes()).unwrap();
        let mut direct = ncm.clone();
        let mut via_bytes = ncm.clone();
        delta.apply(&mut direct).unwrap();
        back.apply(&mut via_bytes).unwrap();
        prop_assert_eq!(
            serde_json::to_vec(&direct).unwrap(),
            serde_json::to_vec(&via_bytes).unwrap()
        );
    }
}

// ---------------------------------------------------------------------
// Serving equivalence and shared-key batching.
// ---------------------------------------------------------------------

#[test]
fn empty_delta_session_serves_like_a_device() {
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let device = EdgeDevice::deploy(bundle().clone(), EdgeConfig::default()).unwrap();
    let (dev_id, dev_rx) = fleet.register(device, key);
    let (delta_id, delta_rx) = fleet.register_from_base(key, Precision::F32).unwrap();

    // Same shared key — the scheduler batches them into one forward.
    assert_eq!(fleet.session_key(dev_id).unwrap(), key);
    assert_eq!(fleet.session_key(delta_id).unwrap(), key);

    for window in windows(4, 11) {
        fleet.submit(dev_id, window.clone()).unwrap();
        fleet.submit(delta_id, window).unwrap();
        fleet.pump();
        let a = recv_ok(&dev_rx);
        let b = recv_ok(&delta_rx);
        assert_bit_identical(&a, &b);
    }
    let stats = fleet.shard_stats();
    assert!(
        stats.iter().any(|s| s.max_batch >= 2),
        "device + delta session sharing a key never batched together"
    );
    fleet.shutdown();
}

#[test]
fn calibration_keeps_the_shared_key_and_stays_batchable() {
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let (a, a_rx) = fleet.register_from_base(key, Precision::F32).unwrap();
    let (b, b_rx) = fleet.register_from_base(key, Precision::F32).unwrap();

    // Personalize session `a` only.
    fleet
        .calibrate_session(a, "user_move", &windows(3, 21))
        .unwrap();
    fleet.set_session_threshold(a, 0.75).unwrap();

    // Unlike update_session, personalization does NOT fork the key.
    assert_eq!(fleet.session_key(a).unwrap(), key);
    assert!(!fleet.session_key(a).unwrap().is_unique());
    let delta = fleet.session_delta(a).unwrap();
    assert!(delta.prototype("user_move").is_some());
    assert_eq!(delta.threshold(), Some(0.75));

    // Both sessions still serve — and still batch together.
    let w = windows(1, 33).remove(0);
    fleet.submit(a, w.clone()).unwrap();
    fleet.submit(b, w.clone()).unwrap();
    fleet.pump();
    let pa = recv_ok(&a_rx);
    let pb = recv_ok(&b_rx);
    // The personalized session sees one more class than the base peer.
    assert_eq!(pa.distances.len(), pb.distances.len() + 1);
    assert!(fleet.shard_stats().iter().any(|s| s.max_batch >= 2));
    fleet.shutdown();
}

// ---------------------------------------------------------------------
// Tier lifecycle: evict → rehydrate is bit-identical, stats track it.
// ---------------------------------------------------------------------

#[test]
fn paged_out_session_rehydrates_bit_identically() {
    let spool = spool_dir("rehydrate");
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    fleet.set_spool_dir(&spool).unwrap();
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let (id, rx) = fleet.register_from_base(key, Precision::F32).unwrap();
    fleet
        .calibrate_session(id, "user_move", &windows(3, 5))
        .unwrap();

    let probes = windows(3, 77);
    let before: Vec<Prediction> = probes
        .iter()
        .map(|w| {
            fleet.submit(id, w.clone()).unwrap();
            fleet.pump();
            recv_ok(&rx)
        })
        .collect();

    // Evict: the delta leaves RAM for a crash-safe framed spool file.
    assert!(fleet.page_out(id).unwrap());
    let stats = fleet.shard_stats();
    assert_eq!(stats.iter().map(|s| s.paged_sessions).sum::<usize>(), 1);
    assert!(
        std::fs::read_dir(&spool).unwrap().count() > 0,
        "no spool file written"
    );

    // Submitting to the cold session rehydrates it on the drain path.
    let after: Vec<Prediction> = probes
        .iter()
        .map(|w| {
            fleet.submit(id, w.clone()).unwrap();
            fleet.pump();
            recv_ok(&rx)
        })
        .collect();
    for (a, b) in before.iter().zip(&after) {
        assert_bit_identical(a, b);
    }
    let stats = fleet.shard_stats();
    assert_eq!(stats.iter().map(|s| s.paged_sessions).sum::<usize>(), 0);
    assert!(stats.iter().map(|s| s.rehydrations).sum::<u64>() >= 1);

    // The rehydrated delta equals the pre-eviction one exactly.
    let delta = fleet.deregister_delta(id).unwrap();
    assert!(delta.prototype("user_move").is_some());
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn lru_capacity_evicts_coldest_and_resident_bytes_shrink() {
    let spool = spool_dir("lru");
    let config = FleetConfig {
        hot_delta_capacity: 2,
        ..FleetConfig::deterministic()
    };
    let mut fleet = Fleet::new(config).unwrap();
    fleet.set_spool_dir(&spool).unwrap();
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let ids: Vec<SessionId> = (0..5)
        .map(|_| fleet.register_from_base(key, Precision::F32).unwrap().0)
        .collect();

    let stats = fleet.shard_stats();
    assert_eq!(stats.iter().map(|s| s.hot_sessions).sum::<usize>(), 2);
    assert_eq!(stats.iter().map(|s| s.paged_sessions).sum::<usize>(), 3);

    // Touching a paged session pages it back in (and pushes another out).
    let w = windows(1, 9).remove(0);
    fleet.submit(ids[0], w).unwrap();
    fleet.pump();
    let stats = fleet.shard_stats();
    assert!(stats.iter().map(|s| s.rehydrations).sum::<u64>() >= 1);
    assert_eq!(stats.iter().map(|s| s.hot_sessions).sum::<usize>(), 2);
    assert_eq!(stats.iter().map(|s| s.paged_sessions).sum::<usize>(), 3);

    // Tiered deltas are orders of magnitude below one resident device.
    let per_session: usize = stats.iter().map(|s| s.resident_bytes).sum();
    let naive = EdgeDevice::deploy(bundle().clone(), EdgeConfig::default())
        .unwrap()
        .resident_bytes();
    assert!(
        per_session < naive,
        "5 tiered sessions ({per_session} B) should undercut ONE device ({naive} B)"
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

// ---------------------------------------------------------------------
// API boundaries between device-backed and base+delta sessions.
// ---------------------------------------------------------------------

#[test]
fn device_and_delta_apis_reject_the_wrong_session_kind() {
    let fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let (delta_id, _delta_rx) = fleet.register_from_base(key, Precision::F32).unwrap();
    let device = EdgeDevice::deploy(bundle().clone(), EdgeConfig::default()).unwrap();
    let (dev_id, _dev_rx) = fleet.register(device, key);

    // Device APIs on a delta session.
    assert_eq!(
        fleet.with_session(delta_id, |d| d.classes()).unwrap_err(),
        SubmitError::NotDeviceBacked(delta_id)
    );
    assert_eq!(
        fleet.update_session(delta_id, |_| ()).unwrap_err(),
        SubmitError::NotDeviceBacked(delta_id)
    );
    assert_eq!(
        fleet.deregister(delta_id).unwrap_err(),
        SubmitError::NotDeviceBacked(delta_id)
    );

    // Delta APIs on a device session.
    assert_eq!(
        fleet.deregister_delta(dev_id).unwrap_err(),
        StoreError::NotDelta(dev_id)
    );
    assert!(fleet.session_delta(dev_id).is_err());
    // Devices never page.
    assert!(!fleet.page_out(dev_id).unwrap());

    // Unknown base is reported as such.
    let missing = fleet.register_from_base(ModelKey::shared(424_242), Precision::F32);
    assert!(matches!(missing, Err(StoreError::UnknownBase(_, _))));

    // Both still deregister cleanly through their own APIs.
    fleet.deregister_delta(delta_id).unwrap();
    fleet.deregister(dev_id).unwrap().classes();
    fleet.shutdown();
}

// ---------------------------------------------------------------------
// Versioned base migration: transactional replay, byte-exact rollback.
// ---------------------------------------------------------------------

/// The seed bundle stamped as version 1, and its version-2 successor.
/// Same weights (only the lineage differs), so a committed migration's
/// replayed prototypes must be bit-identical to a fresh calibration.
fn versioned_pair() -> (EdgeBundle, EdgeBundle) {
    let v1 = bundle().clone().with_lineage(Lineage::root(1));
    let v2 = v1.clone().with_lineage(v1.child_lineage());
    (v1, v2)
}

#[test]
fn migration_replays_calibration_onto_new_base() {
    let (v1, v2) = versioned_pair();
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let key1 = fleet.register_base(&v1, Precision::F32).unwrap();
    let key2 = fleet.register_base(&v2, Precision::F32).unwrap();
    assert_ne!(key1, key2, "lineage must fork the model key");

    let calib = windows(3, 41);
    let (id, rx) = fleet.register_from_base(key1, Precision::F32).unwrap();
    fleet.calibrate_session(id, "user_move", &calib).unwrap();
    assert_eq!(fleet.session_version(id).unwrap(), ModelVersion(1));
    assert_eq!(
        fleet.session_delta(id).unwrap().base_version(),
        Some(ModelVersion(1))
    );

    // A control session calibrated directly on v2: the migrated session
    // must end up serving bit-identically to it.
    let (control, control_rx) = fleet.register_from_base(key2, Precision::F32).unwrap();
    fleet
        .calibrate_session(control, "user_move", &calib)
        .unwrap();

    // Migrate through a page-out so the replay crosses the cold tier.
    assert!(fleet.page_out(id).unwrap());
    let outcome = fleet.migrate_session(id, key2, Precision::F32).unwrap();
    assert!(
        matches!(
            outcome,
            ReplayOutcome::Committed {
                replayed_prototypes: 1,
                ..
            }
        ),
        "{outcome:?}"
    );
    assert_eq!(fleet.session_version(id).unwrap(), ModelVersion(2));
    assert_eq!(fleet.session_key(id).unwrap(), key2);
    assert_eq!(
        fleet.session_delta(id).unwrap().base_version(),
        Some(ModelVersion(2))
    );

    for w in windows(3, 43) {
        fleet.submit(id, w.clone()).unwrap();
        fleet.submit(control, w).unwrap();
        fleet.pump();
        let migrated = recv_ok(&rx);
        let fresh = recv_ok(&control_rx);
        assert_bit_identical(&migrated, &fresh);
    }
    fleet.shutdown();
}

#[test]
fn failed_migration_rolls_back_byte_exactly() {
    let (v1, v2) = versioned_pair();
    let fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let key1 = fleet.register_base(&v1, Precision::F32).unwrap();
    let key2 = fleet.register_base(&v2, Precision::F32).unwrap();
    let (id, _rx) = fleet.register_from_base(key1, Precision::F32).unwrap();

    // A prototype with no support rows cannot be replayed through a new
    // backbone — inject one (at the base's true embedding dim) to force
    // the MissingReplaySource gate.
    fleet
        .calibrate_session(id, "user_move", &windows(2, 51))
        .unwrap();
    let dim = fleet
        .session_delta(id)
        .unwrap()
        .prototype("user_move")
        .unwrap()
        .len();
    let mut orphan = PersonalDelta::new();
    orphan.set_prototype("ghost", vec![0.5; dim]);
    orphan.pin_base(ModelVersion(1));
    fleet
        .restore_session(id, key1, Precision::F32, orphan)
        .unwrap();
    let before = fleet.session_delta(id).unwrap().to_bytes();

    let outcome = fleet.migrate_session(id, key2, Precision::F32).unwrap();
    assert_eq!(
        outcome.rollback_reason(),
        Some(RollbackReason::MissingReplaySource)
    );
    assert!(!outcome.is_committed());

    // The rolled-back session is byte-identical to its pre-migration
    // state and still serves version 1 under the old key.
    assert_eq!(fleet.session_delta(id).unwrap().to_bytes(), before);
    assert_eq!(fleet.session_version(id).unwrap(), ModelVersion(1));
    assert_eq!(fleet.session_key(id).unwrap(), key1);

    // Migrating to an unregistered base is a typed error, not a panic.
    assert!(matches!(
        fleet.migrate_session(id, ModelKey::shared(7), Precision::F32),
        Err(StoreError::UnknownBase(_, _))
    ));
    fleet.shutdown();
}

// ---------------------------------------------------------------------
// Int8 exemplar index: calibrated support rows serve through the
// session's quantized NCM index and survive a page-out/rehydrate cycle.
// ---------------------------------------------------------------------

#[test]
fn int8_session_exemplars_survive_paging_and_serve_through_index() {
    let spool = spool_dir("int8_exemplars");
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    fleet.set_spool_dir(&spool).unwrap();
    let key = fleet.register_base(bundle(), Precision::Int8).unwrap();
    let (id, rx) = fleet.register_from_base(key, Precision::Int8).unwrap();

    // Before calibration the session serves off the shared base: no
    // exemplar rows on the index.
    assert_eq!(fleet.session_exemplar_rows(id).unwrap(), 0);

    let calib = windows(4, 13);
    fleet.calibrate_session(id, "user_move", &calib).unwrap();

    // The overlay indexed one int8 exemplar row per calibration window,
    // embedded through the int8 backbone (no f32 weights exist for this
    // precision — there is nothing to rehydrate).
    assert_eq!(fleet.session_exemplar_rows(id).unwrap(), calib.len());

    let probes = windows(3, 99);
    let before: Vec<Prediction> = probes
        .iter()
        .map(|w| {
            fleet.submit(id, w.clone()).unwrap();
            fleet.pump();
            recv_ok(&rx)
        })
        .collect();

    // Page out, then serve again: the rehydrated overlay rebuilds the
    // same exemplar index and predictions stay bit-identical.
    assert!(fleet.page_out(id).unwrap());
    let after: Vec<Prediction> = probes
        .iter()
        .map(|w| {
            fleet.submit(id, w.clone()).unwrap();
            fleet.pump();
            recv_ok(&rx)
        })
        .collect();
    for (a, b) in before.iter().zip(&after) {
        assert_bit_identical(a, b);
    }
    assert_eq!(fleet.session_exemplar_rows(id).unwrap(), calib.len());

    // The exemplar accessor itself rehydrates a cold session.
    assert!(fleet.page_out(id).unwrap());
    assert_eq!(fleet.session_exemplar_rows(id).unwrap(), calib.len());

    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}

// ---------------------------------------------------------------------
// Tentpole: per-session self-healing under concept drift for delta
// sessions — streaming detection on the reply path, transactional delta
// recalibration, shard counters.
// ---------------------------------------------------------------------

/// `count` windows of walk data with `plan`'s drift applied, in the
/// channel-major layout `submit` expects.
fn drifted_walk_windows(
    count: usize,
    seed: u64,
    plan: magneto_sensors::DriftPlan,
) -> Vec<Vec<Vec<f32>>> {
    use magneto_sensors::{ActivityKind, PersonProfile, SensorStream, NUM_CHANNELS};
    let mut stream = SensorStream::new(
        ActivityKind::Walk.profile(),
        PersonProfile::nominal(),
        StreamConfig::ideal(),
        magneto_tensor::SeededRng::new(seed),
    );
    let frames: Vec<_> = (0..count * 120).map(|_| stream.next().unwrap()).collect();
    let frames = plan.injector().apply(&frames);
    frames
        .chunks(120)
        .map(|chunk| {
            let mut w = vec![vec![0.0f32; chunk.len()]; NUM_CHANNELS];
            for (t, f) in chunk.iter().enumerate() {
                for (c, v) in f.values.iter().enumerate() {
                    w[c][t] = *v;
                }
            }
            w
        })
        .collect()
}

fn healing_fleet(healing: magneto_core::SelfHealingConfig) -> Fleet {
    Fleet::new(FleetConfig {
        healing: Some(healing),
        ..FleetConfig::deterministic()
    })
    .unwrap()
}

fn drain_replies(fleet: &mut Fleet, id: SessionId, rx: &Receiver<FleetReply>, windows: &[Vec<Vec<f32>>]) -> Vec<Prediction> {
    windows
        .iter()
        .map(|w| {
            fleet.submit(id, w.clone()).unwrap();
            fleet.pump();
            recv_ok(rx)
        })
        .collect()
}

#[test]
fn delta_session_detects_drift_and_recalibrates_transactionally() {
    let healing = magneto_core::SelfHealingConfig {
        min_confidence: 0.05,
        ..magneto_core::SelfHealingConfig::default()
    };
    let mut fleet = healing_fleet(healing);
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let (id, rx) = fleet.register_from_base(key, Precision::F32).unwrap();
    // Calibrate from a disjoint recording: served windows must not be
    // their own calibration exemplars or live distances start at ~0.
    let calib = drifted_walk_windows(4, 76, magneto_sensors::DriftPlan::none(0));
    fleet.calibrate_session(id, "user_walk", &calib).unwrap();
    let clean = drifted_walk_windows(8, 77, magneto_sensors::DriftPlan::none(0));

    // Clean serving: every reply carries a drift status, none alert.
    let preds = drain_replies(&mut fleet, id, &rx, &clean);
    assert!(preds.iter().all(|p| p.drift.is_some()));
    let stats = fleet.session_healing_stats(id).unwrap().unwrap();
    assert_eq!(stats.drift_alerts, 0, "clean stream alerted: {stats:?}");

    // Gait drift: distances blow past the live baseline.
    let drifted = drifted_walk_windows(30, 78, magneto_sensors::DriftPlan::gait_change(79, 1.6, 600));
    let preds = drain_replies(&mut fleet, id, &rx, &drifted);
    assert!(preds.iter().any(|p| matches!(
        p.drift,
        Some(magneto_core::drift::DriftStatus::Drifted { .. })
    )));
    let stats = fleet.session_healing_stats(id).unwrap().unwrap();
    assert!(stats.drift_alerts >= 1, "no alert: {stats:?}");
    assert!(
        stats.auto_recals + stats.recal_rollbacks >= 1,
        "sustained drift never attempted recalibration: {stats:?}"
    );
    // Shard counters mirror the per-session stats.
    let shard: u64 = fleet.shard_stats().iter().map(|s| s.drift_alerts).sum();
    assert!(shard >= 1);
    let attempts: u64 = fleet
        .shard_stats()
        .iter()
        .map(|s| s.auto_recals + s.recal_rollbacks)
        .sum();
    assert!(attempts >= 1);
    fleet.shutdown();
}

#[test]
fn rejected_fleet_recalibration_leaves_delta_bytes_exact() {
    // Three labels calibrated from identical windows cannot all be
    // classified correctly, and one recalibration can refresh only one
    // of them, so a replay floor of 1.0 rejects every candidate — each
    // attempt must roll back leaving the delta byte-identical, and
    // strikes must degrade the loop.
    let healing = magneto_core::SelfHealingConfig {
        min_confidence: 0.05,
        cooldown: 4,
        max_strikes: 2,
        ..magneto_core::SelfHealingConfig::default()
    };
    let mut fleet = Fleet::new(FleetConfig {
        healing: Some(healing),
        replay_accuracy_floor: 1.0,
        ..FleetConfig::deterministic()
    })
    .unwrap();
    let key = fleet.register_base(bundle(), Precision::F32).unwrap();
    let (id, rx) = fleet.register_from_base(key, Precision::F32).unwrap();
    let calib = windows(3, 91);
    fleet.calibrate_session(id, "user_a", &calib).unwrap();
    fleet.calibrate_session(id, "user_b", &calib).unwrap();
    fleet.calibrate_session(id, "user_c", &calib).unwrap();
    let before = fleet.session_delta(id).unwrap().to_bytes();

    let clean = drifted_walk_windows(8, 92, magneto_sensors::DriftPlan::none(0));
    drain_replies(&mut fleet, id, &rx, &clean);
    let drifted = drifted_walk_windows(60, 93, magneto_sensors::DriftPlan::gait_change(94, 1.6, 600));
    drain_replies(&mut fleet, id, &rx, &drifted);

    let stats = fleet.session_healing_stats(id).unwrap().unwrap();
    assert_eq!(stats.auto_recals, 0, "impossible floor committed: {stats:?}");
    assert!(stats.recal_rollbacks >= 1, "no rollback recorded: {stats:?}");
    if stats.recal_rollbacks >= 2 {
        assert!(stats.degraded, "strikes exhausted but not degraded: {stats:?}");
    }
    assert_eq!(
        before,
        fleet.session_delta(id).unwrap().to_bytes(),
        "rolled-back recalibration mutated the delta"
    );
    fleet.shutdown();
}
