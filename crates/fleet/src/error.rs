//! Typed fleet start-up errors.

use std::fmt;

/// Why a [`crate::Fleet`] failed to start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A configuration knob is out of range
    /// ([`crate::FleetConfig::validate`]).
    Config(String),
    /// The OS refused to spawn a worker thread. Workers spawned before
    /// the failure have already been shut down and joined — a failed
    /// `Fleet::new` never leaks threads.
    Spawn {
        /// Index of the worker that failed to spawn.
        worker: usize,
        /// The OS error description.
        reason: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(msg) => write!(f, "invalid fleet config: {msg}"),
            FleetError::Spawn { worker, reason } => {
                write!(f, "failed to spawn fleet worker {worker}: {reason}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(FleetError::Config("shards".into()).to_string().contains("shards"));
        let e = FleetError::Spawn {
            worker: 3,
            reason: "EAGAIN".into(),
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains("EAGAIN"));
    }
}
