//! # magneto-fleet
//!
//! A concurrent multi-device serving runtime for MAGNETO: many
//! personalised [`magneto_core::EdgeDevice`] sessions under one roof,
//! served by micro-batching schedulers that coalesce pending sensor
//! windows *across sessions* into single backbone forward passes.
//!
//! The paper's demo drives one phone; the ROADMAP's north star is a
//! production-scale system. This crate is the serving layer between the
//! two, built std-only (threads + `mpsc` + atomics — no async runtime):
//!
//! * **Sharded session registry** — a session is pinned to shard
//!   `id % shards`, each shard is drained by exactly one worker thread,
//!   so per-session request order is FIFO end to end with no global lock.
//! * **Bounded queues + admission control** — every shard queue has a
//!   hard capacity, and both per-session and fleet-wide in-flight caps
//!   apply at submit. Overload *rejects* with a retry-after hint
//!   ([`SubmitError`]); memory never grows with load.
//! * **Cross-session micro-batching** — each drain cycle groups pending
//!   windows by [`ModelKey`] (bit-identical backbone weights) and runs
//!   each group through `magneto_core::inference::infer_batch`: one
//!   `(batch, dim)` matmul chain instead of per-window forwards, which
//!   is where PR 1's 2.58× batched embed speedup becomes fleet
//!   throughput.
//! * **Determinism** — scheduling decides only *when* windows run, never
//!   *what* they compute: featurisation and classification are per-job
//!   with the owning session's own pipeline/prototypes, and the batched
//!   kernels are bit-identical to the per-sample path. Fleet outputs
//!   equal sequential per-device inference at any worker/shard count
//!   (property-tested), and `workers == 0` gives a fully deterministic
//!   caller-driven mode ([`Fleet::pump`]).
//!
//! **Privacy:** sessions share *compute*, never *data*. A window is
//! pre-processed by its own session's pipeline, classified against its
//! own prototypes, and its reply goes only to its own channel; the only
//! thing two sessions may share is a read-only borrow of backbone
//! weights they both already have. On-device learning re-keys a session
//! ([`Fleet::update_session`]) so personalised weights are never pooled.
//!
//! * **Tiered session store** ([`store`]) — beyond device-backed
//!   sessions, the fleet serves *base+delta* sessions: one refcounted
//!   immutable [`store::SharedBase`] per `(ModelKey, precision)` plus a
//!   compact per-user [`magneto_core::PersonalDelta`] applied as an NCM
//!   overlay at serve time. Personalized sessions keep the shared key
//!   (only the classifier is overlaid, never the backbone) and stay
//!   batchable; cold deltas page out to crash-safe storage under an LRU
//!   and rehydrate bit-identically on their next submit. Resident bytes
//!   per user collapse from a full model copy to the delta alone.
//!
//! ```
//! use magneto_core::{CloudConfig, CloudInitializer, EdgeConfig, EdgeDevice};
//! use magneto_fleet::{Fleet, FleetConfig, ModelKey};
//! use magneto_sensors::{GeneratorConfig, SensorDataset};
//!
//! let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 42);
//! let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
//!     .pretrain(&corpus)
//!     .unwrap();
//! let key = ModelKey::of_bundle(&bundle);
//!
//! let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
//! let device = EdgeDevice::deploy(bundle, EdgeConfig::default()).unwrap();
//! let (id, replies) = fleet.register(device, key);
//!
//! let probe = SensorDataset::generate(&GeneratorConfig::tiny(), 7);
//! fleet.submit(id, probe.windows[0].channels.clone()).unwrap();
//! fleet.pump();
//! let reply = replies.try_recv().unwrap();
//! assert_eq!(reply.session, id);
//! assert!(reply.outcome.is_ok());
//! ```

pub mod config;
pub mod counters;
pub mod error;
pub mod runtime;
pub mod session;
pub mod store;

pub use config::FleetConfig;
pub use counters::ShardStats;
pub use error::FleetError;
pub use runtime::Fleet;
pub use session::{FleetReply, ModelKey, SessionId, SubmitError};
pub use store::{ReplayOutcome, SharedBase, StoreError};
