//! Per-shard serving counters.

use crate::store::TierSnapshot;
use magneto_core::inference::{LatencyRecorder, LatencyStats};
use magneto_core::Precision;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Live counters for one shard. Counts are atomics (touched on the
/// submit fast path); the latency recorder sits behind its own mutex and
/// is only touched by the shard's single draining worker.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub batches: AtomicU64,
    pub windows: AtomicU64,
    pub windows_f32: AtomicU64,
    pub windows_int8: AtomicU64,
    pub max_batch: AtomicU64,
    pub panics_caught: AtomicU64,
    pub sessions_quarantined: AtomicU64,
    pub drift_alerts: AtomicU64,
    pub auto_recals: AtomicU64,
    pub recal_rollbacks: AtomicU64,
    pub latency: Mutex<LatencyRecorder>,
}

impl ShardCounters {
    /// Fold one executed micro-batch into the counters. `precision` is
    /// the precision the batch's shared backbone ran at.
    pub fn record_batch(&self, size: usize, precision: Precision, per_window_latency: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.windows.fetch_add(size as u64, Ordering::Relaxed);
        match precision {
            Precision::F32 => self.windows_f32.fetch_add(size as u64, Ordering::Relaxed),
            Precision::Int8 => self.windows_int8.fetch_add(size as u64, Ordering::Relaxed),
        };
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
        let mut rec = self.latency.lock().expect("latency lock");
        for _ in 0..size {
            rec.record(per_window_latency);
        }
    }

    /// Snapshot into a report row. `tier` is the owning shard's
    /// point-in-time session-store accounting (hot/paged/resident).
    pub fn snapshot(
        &self,
        shard: usize,
        sessions: usize,
        pending: usize,
        tier: TierSnapshot,
    ) -> ShardStats {
        ShardStats {
            shard,
            sessions,
            pending,
            resident_bytes: tier.resident_bytes,
            hot_sessions: tier.hot_sessions,
            paged_sessions: tier.paged_sessions,
            rehydrations: tier.rehydrations,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            windows: self.windows.load(Ordering::Relaxed),
            windows_f32: self.windows_f32.load(Ordering::Relaxed),
            windows_int8: self.windows_int8.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            drift_alerts: self.drift_alerts.load(Ordering::Relaxed),
            auto_recals: self.auto_recals.load(Ordering::Relaxed),
            recal_rollbacks: self.recal_rollbacks.load(Ordering::Relaxed),
            latency: self.latency.lock().expect("latency lock").stats(),
        }
    }
}

/// A point-in-time view of one shard's serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Sessions registered on the shard.
    pub sessions: usize,
    /// Windows currently queued (bounded by `queue_capacity`).
    pub pending: usize,
    /// Per-session bytes resident on the shard (devices' full models +
    /// hot deltas' overlays + in-memory cold spills; excludes shared
    /// bases, which are fleet-global and counted once).
    pub resident_bytes: usize,
    /// Sessions serveable without rehydration (devices + hot deltas).
    pub hot_sessions: usize,
    /// Delta sessions currently paged out of the hot tier.
    pub paged_sessions: usize,
    /// Paged sessions rehydrated on touch since start.
    pub rehydrations: u64,
    /// Windows admitted since start.
    pub accepted: u64,
    /// Windows rejected by backpressure since start.
    pub rejected: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Windows served.
    pub windows: u64,
    /// Windows served through an f32 backbone.
    pub windows_f32: u64,
    /// Windows served through an int8 backbone.
    pub windows_int8: u64,
    /// Largest micro-batch executed.
    pub max_batch: u64,
    /// Serving panics caught and isolated (batch-level catches plus
    /// per-window fallback catches — one panicking window counts at
    /// least twice: once failing its batch, once re-failing alone).
    pub panics_caught: u64,
    /// Times a session's circuit breaker tripped into quarantine.
    pub sessions_quarantined: u64,
    /// Stable→Drifted transitions across the shard's self-healing
    /// monitors (0 when [`crate::FleetConfig::healing`] is off).
    pub drift_alerts: u64,
    /// Automatic recalibrations that passed the replay gate and swapped
    /// a refreshed delta in.
    pub auto_recals: u64,
    /// Automatic recalibrations rejected by the replay gate (the
    /// session's old `(base, delta)` pair was left untouched).
    pub recal_rollbacks: u64,
    /// Amortised per-window serving latency distribution (p50–p99).
    pub latency: LatencyStats,
}

impl ShardStats {
    /// Mean windows per executed micro-batch; `0.0` before any batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.windows as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_accumulate_and_snapshot() {
        let c = ShardCounters::default();
        c.accepted.fetch_add(10, Ordering::Relaxed);
        c.rejected.fetch_add(2, Ordering::Relaxed);
        c.record_batch(6, Precision::F32, Duration::from_micros(100));
        c.record_batch(4, Precision::Int8, Duration::from_micros(300));
        let tier = TierSnapshot {
            resident_bytes: 4096,
            hot_sessions: 4,
            paged_sessions: 1,
            rehydrations: 7,
        };
        c.drift_alerts.fetch_add(3, Ordering::Relaxed);
        c.auto_recals.fetch_add(2, Ordering::Relaxed);
        c.recal_rollbacks.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot(3, 5, 1, tier);
        assert_eq!(s.shard, 3);
        assert_eq!(s.sessions, 5);
        assert_eq!(s.pending, 1);
        assert_eq!(s.resident_bytes, 4096);
        assert_eq!(s.hot_sessions, 4);
        assert_eq!(s.paged_sessions, 1);
        assert_eq!(s.rehydrations, 7);
        assert_eq!(s.accepted, 10);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.batches, 2);
        assert_eq!(s.windows, 10);
        assert_eq!(s.windows_f32, 6);
        assert_eq!(s.windows_int8, 4);
        assert_eq!(s.max_batch, 6);
        assert_eq!(s.drift_alerts, 3);
        assert_eq!(s.auto_recals, 2);
        assert_eq!(s.recal_rollbacks, 1);
        assert!((s.mean_batch() - 5.0).abs() < 1e-12);
        assert_eq!(s.latency.count, 10);
        assert!(s.latency.p99_us >= s.latency.p50_us);
    }

    #[test]
    fn empty_counters_report_zero() {
        let c = ShardCounters::default();
        let s = c.snapshot(0, 0, 0, TierSnapshot::default());
        assert_eq!(s.windows, 0);
        assert_eq!(s.resident_bytes, 0);
        assert_eq!(s.paged_sessions, 0);
        assert_eq!(s.mean_batch(), 0.0);
        assert_eq!(s.latency, LatencyStats::default());
    }
}
