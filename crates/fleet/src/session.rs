//! Session identity, model-version keys, and reply types.

use magneto_core::{EdgeBundle, Prediction};
use std::fmt;
use std::time::Duration;

/// Opaque handle for one registered per-user session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Bit marking fleet-issued (post-personalisation) keys, so they can
/// never collide with caller-derived shared keys.
const UNIQUE_BIT: u64 = 1 << 63;

/// Identifies a set of backbone weights. The scheduler only merges
/// windows from sessions whose keys are equal into one forward pass, so
/// a key must be shared **only** between sessions running bit-identical
/// models:
///
/// * [`ModelKey::of_bundle`] derives a key from bundle bytes — sessions
///   deployed from the same bundle may share it;
/// * any on-device personalisation through the fleet
///   ([`crate::Fleet::update_session`]) replaces the session's key with a
///   fleet-issued unique one, since its weights are now its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelKey(pub(crate) u64);

impl ModelKey {
    /// A caller-attested shared key (e.g. a deployment version number).
    /// The top bit is reserved for fleet-issued unique keys.
    pub fn shared(version: u64) -> Self {
        ModelKey(version & !UNIQUE_BIT)
    }

    /// Derive a shared key from the bundle a session was deployed from:
    /// FNV-1a over the full-precision wire bytes, streamed section by
    /// section through a digest writer — no full serialized copy of the
    /// bundle is ever allocated just to be hashed.
    pub fn of_bundle(bundle: &EdgeBundle) -> Self {
        let mut digest = FnvWriter::new();
        bundle
            .write_wire(false, &mut digest)
            .expect("digest sink never fails");
        ModelKey(digest.finish() & !UNIQUE_BIT)
    }

    /// A fleet-issued never-shared key (counter from the runtime).
    pub(crate) fn unique(counter: u64) -> Self {
        ModelKey(counter | UNIQUE_BIT)
    }

    /// `true` when this key was issued by the fleet after
    /// personalisation, i.e. is guaranteed unique to one session.
    pub fn is_unique(&self) -> bool {
        self.0 & UNIQUE_BIT != 0
    }
}

/// An FNV-1a digest behind `io::Write`, so byte producers that stream
/// (like [`EdgeBundle::write_wire`]) can be hashed chunk by chunk.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> Self {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl std::io::Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One served prediction, delivered on the owning session's channel.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReply {
    /// The session the window belonged to.
    pub session: SessionId,
    /// Per-session submission sequence number (FIFO per session).
    pub seq: u64,
    /// The prediction, or a serving-side error description.
    pub outcome: Result<Prediction, String>,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The session's shard queue is at capacity.
    QueueFull {
        /// Shard whose queue is full.
        shard: usize,
        /// Hint: when to retry.
        retry_after: Duration,
    },
    /// The session has too many in-flight windows.
    SessionBusy {
        /// In-flight windows the session already has.
        in_flight: usize,
        /// Hint: when to retry.
        retry_after: Duration,
    },
    /// The fleet-wide in-flight cap is reached.
    FleetBusy {
        /// In-flight windows fleet-wide.
        in_flight: usize,
        /// Hint: when to retry.
        retry_after: Duration,
    },
    /// The session's circuit breaker is open: it caused too many serving
    /// panics and is refused until the breaker half-opens.
    Quarantined {
        /// Panic strikes the session has accumulated.
        strikes: u32,
        /// Hint: when the breaker half-opens and submits are admitted
        /// again.
        retry_after: Duration,
    },
    /// No such session is registered.
    UnknownSession(SessionId),
    /// The session exists but is not backed by a full resident
    /// [`EdgeDevice`](magneto_core::EdgeDevice) — it is a base+delta
    /// session in the tiered store, which device-oriented APIs
    /// ([`crate::Fleet::deregister`], [`crate::Fleet::update_session`],
    /// [`crate::Fleet::with_session`]) cannot operate on. Use the
    /// delta-session APIs instead.
    NotDeviceBacked(SessionId),
    /// The fleet is shutting down.
    ShuttingDown,
}

impl SubmitError {
    /// The retry hint, when the rejection is load-related.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            SubmitError::QueueFull { retry_after, .. }
            | SubmitError::SessionBusy { retry_after, .. }
            | SubmitError::FleetBusy { retry_after, .. }
            | SubmitError::Quarantined { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { shard, retry_after } => {
                write!(f, "shard {shard} queue full, retry in {retry_after:?}")
            }
            SubmitError::SessionBusy {
                in_flight,
                retry_after,
            } => write!(
                f,
                "session has {in_flight} windows in flight, retry in {retry_after:?}"
            ),
            SubmitError::FleetBusy {
                in_flight,
                retry_after,
            } => write!(
                f,
                "fleet has {in_flight} windows in flight, retry in {retry_after:?}"
            ),
            SubmitError::Quarantined {
                strikes,
                retry_after,
            } => write!(
                f,
                "session quarantined after {strikes} serving panics, retry in {retry_after:?}"
            ),
            SubmitError::UnknownSession(id) => write!(f, "unknown {id}"),
            SubmitError::NotDeviceBacked(id) => {
                write!(f, "{id} is a base+delta session, not device-backed")
            }
            SubmitError::ShuttingDown => write!(f, "fleet is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_and_unique_keys_never_collide() {
        let shared = ModelKey::shared(u64::MAX);
        let unique = ModelKey::unique(u64::MAX & !UNIQUE_BIT);
        assert!(!shared.is_unique());
        assert!(unique.is_unique());
        assert_ne!(shared, unique);
        assert_eq!(ModelKey::shared(7), ModelKey::shared(7));
        assert_ne!(ModelKey::unique(1), ModelKey::unique(2));
    }

    #[test]
    fn retry_hints_only_on_load_rejections() {
        let d = Duration::from_millis(2);
        assert!(SubmitError::QueueFull {
            shard: 0,
            retry_after: d
        }
        .retry_after()
        .is_some());
        assert!(SubmitError::UnknownSession(SessionId(3)).retry_after().is_none());
        assert!(SubmitError::ShuttingDown.retry_after().is_none());
        // Display is human-readable.
        let msg = SubmitError::SessionBusy {
            in_flight: 32,
            retry_after: d,
        }
        .to_string();
        assert!(msg.contains("32"));
    }
}
