//! The serving runtime: sharded session registry, bounded queues,
//! micro-batching worker loop.

use crate::config::FleetConfig;
use crate::counters::{ShardCounters, ShardStats};
use crate::error::FleetError;
use crate::session::{FleetReply, ModelKey, SessionId, SubmitError};
use crate::store::{
    mean_embedding, DeltaSession, HealState, ReplayOutcome, SessionEntry, SessionModel,
    SessionStore, SharedBase, StoreError,
};
use magneto_core::drift::DriftStatus;
use magneto_core::inference::{infer_batch, BatchJob};
use magneto_core::{
    BatchEmbedder, EdgeBundle, EdgeDevice, HealingStats, ModelVersion, PersonalDelta, Precision,
};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::Matrix;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lock a mutex, recovering the data from a poisoned lock. The runtime
/// catches panics before they can unwind through a held lock (guards are
/// acquired outside every `catch_unwind`), but a poisoned mutex must
/// still never cascade one panic into a fleet-wide one.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One pending window.
struct Request {
    session: u64,
    seq: u64,
    window: Vec<Vec<f32>>,
}

/// Admission-control state, guarded by the queue mutex so the submit
/// fast path takes exactly one lock.
#[derive(Default)]
struct QueueState {
    pending: VecDeque<Request>,
    /// Queued + executing windows per session. A session's entry exists
    /// from registration to deregistration, so a missing entry means an
    /// unknown session.
    inflight: HashMap<u64, usize>,
    /// Next per-session submission sequence number.
    seqs: HashMap<u64, u64>,
    /// Open circuit breakers: session → (strikes at trip, refuse-until).
    /// Lives beside the admission state so the submit fast path still
    /// takes exactly one lock; entries expire lazily at submit.
    quarantined: HashMap<u64, (u32, Instant)>,
}

struct Shard {
    queue: Mutex<QueueState>,
    sessions: Mutex<SessionStore>,
    counters: ShardCounters,
}

/// Wake-up signal for one worker thread.
struct WorkerSignal {
    work: Mutex<bool>,
    cv: Condvar,
}

struct Inner {
    config: FleetConfig,
    shards: Vec<Shard>,
    signals: Vec<WorkerSignal>,
    /// Shared immutable bases, one per `(key, precision)`, `Arc`-cloned
    /// into every delta session deployed from them.
    bases: Mutex<HashMap<(ModelKey, Precision), Arc<SharedBase>>>,
    /// Directory cold deltas spill to (crash-safe framed files). `None`
    /// = spill in memory.
    spool_dir: Mutex<Option<PathBuf>>,
    global_inflight: AtomicUsize,
    next_session: AtomicU64,
    next_key: AtomicU64,
    shutdown: AtomicBool,
}

/// The concurrent multi-device serving runtime.
///
/// Owns N per-user [`EdgeDevice`] sessions behind a sharded registry,
/// admits sensor windows through bounded per-shard queues (rejecting
/// with a retry hint under load), and serves them with per-worker
/// micro-batching schedulers: each drain cycle groups pending windows
/// *across sessions* by [`ModelKey`] and runs every group through the
/// shared backbone as one `(batch, dim)` forward pass, scattering the
/// per-window NCM predictions back to each session's reply channel.
///
/// Sessions never share user data — a window is featurised with its own
/// session's pipeline and classified against its own prototypes; only
/// the backbone matmul is shared, and only between sessions whose model
/// keys attest bit-identical weights. Outputs are bit-identical to
/// driving each device sequentially (property-tested), at any worker or
/// shard count.
pub struct Fleet {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// Embedder for inline (`workers == 0`) pumping.
    inline_embedder: BatchEmbedder,
}

impl Fleet {
    /// Start a fleet. With `config.workers == 0` no threads are spawned
    /// and the caller drives serving via [`pump`](Self::pump).
    ///
    /// # Errors
    /// [`FleetError::Config`] for an invalid knob; [`FleetError::Spawn`]
    /// when the OS refuses a worker thread — workers spawned before the
    /// failure are shut down and joined, so a failed start never leaks
    /// threads.
    pub fn new(config: FleetConfig) -> Result<Self, FleetError> {
        config.validate().map_err(FleetError::Config)?;
        let shards = (0..config.shards)
            .map(|_| Shard {
                queue: Mutex::new(QueueState::default()),
                sessions: Mutex::new(SessionStore::new()),
                counters: ShardCounters::default(),
            })
            .collect();
        let signals = (0..config.workers)
            .map(|_| WorkerSignal {
                work: Mutex::new(false),
                cv: Condvar::new(),
            })
            .collect();
        let inner = Arc::new(Inner {
            config,
            shards,
            signals,
            bases: Mutex::new(HashMap::new()),
            spool_dir: Mutex::new(None),
            global_inflight: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
            next_key: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(config.workers);
        for w in 0..config.workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("fleet-worker-{w}"))
                .spawn(move || supervised_worker(&worker_inner, w));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Tear down what already started before reporting.
                    inner.shutdown.store(true, Ordering::Release);
                    for sig in &inner.signals {
                        let _woken = lock_unpoisoned(&sig.work);
                        sig.cv.notify_all();
                    }
                    for handle in workers {
                        let _joined = handle.join();
                    }
                    return Err(FleetError::Spawn {
                        worker: w,
                        reason: e.to_string(),
                    });
                }
            }
        }
        Ok(Fleet {
            inner,
            workers,
            inline_embedder: BatchEmbedder::new(),
        })
    }

    /// The runtime configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.inner.config
    }

    /// The kernel plan fleet GEMMs run under.
    ///
    /// All fleet workers share the single process-wide compute pool (the
    /// global [`Exec`](magneto_tensor::Exec)) rather than spawning one
    /// pool each: the pool serialises dispatch with a `try_lock`, so when
    /// one fleet worker's batch already occupies it, another worker's
    /// GEMM simply runs inline on its own thread instead of competing —
    /// cores are never oversubscribed, and results are bit-identical
    /// either way.
    pub fn compute_plan(&self) -> magneto_tensor::KernelPlan {
        magneto_tensor::pool::global_plan()
    }

    /// The micro-kernel backend fleet workers dispatch to (scalar /
    /// avx2 / neon) — always an available one, because the global plan
    /// is sanitized on installation.
    pub fn compute_backend(&self) -> magneto_tensor::Backend {
        self.compute_plan().backend
    }

    /// Register a session, taking ownership of its device. `key` attests
    /// the device's model weights: pass the same key for sessions
    /// deployed from the same bundle ([`ModelKey::of_bundle`]) so the
    /// scheduler may batch them together. Returns the session handle and
    /// the channel its predictions arrive on.
    pub fn register(&self, device: EdgeDevice, key: ModelKey) -> (SessionId, Receiver<FleetReply>) {
        let precision = device.precision();
        self.register_entry(SessionModel::Device(Box::new(device)), key, precision)
    }

    /// Register a shared immutable base assembled from `bundle` at
    /// `precision`, keyed by [`ModelKey::of_bundle`]. Idempotent: a base
    /// already registered under the same `(key, precision)` is kept and
    /// its key returned. Delta sessions deployed from it
    /// ([`Self::register_from_base`]) share one refcounted copy of the
    /// backbone, support set, and base classifier.
    ///
    /// # Errors
    /// [`StoreError::Storage`] when the bundle fails validation or
    /// precision conversion.
    pub fn register_base(
        &self,
        bundle: &EdgeBundle,
        precision: Precision,
    ) -> Result<ModelKey, StoreError> {
        let key = ModelKey::of_bundle(bundle);
        let mut bases = lock_unpoisoned(&self.inner.bases);
        if let std::collections::hash_map::Entry::Vacant(slot) = bases.entry((key, precision)) {
            let base = SharedBase::from_bundle(bundle, precision, DistanceMetric::default())?;
            slot.insert(Arc::new(base));
        }
        Ok(key)
    }

    /// Register a base+delta session against a base previously
    /// registered with [`Self::register_base`]. The session starts with
    /// an empty [`PersonalDelta`] and — crucially — keeps the **shared**
    /// key: personalizing the delta only overlays the classifier, never
    /// the backbone, so the session stays batchable with every peer of
    /// the same base. If the shard is over its configured hot-delta
    /// capacity, the coldest sessions page out.
    ///
    /// # Errors
    /// [`StoreError::UnknownBase`] when no base is registered under
    /// `(key, precision)`.
    pub fn register_from_base(
        &self,
        key: ModelKey,
        precision: Precision,
    ) -> Result<(SessionId, Receiver<FleetReply>), StoreError> {
        let base = lock_unpoisoned(&self.inner.bases)
            .get(&(key, precision))
            .cloned()
            .ok_or(StoreError::UnknownBase(key, precision))?;
        Ok(self.register_entry(
            SessionModel::Delta(Box::new(DeltaSession::fresh(base))),
            key,
            precision,
        ))
    }

    fn register_entry(
        &self,
        model: SessionModel,
        key: ModelKey,
        precision: Precision,
    ) -> (SessionId, Receiver<FleetReply>) {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        let shard = &self.inner.shards[id as usize % self.inner.config.shards];
        let (tx, rx) = channel();
        {
            let mut q = lock_unpoisoned(&shard.queue);
            q.inflight.insert(id, 0);
            q.seqs.insert(id, 0);
        }
        // Delta sessions get a self-healing loop when the fleet is
        // configured for one (device-backed sessions carry their own via
        // `EdgeConfig::healing` when driven directly).
        let healing = match (&model, self.inner.config.healing) {
            (SessionModel::Delta(_), Some(cfg)) => {
                HealState::new(cfg).ok().map(Box::new)
            }
            _ => None,
        };
        let spool = self.spool();
        {
            let mut sessions = lock_unpoisoned(&shard.sessions);
            sessions.insert(
                id,
                SessionEntry {
                    model,
                    key,
                    precision,
                    tx,
                    strikes: 0,
                    armed_panics: AtomicU32::new(0),
                    healing,
                },
            );
            sessions.enforce_capacity(self.inner.config.hot_delta_capacity, spool.as_deref());
        }
        (SessionId(id), rx)
    }

    /// Configure the directory cold deltas page out to (created if
    /// missing). Until this is set — or if a spill write ever fails —
    /// evicted deltas fall back to an in-memory spill: still out of the
    /// hot tier, never lost.
    ///
    /// # Errors
    /// Propagates directory-creation failure.
    pub fn set_spool_dir(&self, dir: impl Into<PathBuf>) -> std::io::Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        *lock_unpoisoned(&self.inner.spool_dir) = Some(dir);
        Ok(())
    }

    fn spool(&self) -> Option<PathBuf> {
        lock_unpoisoned(&self.inner.spool_dir).clone()
    }

    /// Remove a device-backed session, returning its device (with all
    /// personalised state). Still-queued windows for it are dropped
    /// unserved.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered;
    /// [`SubmitError::NotDeviceBacked`] for a base+delta session (use
    /// [`Self::deregister_delta`]).
    pub fn deregister(&self, id: SessionId) -> Result<EdgeDevice, SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let entry = {
            let mut sessions = lock_unpoisoned(&shard.sessions);
            match sessions.get(id.0) {
                None => return Err(SubmitError::UnknownSession(id)),
                Some(e) if !e.is_device() => return Err(SubmitError::NotDeviceBacked(id)),
                Some(_) => {}
            }
            sessions.remove(id.0).expect("presence just checked")
        };
        self.reconcile_removed(shard, id.0);
        match entry.model {
            SessionModel::Device(device) => Ok(*device),
            _ => unreachable!("device-backed checked above"),
        }
    }

    /// Remove a base+delta session, returning its [`PersonalDelta`]
    /// (rehydrated first if paged). Still-queued windows for it are
    /// dropped unserved; its spool file, if any, is deleted.
    ///
    /// # Errors
    /// [`StoreError::UnknownSession`] / [`StoreError::NotDelta`], or a
    /// [`StoreError::Storage`] if a paged delta cannot be read back.
    pub fn deregister_delta(&self, id: SessionId) -> Result<PersonalDelta, StoreError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let delta = {
            let mut sessions = lock_unpoisoned(&shard.sessions);
            match sessions.get(id.0) {
                None => return Err(StoreError::UnknownSession(id)),
                Some(e) if e.is_device() => return Err(StoreError::NotDelta(id)),
                Some(_) => {}
            }
            sessions.ensure_hot(id.0)?;
            let entry = sessions.remove(id.0).expect("presence just checked");
            match entry.model {
                SessionModel::Delta(ds) => ds.delta,
                _ => unreachable!("ensure_hot leaves a hot delta"),
            }
        };
        self.reconcile_removed(shard, id.0);
        Ok(delta)
    }

    /// Drop a removed session's queued windows and admission state.
    /// Queued (not yet popped) windows die with the session; executing
    /// ones finish and decrement the remainder themselves.
    fn reconcile_removed(&self, shard: &Shard, id: u64) {
        let mut q = lock_unpoisoned(&shard.queue);
        let queued = q.pending.iter().filter(|r| r.session == id).count();
        q.pending.retain(|r| r.session != id);
        if let Some(inflight) = q.inflight.remove(&id) {
            debug_assert!(inflight >= queued);
            self.inner.global_inflight.fetch_sub(queued, Ordering::AcqRel);
        }
        q.seqs.remove(&id);
        q.quarantined.remove(&id);
    }

    /// Submit one channel-major sensor window for a session. On success
    /// returns the per-session sequence number its [`FleetReply`] will
    /// carry. Under load this *rejects* — bounded queues plus in-flight
    /// caps, never unbounded buffering; the error carries a retry hint.
    ///
    /// # Errors
    /// [`SubmitError`] on backpressure, unknown session, or shutdown.
    pub fn submit(&self, id: SessionId, window: Vec<Vec<f32>>) -> Result<u64, SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let config = &self.inner.config;
        let shard_idx = id.0 as usize % config.shards;
        let shard = &self.inner.shards[shard_idx];
        let seq = {
            let mut q = lock_unpoisoned(&shard.queue);
            let Some(&inflight) = q.inflight.get(&id.0) else {
                return Err(SubmitError::UnknownSession(id));
            };
            if let Some(&(strikes, until)) = q.quarantined.get(&id.0) {
                let now = Instant::now();
                if now < until {
                    shard.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Quarantined {
                        strikes,
                        retry_after: until - now,
                    });
                }
                // Breaker half-opens: admit again; a further panic
                // re-trips it immediately (strikes persist on the entry).
                q.quarantined.remove(&id.0);
            }
            if q.pending.len() >= config.queue_capacity {
                shard.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    shard: shard_idx,
                    retry_after: config.retry_after,
                });
            }
            if inflight >= config.max_inflight_per_session {
                shard.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::SessionBusy {
                    in_flight: inflight,
                    retry_after: config.retry_after,
                });
            }
            let global = self.inner.global_inflight.load(Ordering::Acquire);
            if global >= config.max_inflight_global {
                shard.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::FleetBusy {
                    in_flight: global,
                    retry_after: config.retry_after,
                });
            }
            let seq = q.seqs.get_mut(&id.0).expect("seq entry");
            let this_seq = *seq;
            *seq += 1;
            *q.inflight.get_mut(&id.0).expect("inflight entry") += 1;
            self.inner.global_inflight.fetch_add(1, Ordering::AcqRel);
            q.pending.push_back(Request {
                session: id.0,
                seq: this_seq,
                window,
            });
            shard.counters.accepted.fetch_add(1, Ordering::Relaxed);
            this_seq
        };
        self.wake_worker_for(shard_idx);
        Ok(seq)
    }

    /// Mutate a session's device (learn a new activity, calibrate,
    /// import a class pack). The session is re-keyed with a fleet-issued
    /// unique [`ModelKey`] afterwards: its weights may have diverged, so
    /// it must never again batch with sessions holding the old key.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered.
    pub fn update_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut EdgeDevice) -> R,
    ) -> Result<R, SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        let entry = sessions
            .get_mut(id.0)
            .ok_or(SubmitError::UnknownSession(id))?;
        let SessionModel::Device(device) = &mut entry.model else {
            return Err(SubmitError::NotDeviceBacked(id));
        };
        let out = f(device);
        // The mutation may also have changed the resident precision
        // (e.g. a redeploy helper) — refresh the batching key component.
        entry.precision = device.precision();
        entry.key = ModelKey::unique(self.inner.next_key.fetch_add(1, Ordering::Relaxed));
        Ok(out)
    }

    /// Read-only access to a session's device.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered;
    /// [`SubmitError::NotDeviceBacked`] for a base+delta session.
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&EdgeDevice) -> R,
    ) -> Result<R, SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let sessions = lock_unpoisoned(&shard.sessions);
        let entry = sessions.get(id.0).ok_or(SubmitError::UnknownSession(id))?;
        match &entry.model {
            SessionModel::Device(device) => Ok(f(device)),
            _ => Err(SubmitError::NotDeviceBacked(id)),
        }
    }

    /// Calibrate a base+delta session with this user's recordings of one
    /// activity: featurize and embed the windows through the *shared*
    /// base, store their mean embedding as the user's prototype for
    /// `label` (plus the feature rows as private support exemplars), and
    /// rebuild the serving overlay.
    ///
    /// Unlike [`Self::update_session`], this does **not** re-key the
    /// session: the backbone is untouched, so the session stays
    /// batchable with every peer of the same base — personalization
    /// without forking.
    ///
    /// # Errors
    /// Store errors for unknown/device sessions; [`StoreError::Storage`]
    /// on featurization/embedding failure or an empty `windows`.
    pub fn calibrate_session(
        &self,
        id: SessionId,
        label: &str,
        windows: &[Vec<Vec<f32>>],
    ) -> Result<(), StoreError> {
        if windows.is_empty() {
            return Err(StoreError::Storage("no calibration windows".into()));
        }
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        sessions.ensure_hot(id.0)?;
        let ds = sessions.delta_mut(id.0)?;
        let dim = ds.base.pipeline.output_dim();
        let mut rows = Vec::with_capacity(windows.len());
        for window in windows {
            let mut row = vec![0.0f32; dim];
            ds.base
                .pipeline
                .process_checked_into(window, &mut row)
                .map_err(|e| StoreError::Storage(e.to_string()))?;
            rows.push(row);
        }
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        embedder
            .embed_rows(&ds.base.model, &rows, &mut embeddings)
            .map_err(|e| StoreError::Storage(e.to_string()))?;
        ds.delta.set_prototype(label, mean_embedding(&embeddings));
        ds.delta.set_support(label, rows);
        // Pin the calibration to the base generation it was computed
        // against, so a future base swap knows what to replay (legacy v0
        // bases leave the delta unpinned and its bytes unchanged).
        if !ds.base.version().is_legacy() {
            ds.delta.pin_base(ds.base.version());
        }
        ds.rebuild_overlay()?;
        sessions.touch(id.0);
        Ok(())
    }

    /// Transactionally migrate a base+delta session onto the base
    /// registered under `(new_key, precision)`, replaying its
    /// calibration through the new backbone — the per-session step of a
    /// versioned rollout.
    ///
    /// The replay re-derives every personal prototype from the delta's
    /// stored support rows (the exact [`Self::calibrate_session`]
    /// computation, against the new base), then validates the candidate
    /// before swapping it in: a prototype with no replayable source,
    /// non-finite embeddings, or self-accuracy below
    /// [`FleetConfig::replay_accuracy_floor`] rolls back, leaving the
    /// session byte-identical on its old `(base, delta)` pair. Paged
    /// sessions rehydrate first, so migration is tier-transparent.
    ///
    /// On commit the session is re-keyed to `new_key` — it now batches
    /// with the new base's peers, never the old one's.
    ///
    /// # Errors
    /// [`StoreError::UnknownBase`] when no base is registered under
    /// `(new_key, precision)`; store errors for unknown/device sessions.
    pub fn migrate_session(
        &self,
        id: SessionId,
        new_key: ModelKey,
        precision: Precision,
    ) -> Result<ReplayOutcome, StoreError> {
        let new_base = lock_unpoisoned(&self.inner.bases)
            .get(&(new_key, precision))
            .cloned()
            .ok_or(StoreError::UnknownBase(new_key, precision))?;
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        sessions.ensure_hot(id.0)?;
        let outcome = sessions.migrate_delta(
            id.0,
            &new_base,
            new_key,
            precision,
            self.inner.config.replay_accuracy_floor,
        )?;
        sessions.touch(id.0);
        Ok(outcome)
    }

    /// Restore a base+delta session to the base registered under
    /// `(key, precision)` with `delta` verbatim — the rollback path a
    /// rollout driver uses to walk a halted canary wave back to version
    /// N with the exact pre-migration delta snapshotted via
    /// [`Self::session_delta`].
    ///
    /// # Errors
    /// [`StoreError::UnknownBase`] when no base is registered under
    /// `(key, precision)`; store errors for unknown/device sessions.
    pub fn restore_session(
        &self,
        id: SessionId,
        key: ModelKey,
        precision: Precision,
        delta: PersonalDelta,
    ) -> Result<(), StoreError> {
        let base = lock_unpoisoned(&self.inner.bases)
            .get(&(key, precision))
            .cloned()
            .ok_or(StoreError::UnknownBase(key, precision))?;
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        sessions.ensure_hot(id.0)?;
        sessions.restore_delta(id.0, &base, key, precision, delta)?;
        sessions.touch(id.0);
        Ok(())
    }

    /// The model version a session currently serves (v0 for sessions on
    /// a legacy unversioned base). Works for hot, paged, and
    /// device-backed sessions without rehydrating.
    ///
    /// # Errors
    /// [`StoreError::UnknownSession`] when the id is not registered.
    pub fn session_version(&self, id: SessionId) -> Result<ModelVersion, StoreError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let sessions = lock_unpoisoned(&shard.sessions);
        let entry = sessions
            .get(id.0)
            .ok_or(StoreError::UnknownSession(id))?;
        Ok(match &entry.model {
            SessionModel::Device(device) => device.model_version(),
            SessionModel::Delta(ds) => ds.base.version(),
            SessionModel::Paged(pd) => pd.base.version(),
        })
    }

    /// Set a base+delta session's per-user open-set rejection threshold.
    ///
    /// # Errors
    /// Store errors for unknown/device sessions.
    pub fn set_session_threshold(&self, id: SessionId, threshold: f32) -> Result<(), StoreError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        sessions.ensure_hot(id.0)?;
        let ds = sessions.delta_mut(id.0)?;
        ds.delta.set_threshold(threshold);
        sessions.touch(id.0);
        Ok(())
    }

    /// A snapshot of a base+delta session's current [`PersonalDelta`]
    /// (rehydrating it first if paged).
    ///
    /// # Errors
    /// Store errors for unknown/device sessions.
    pub fn session_delta(&self, id: SessionId) -> Result<PersonalDelta, StoreError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        sessions.ensure_hot(id.0)?;
        Ok(sessions.delta_mut(id.0)?.delta.clone())
    }

    /// Number of int8 exemplar rows the session's serving overlay holds
    /// on its quantized NCM index (rehydrating the session first if
    /// paged). Zero for a session with no calibrated support rows —
    /// it serves straight off the shared base's prototypes.
    ///
    /// # Errors
    /// Store errors for unknown/device sessions.
    pub fn session_exemplar_rows(&self, id: SessionId) -> Result<usize, StoreError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let mut sessions = lock_unpoisoned(&shard.sessions);
        sessions.ensure_hot(id.0)?;
        let ds = sessions.delta_mut(id.0)?;
        let ncm = ds.overlay.as_ref().unwrap_or(&ds.base.ncm);
        Ok(ncm.num_rows() - ncm.num_classes())
    }

    /// Force a base+delta session out of the hot tier immediately (the
    /// eviction the LRU would eventually perform). Returns `true` when
    /// the session was hot and is now paged. Primarily a test/ops hook —
    /// normal paging is driven by `hot_delta_capacity`.
    ///
    /// # Errors
    /// [`StoreError::UnknownSession`] when the id is not registered.
    pub fn page_out(&self, id: SessionId) -> Result<bool, StoreError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let spool = self.spool();
        let mut sessions = lock_unpoisoned(&shard.sessions);
        if sessions.get(id.0).is_none() {
            return Err(StoreError::UnknownSession(id));
        }
        Ok(sessions.page_out(id.0, spool.as_deref()))
    }

    /// Number of shared bases currently registered.
    pub fn num_bases(&self) -> usize {
        lock_unpoisoned(&self.inner.bases).len()
    }

    /// Total resident bytes of all shared bases — paid once each,
    /// however many sessions share them.
    pub fn bases_resident_bytes(&self) -> usize {
        lock_unpoisoned(&self.inner.bases)
            .values()
            .map(|b| b.bytes())
            .sum()
    }

    /// The model key a session currently serves under.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered.
    pub fn session_key(&self, id: SessionId) -> Result<ModelKey, SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let sessions = lock_unpoisoned(&shard.sessions);
        sessions
            .get(id.0)
            .map(|e| e.key)
            .ok_or(SubmitError::UnknownSession(id))
    }

    /// A session's current drift status, when fleet self-healing
    /// ([`FleetConfig::healing`]) is on and the session is delta-backed;
    /// `None` otherwise.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered.
    pub fn session_drift_status(&self, id: SessionId) -> Result<Option<DriftStatus>, SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let sessions = lock_unpoisoned(&shard.sessions);
        let entry = sessions.get(id.0).ok_or(SubmitError::UnknownSession(id))?;
        Ok(entry.healing.as_ref().map(|h| h.monitor.status()))
    }

    /// A session's self-healing counters (alerts, committed
    /// recalibrations, rollbacks, strikes), when fleet self-healing is
    /// on for it; `None` otherwise.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered.
    pub fn session_healing_stats(
        &self,
        id: SessionId,
    ) -> Result<Option<HealingStats>, SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let sessions = lock_unpoisoned(&shard.sessions);
        let entry = sessions.get(id.0).ok_or(SubmitError::UnknownSession(id))?;
        Ok(entry.healing.as_ref().map(|h| h.recal.stats()))
    }

    /// Chaos hook: make the session's next `count` served windows panic
    /// mid-inference. Drives the fault-injection tests and the `chaos`
    /// smoke target — the runtime must catch each panic, isolate it to
    /// this session, and quarantine the session once it exhausts its
    /// strikes. Useless (and harmless) outside testing.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered.
    pub fn arm_panics(&self, id: SessionId, count: u32) -> Result<(), SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let sessions = lock_unpoisoned(&shard.sessions);
        let entry = sessions.get(id.0).ok_or(SubmitError::UnknownSession(id))?;
        entry.armed_panics.fetch_add(count, Ordering::Relaxed);
        Ok(())
    }

    /// Panic strikes a session has accumulated, and whether its circuit
    /// breaker is currently open.
    ///
    /// # Errors
    /// [`SubmitError::UnknownSession`] when the id is not registered.
    pub fn session_strikes(&self, id: SessionId) -> Result<(u32, bool), SubmitError> {
        let shard = &self.inner.shards[id.0 as usize % self.inner.config.shards];
        let strikes = {
            let sessions = lock_unpoisoned(&shard.sessions);
            sessions
                .get(id.0)
                .map(|e| e.strikes)
                .ok_or(SubmitError::UnknownSession(id))?
        };
        let open = {
            let q = lock_unpoisoned(&shard.queue);
            q.quarantined
                .get(&id.0)
                .is_some_and(|&(_, until)| Instant::now() < until)
        };
        Ok((strikes, open))
    }

    /// Deterministic inline serving: drain every shard on the caller's
    /// thread until all queues are empty, and return how many windows
    /// were served. This is the `workers == 0` single-threaded mode —
    /// same drain logic, same grouping, same kernels as the threaded
    /// path, so outputs are bit-identical; only scheduling differs. Safe
    /// (but rarely useful) to call while workers are also running.
    pub fn pump(&mut self) -> usize {
        let mut served = 0;
        loop {
            let mut round = 0;
            for s in 0..self.inner.config.shards {
                round += drain_shard(&self.inner, s, &mut self.inline_embedder);
            }
            if round == 0 {
                return served;
            }
            served += round;
        }
    }

    /// Block until no window is queued or executing, or until `timeout`.
    /// Returns `true` when the fleet went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let idle = self.inner.global_inflight.load(Ordering::Acquire) == 0;
            if idle {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Point-in-time serving statistics for every shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (sessions, tier) = {
                    let store = lock_unpoisoned(&s.sessions);
                    (store.len(), store.tier_snapshot())
                };
                let pending = lock_unpoisoned(&s.queue).pending.len();
                s.counters.snapshot(i, sessions, pending, tier)
            })
            .collect()
    }

    /// Windows currently in flight (queued or executing) fleet-wide.
    pub fn in_flight(&self) -> usize {
        self.inner.global_inflight.load(Ordering::Acquire)
    }

    /// Stop admitting, serve everything still queued, and join the
    /// workers. Consumes the fleet.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for sig in &self.inner.signals {
            let _unused = lock_unpoisoned(&sig.work);
            sig.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _joined = handle.join();
        }
        // Inline mode (or anything left after the workers exited, which
        // drain-before-exit should make empty): serve the remainder.
        self.pump();
    }

    fn wake_worker_for(&self, shard: usize) {
        let workers = self.inner.config.workers;
        if workers == 0 {
            return;
        }
        let sig = &self.inner.signals[shard % workers];
        let mut work = lock_unpoisoned(&sig.work);
        *work = true;
        sig.cv.notify_one();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Worker supervisor: runs [`worker_loop`] under `catch_unwind` and
/// restarts it if a panic ever escapes the per-batch isolation inside
/// [`drain_shard`] (defence in depth — nothing is expected to). The
/// respawned loop gets a fresh embedder, so no scratch state poisoned by
/// the unwind survives. The worker thread itself never dies to a panic.
fn supervised_worker(inner: &Inner, w: usize) {
    loop {
        let escaped =
            std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(inner, w))).is_err();
        if !escaped {
            return; // clean shutdown
        }
        for shard in &inner.shards {
            shard.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// One worker: waits for its signal, then drains every shard it owns
/// (shards are partitioned `shard % workers == w`, so no two workers
/// ever drain the same shard and per-session FIFO order is preserved).
fn worker_loop(inner: &Inner, w: usize) {
    let mut embedder = BatchEmbedder::new();
    let owned: Vec<usize> = (0..inner.config.shards)
        .filter(|s| s % inner.config.workers == w)
        .collect();
    loop {
        {
            let sig = &inner.signals[w];
            let mut work = lock_unpoisoned(&sig.work);
            while !*work && !inner.shutdown.load(Ordering::Acquire) {
                work = match sig.cv.wait_timeout(work, Duration::from_millis(50)) {
                    Ok((next, _timeout)) => next,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
            *work = false;
        }
        loop {
            let mut drained = 0;
            for &s in &owned {
                drained += drain_shard(inner, s, &mut embedder);
            }
            if drained == 0 {
                break;
            }
        }
        if inner.shutdown.load(Ordering::Acquire) {
            // Final sweep so nothing accepted before shutdown is lost.
            for &s in &owned {
                while drain_shard(inner, s, &mut embedder) > 0 {}
            }
            return;
        }
    }
}

/// Featurise and classify the windows at `indices` through the group's
/// shared backbone — one `(batch, dim)` forward pass.
///
/// This is the only serving code that runs inside a `catch_unwind` (its
/// callers hold the session-map lock *outside* the catch, so a panic
/// here can never poison it). Before touching the model it fires any
/// armed chaos panics: a group-sized call (`consume_armed == false`)
/// only peeks — the same window must panic again when retried alone so
/// the strike lands on the right session — while an isolated single
/// -window call (`consume_armed == true`) consumes one armed charge.
fn run_windows(
    sessions: &SessionStore,
    popped: &[Request],
    indices: &[usize],
    embedder: &mut BatchEmbedder,
    consume_armed: bool,
) -> Result<Vec<magneto_core::Prediction>, magneto_core::CoreError> {
    for &i in indices {
        if let Some(entry) = sessions.get(popped[i].session) {
            // Single drainer per shard: load/store needs no CAS.
            let armed = entry.armed_panics.load(Ordering::Relaxed);
            if armed > 0 {
                if consume_armed {
                    entry.armed_panics.store(armed - 1, Ordering::Relaxed);
                }
                panic!("chaos: armed panic for session {}", popped[i].session);
            }
        }
    }
    // Grouped sessions were rehydrated by the drainer before grouping,
    // so every view is present (a paged session here would be a drainer
    // bug; the expect unwinds into the group's catch).
    let jobs: Vec<BatchJob<'_>> = indices
        .iter()
        .map(|&i| {
            let req = &popped[i];
            let view = sessions
                .get(req.session)
                .expect("grouped session present")
                .view()
                .expect("grouped session is hot");
            BatchJob {
                pipeline: view.pipeline,
                ncm: view.ncm,
                window: &req.window,
            }
        })
        .collect();
    let model = sessions
        .get(popped[indices[0]].session)
        .expect("grouped session present")
        .view()
        .expect("grouped session is hot")
        .model;
    infer_batch(model, &jobs, embedder)
}

/// The fleet-side self-healing step for one served window: observe the
/// nearest-prototype distance on the session's drift monitor, stamp the
/// drift status onto the reply, harvest confident nominal windows as
/// recalibration evidence (featurized through the shared base's
/// pipeline), and — on sustained drift past hysteresis and cooldown —
/// rebuild the session's [`PersonalDelta`] off to the side and swap it
/// in through the replay self-accuracy gate
/// ([`SessionStore::recalibrate_delta`]), striking out on rollback. A
/// no-op unless [`FleetConfig::healing`] is set and the session is a
/// hot delta session.
fn heal_session(
    inner: &Inner,
    shard: &Shard,
    sessions: &mut SessionStore,
    req: &Request,
    pred: &mut magneto_core::Prediction,
) {
    let candidate = {
        let Some(entry) = sessions.get_mut(req.session) else {
            return;
        };
        let SessionEntry { model, healing, .. } = entry;
        let Some(heal) = healing.as_mut() else {
            return;
        };
        let SessionModel::Delta(ds) = &*model else {
            return;
        };
        let nearest = pred
            .distances
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let status = heal.observe(nearest);
        pred.drift = Some(status);
        let drifted = status.is_drifted();
        if drifted && !heal.was_drifted {
            shard.counters.drift_alerts.fetch_add(1, Ordering::Relaxed);
        }
        heal.was_drifted = drifted;
        // Harvest evidence: the policy filters on confidence and
        // quality; featurization is only paid for eligible windows.
        if pred.confidence >= heal.recal.config().min_confidence && !pred.quality.is_degraded() {
            let mut row = vec![0.0f32; ds.base.pipeline.output_dim()];
            if ds
                .base
                .pipeline
                .process_checked_into(&req.window, &mut row)
                .is_ok()
            {
                heal.recal.offer(&pred.label, &row, pred.confidence, pred.quality);
            }
        }
        if heal.recal.observe(status) {
            heal.recal.candidate()
        } else {
            None
        }
    };
    let Some((label, rows)) = candidate else {
        return;
    };
    let outcome =
        sessions.recalibrate_delta(req.session, &label, &rows, inner.config.replay_accuracy_floor);
    let Some(entry) = sessions.get_mut(req.session) else {
        return;
    };
    let Some(heal) = entry.healing.as_mut() else {
        return;
    };
    match outcome {
        Ok(ReplayOutcome::Committed { .. }) => {
            heal.recal.note_commit();
            heal.rebaseline();
            shard.counters.auto_recals.fetch_add(1, Ordering::Relaxed);
        }
        // A rejected or errored recalibration is a strike; the session's
        // old state is untouched and serving continues.
        Ok(ReplayOutcome::RolledBack { .. }) | Err(_) => {
            heal.recal.note_rollback();
            shard.counters.recal_rollbacks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Scatter one prediction (or serving error) back to its session.
fn reply_to(
    sessions: &mut SessionStore,
    req: &Request,
    outcome: Result<magneto_core::Prediction, String>,
) {
    if let Some(entry) = sessions.get_mut(req.session) {
        if let Ok(pred) = &outcome {
            entry.note_latency(pred.latency);
        }
        let _receiver_gone = entry.tx.send(FleetReply {
            session: SessionId(req.session),
            seq: req.seq,
            outcome,
        });
    }
}

/// Drain one scheduling cycle from a shard: pop up to `max_batch`
/// pending windows, group them by model key, run each group through the
/// shared backbone as one forward pass, and scatter replies. Returns the
/// number of windows served.
///
/// Panic isolation: each group runs under `catch_unwind`. If it panics,
/// the group's windows are retried one at a time, each under its own
/// `catch_unwind` — innocent bystanders batched with a panicking session
/// get served (bit-identical to the batched result, which is the
/// runtime's standing invariant), the panicking window's session takes a
/// strike and its caller an error reply, and a session that exhausts its
/// strikes is quarantined (circuit breaker, [`SubmitError::Quarantined`]).
fn drain_shard(inner: &Inner, shard_idx: usize, embedder: &mut BatchEmbedder) -> usize {
    let shard = &inner.shards[shard_idx];
    let popped: Vec<Request> = {
        let mut q = lock_unpoisoned(&shard.queue);
        let n = q.pending.len().min(inner.config.max_batch);
        q.pending.drain(..n).collect()
    };
    if popped.is_empty() {
        return 0;
    }

    // Sessions that take a panic strike this cycle, and breakers tripped.
    let mut struck: Vec<u64> = Vec::new();
    let mut tripped: Vec<(u64, u32)> = Vec::new();

    {
        let mut sessions = lock_unpoisoned(&shard.sessions);
        // Rehydrate any paged session with popped windows before
        // grouping — the tiered store's page-in point. Failures (storage
        // unreadable, delta undecodable) turn into error replies below.
        let mut rehydrate_failed: HashMap<u64, String> = HashMap::new();
        for req in &popped {
            if rehydrate_failed.contains_key(&req.session) {
                continue;
            }
            match sessions.ensure_hot(req.session) {
                // Unknown = deregistered after enqueue: dropped below.
                Ok(_) | Err(StoreError::UnknownSession(_)) => {}
                Err(e) => {
                    rehydrate_failed.insert(req.session, e.to_string());
                }
            }
        }
        // Group request indices by (model key, precision), preserving pop
        // order within each group (pop order preserves per-session
        // submission order). Precision is part of the key: identical
        // weights at different precisions are different backbones.
        let mut groups: BTreeMap<(ModelKey, Precision), Vec<usize>> = BTreeMap::new();
        for (i, req) in popped.iter().enumerate() {
            if let Some(msg) = rehydrate_failed.get(&req.session) {
                reply_to(&mut sessions, req, Err(msg.clone()));
                continue;
            }
            if let Some(entry) = sessions.get(req.session) {
                groups.entry((entry.key, entry.precision)).or_default().push(i);
            }
            // A session deregistered after enqueue: its windows are
            // dropped; deregister already reconciled the accounting for
            // queued windows it removed, and any that were already
            // popped are reconciled below like served ones.
        }

        for (&(_, precision), indices) in &groups {
            let start = Instant::now();
            // The session-map guard stays OUTSIDE the catch so an unwind
            // cannot poison it.
            let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_windows(&sessions, &popped, indices, embedder, false)
            }));
            let outcome = match attempt {
                Ok(outcome) => outcome,
                Err(_panic) => {
                    // The batch died. Count it, discard the embedder's
                    // possibly half-written scratch, and retry each
                    // window alone so one bad session cannot take its
                    // batchmates down with it.
                    shard.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                    *embedder = BatchEmbedder::new();
                    for &i in indices {
                        let req = &popped[i];
                        let solo_start = Instant::now();
                        let solo = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_windows(&sessions, &popped, &[i], embedder, true)
                        }));
                        let solo_outcome = match solo {
                            Ok(Ok(mut preds)) => {
                                shard.counters.record_batch(1, precision, solo_start.elapsed());
                                Ok(preds.pop().expect("one prediction for one job"))
                            }
                            Ok(Err(e)) => Err(e.to_string()),
                            Err(_panic) => {
                                shard
                                    .counters
                                    .panics_caught
                                    .fetch_add(1, Ordering::Relaxed);
                                *embedder = BatchEmbedder::new();
                                struck.push(req.session);
                                Err(format!(
                                    "serving panicked for {}; window dropped",
                                    SessionId(req.session)
                                ))
                            }
                        };
                        reply_to(&mut sessions, req, solo_outcome);
                    }
                    continue;
                }
            };
            let per_window = start.elapsed() / indices.len() as u32;
            shard.counters.record_batch(indices.len(), precision, per_window);

            match outcome {
                Ok(preds) => {
                    for (&i, mut pred) in indices.iter().zip(preds) {
                        heal_session(inner, shard, &mut sessions, &popped[i], &mut pred);
                        reply_to(&mut sessions, &popped[i], Ok(pred));
                    }
                }
                Err(e) => {
                    let msg = e.to_string();
                    for &i in indices {
                        reply_to(&mut sessions, &popped[i], Err(msg.clone()));
                    }
                }
            }
        }

        // Apply this cycle's strikes; trip breakers that crossed the
        // threshold. (`quarantine_strikes == 0` disables the breaker.)
        let threshold = inner.config.quarantine_strikes;
        for s in struck {
            if let Some(entry) = sessions.get_mut(s) {
                entry.strikes += 1;
                if threshold > 0 && entry.strikes >= threshold {
                    tripped.push((s, entry.strikes));
                }
            }
        }

        // Served delta sessions were touched by ensure_hot above; now
        // that the cycle is over, page out whatever the LRU says is
        // coldest if the shard is over its hot capacity.
        let spool = lock_unpoisoned(&inner.spool_dir).clone();
        sessions.enforce_capacity(inner.config.hot_delta_capacity, spool.as_deref());
    }

    // Reconcile in-flight accounting for everything popped this cycle
    // (served or dropped-with-session alike), and open tripped breakers.
    {
        let mut q = lock_unpoisoned(&shard.queue);
        for req in &popped {
            if let Some(n) = q.inflight.get_mut(&req.session) {
                *n = n.saturating_sub(1);
            }
        }
        let until = Instant::now() + inner.config.quarantine_for;
        for (s, strikes) in tripped {
            q.quarantined.insert(s, (strikes, until));
            shard
                .counters
                .sessions_quarantined
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    inner.global_inflight.fetch_sub(popped.len(), Ordering::AcqRel);
    popped.len()
}
