//! Tiered session store: shared immutable bases + per-user deltas.
//!
//! A million registered users do not need a million resident models.
//! What differs per user is a compact [`PersonalDelta`] (calibrated
//! prototypes, private support rows, last-layer adjustments); everything
//! else — pipeline, backbone weights, base support set, base NCM — is
//! identical across every session deployed from the same bundle at the
//! same precision. The store therefore splits session state into two
//! tiers:
//!
//! * **[`SharedBase`]** — one refcounted (`Arc`) immutable copy per
//!   `(ModelKey, Precision)`, registered once via
//!   [`crate::Fleet::register_base`] and shared by every delta session
//!   deployed from it. Because a delta only overlays the *classifier*
//!   (prototypes), never the backbone, delta sessions keep the shared
//!   [`ModelKey`](crate::ModelKey) and stay batchable with their
//!   base-model peers.
//! * **Per-session state** — [`SessionModel`]: either a legacy
//!   device-backed session (full resident [`EdgeDevice`]), a *hot* delta
//!   session (delta + pre-applied NCM overlay, ready to serve), or a
//!   *paged* delta session (delta serialized out to the crash-safe
//!   framed-storage path, only an `Arc` to the base and a path/bytes
//!   handle resident).
//!
//! Hot deltas live in an LRU (touch-clock + `BTreeMap`); when a shard
//! exceeds its configured hot capacity, the coldest deltas page out.
//! Rehydration on the next submit is exact: delta bytes round-trip
//! bit-identically (see `magneto_core::delta`) and the overlay is
//! rebuilt by re-applying the delta to the same immutable base, so a
//! paged-out → rehydrated session serves bit-identical predictions.
//! Device-backed sessions never page (int8 re-quantization is lossy and
//! their state is not delta-representable); they pin hot.

use crate::session::{FleetReply, ModelKey, SessionId};
use magneto_core::drift::{DriftMonitor, DriftStatus};
use magneto_core::incremental::ModelState;
use magneto_core::storage::{load_framed_versioned, save_framed_versioned};
use magneto_core::{
    BatchEmbedder, CoreError, EdgeBundle, EdgeDevice, InferenceView, LabelRegistry, ModelVersion,
    NcmClassifier, PersonalDelta, Precision, QuantizedSupportSet, Recalibrator, ResidentSupport,
    RollbackReason, SelfHealingConfig,
};
use magneto_dsp::PreprocessingPipeline;
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::Matrix;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;
use std::sync::atomic::AtomicU32;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::Duration;

/// Errors from the tiered-store APIs ([`crate::Fleet::register_base`],
/// [`crate::Fleet::register_from_base`],
/// [`crate::Fleet::calibrate_session`], paging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No such session is registered.
    UnknownSession(SessionId),
    /// The session exists but is device-backed, not a base+delta
    /// session; delta APIs cannot operate on it.
    NotDelta(SessionId),
    /// No base is registered under this `(key, precision)`.
    UnknownBase(ModelKey, Precision),
    /// Serving/serialization/storage failure, with the underlying error
    /// rendered.
    Storage(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownSession(id) => write!(f, "unknown {id}"),
            StoreError::NotDelta(id) => {
                write!(f, "{id} is device-backed, not a base+delta session")
            }
            StoreError::UnknownBase(key, precision) => {
                write!(f, "no shared base registered for {key:?} at {precision:?}")
            }
            StoreError::Storage(msg) => write!(f, "session store: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Storage(e.to_string())
    }
}

/// Result of a transactional base-version migration
/// ([`crate::Fleet::migrate_session`]): either the user's calibration
/// was replayed through the new backbone, validated and committed, or
/// the session was left on its exact pre-migration `(base, delta)` pair
/// — the same commit-or-rollback contract as
/// [`magneto_core::incremental::UpdateOutcome`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum ReplayOutcome {
    /// The replay passed every validation gate and the session now
    /// serves on the new base.
    Committed {
        /// Classes the migrated session recognises.
        classes: usize,
        /// Personal prototypes re-derived through the new backbone.
        replayed_prototypes: usize,
    },
    /// The replay failed validation; the session is byte-identical to
    /// its pre-migration state.
    RolledBack {
        /// Which validation gate rejected the replayed state.
        reason: RollbackReason,
    },
}

impl ReplayOutcome {
    /// `true` when the migration committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, ReplayOutcome::Committed { .. })
    }

    /// The rollback reason, when rolled back.
    pub fn rollback_reason(&self) -> Option<RollbackReason> {
        match self {
            ReplayOutcome::Committed { .. } => None,
            ReplayOutcome::RolledBack { reason } => Some(*reason),
        }
    }
}

/// One immutable, refcounted base model: everything identical across all
/// sessions deployed from one bundle at one precision. Assembled exactly
/// like [`EdgeDevice::deploy`] assembles its resident state, so a delta
/// session with an empty delta serves bit-identically to a device-backed
/// session from the same bundle.
pub struct SharedBase {
    pub(crate) pipeline: PreprocessingPipeline,
    pub(crate) model: magneto_core::ResidentModel,
    pub(crate) support: ResidentSupport,
    pub(crate) registry: LabelRegistry,
    pub(crate) ncm: NcmClassifier,
    /// The bundle's model version (v0 for legacy bundles). Deltas
    /// calibrated on this base are pinned to it, and spool frames carry
    /// it so a rehydration validates it still matches.
    pub(crate) version: ModelVersion,
}

impl SharedBase {
    /// Assemble a shared base from a bundle at `precision`, mirroring
    /// the [`EdgeDevice::deploy`] conversion path.
    ///
    /// # Errors
    /// Propagates bundle validation / precision conversion / assembly
    /// errors.
    pub fn from_bundle(
        bundle: &EdgeBundle,
        precision: Precision,
        metric: DistanceMetric,
    ) -> magneto_core::Result<Self> {
        bundle.validate()?;
        let model = bundle.model.clone().into_precision(precision)?;
        let support: ResidentSupport = match precision {
            Precision::F32 => bundle.support_set.clone().into(),
            Precision::Int8 => QuantizedSupportSet::quantize(&bundle.support_set).into(),
        };
        let state = ModelState::assemble(model, support, bundle.registry.clone(), metric)?;
        Ok(SharedBase {
            pipeline: bundle.pipeline.clone(),
            model: state.model,
            support: state.support_set,
            registry: state.registry,
            ncm: state.ncm,
            version: bundle.version(),
        })
    }

    /// The base-model version this base was assembled from.
    pub fn version(&self) -> ModelVersion {
        self.version
    }

    /// Resident bytes of this base (model parameters + support set +
    /// prototypes) — paid **once** per `(key, precision)`, however many
    /// sessions share it.
    pub fn bytes(&self) -> usize {
        self.model.resident_bytes() + self.support.bytes() + self.ncm.resident_bytes()
    }

    /// Class labels the base recognises.
    pub fn classes(&self) -> Vec<String> {
        self.registry.labels().to_vec()
    }
}

/// A hot (resident, serveable) base+delta session.
pub(crate) struct DeltaSession {
    /// The shared immutable base — an `Arc` clone, not a copy.
    pub(crate) base: Arc<SharedBase>,
    /// This user's compact personalization.
    pub(crate) delta: PersonalDelta,
    /// The base NCM with the delta applied, rebuilt (never edited in
    /// place) whenever the delta changes. `None` while the delta is
    /// empty: serve straight off the base's NCM.
    pub(crate) overlay: Option<NcmClassifier>,
    /// LRU touch stamp (0 = not yet in the LRU).
    touch: u64,
}

impl DeltaSession {
    pub(crate) fn fresh(base: Arc<SharedBase>) -> Self {
        DeltaSession {
            base,
            delta: PersonalDelta::new(),
            overlay: None,
            touch: 0,
        }
    }

    /// Rebuild the overlay from the base + current delta. Always clones
    /// from the immutable base, so the overlay is a pure deterministic
    /// function of `(base, delta)` — the property that makes a page-out
    /// → rehydrate cycle bit-exact.
    ///
    /// The delta's private support rows (feature-space) are embedded
    /// through the base backbone — at its resident precision, so an int8
    /// session never rehydrates f32 weights — and indexed as int8
    /// exemplars on the overlay's quantized NCM index: serving classifies
    /// against the user's own recordings, not just class means.
    pub(crate) fn rebuild_overlay(&mut self) -> Result<(), StoreError> {
        if self.delta.is_empty() {
            self.overlay = None;
            return Ok(());
        }
        let mut ncm = self.base.ncm.clone();
        self.delta.apply(&mut ncm)?;
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        for label in self.delta.support_labels() {
            // Support rows for a label the classifier doesn't know (no
            // base class and no delta prototype) have nothing to attach
            // to; they stay in the delta for future calibration.
            if ncm.prototype(label).is_none() {
                continue;
            }
            let rows = self.delta.support(label).expect("label came from support_labels");
            if rows.is_empty() {
                continue;
            }
            embedder.embed_rows(&self.base.model, rows, &mut embeddings)?;
            ncm.set_class_exemplars(label, &embeddings)?;
        }
        self.overlay = Some(ncm);
        Ok(())
    }
}

/// Column mean of an embedding matrix — the prototype derivation shared
/// by calibration, migration replay, and automatic recalibration.
pub(crate) fn mean_embedding(embeddings: &Matrix) -> Vec<f32> {
    let mut proto = vec![0.0f32; embeddings.cols()];
    for r in 0..embeddings.rows() {
        for (p, v) in proto.iter_mut().zip(embeddings.row(r)) {
            *p += v;
        }
    }
    let n = embeddings.rows() as f32;
    for p in &mut proto {
        *p /= n;
    }
    proto
}

/// Where a paged-out delta's bytes live.
pub(crate) enum ColdStore {
    /// In-memory spill (no spool directory configured, or disk write
    /// failed): still evicted from the hot tier, bytes kept verbatim.
    Memory(Vec<u8>),
    /// On disk via the crash-safe framed-storage path
    /// (`magneto_core::storage::save_framed`).
    Disk(std::path::PathBuf),
}

/// A paged-out delta session: only the base `Arc` and a cold handle
/// remain resident. Not serveable until rehydrated.
pub(crate) struct PagedDelta {
    pub(crate) base: Arc<SharedBase>,
    pub(crate) store: ColdStore,
}

/// The tiered per-session model state. The device and delta arms are
/// boxed: a device is kilobytes, a delta session carries the overlay
/// classifier's quantized row index, and a paged session is pointers —
/// tiering exists precisely because the arms differ by orders of
/// magnitude.
pub(crate) enum SessionModel {
    /// Legacy fully-resident device (own backbone copy; never pages).
    Device(Box<EdgeDevice>),
    /// Hot base+delta session.
    Delta(Box<DeltaSession>),
    /// Cold base+delta session (delta paged out).
    Paged(PagedDelta),
}

/// Per-session self-healing state for a delta session: the streaming
/// drift detector plus the recalibration policy (both from
/// `magneto_core::recalibrate`). The deploy-time support set gives no
/// usable distance scale for a delta session's live stream, so the
/// baseline is estimated from the first `warmup` served windows
/// (assumed nominal) and re-estimated after every committed
/// recalibration. Lives on the entry, not the model, so it survives
/// page-out/rehydrate cycles and base migrations.
pub(crate) struct HealState {
    pub(crate) monitor: DriftMonitor,
    pub(crate) recal: Recalibrator,
    calibrated: bool,
    calib_sum: f64,
    calib_n: u64,
    pub(crate) was_drifted: bool,
}

impl HealState {
    /// Build from a validated config. The placeholder baseline is
    /// replaced by the live estimate after `warmup` windows.
    pub(crate) fn new(config: SelfHealingConfig) -> Result<Self, CoreError> {
        Ok(HealState {
            monitor: DriftMonitor::new(1.0, config.alert_ratio, config.alpha, config.warmup)?,
            recal: Recalibrator::new(config)?,
            calibrated: false,
            calib_sum: 0.0,
            calib_n: 0,
            was_drifted: false,
        })
    }

    /// Feed one nearest-prototype distance: while uncalibrated it
    /// accumulates toward the live baseline (re-baselining the monitor
    /// once enough windows are seen), then observes. Returns the
    /// post-observation drift status.
    pub(crate) fn observe(&mut self, nearest: f32) -> DriftStatus {
        if !self.calibrated && nearest.is_finite() {
            self.calib_sum += f64::from(nearest);
            self.calib_n += 1;
            if self.calib_n >= self.recal.config().warmup.max(1) {
                let mean = (self.calib_sum / self.calib_n as f64) as f32;
                self.monitor.reset(mean.max(1e-6));
                self.calibrated = true;
            }
        }
        self.monitor.observe(nearest)
    }

    /// Restart live-baseline estimation (after a committed
    /// recalibration changed the prototypes under the monitor).
    pub(crate) fn rebaseline(&mut self) {
        let b = self.monitor.baseline();
        self.monitor.reset(b);
        self.calibrated = false;
        self.calib_sum = 0.0;
        self.calib_n = 0;
        self.was_drifted = false;
    }
}

/// One registered session: tiered model state plus serving bookkeeping.
pub(crate) struct SessionEntry {
    pub(crate) model: SessionModel,
    pub(crate) key: ModelKey,
    pub(crate) precision: Precision,
    pub(crate) tx: Sender<FleetReply>,
    pub(crate) strikes: u32,
    pub(crate) armed_panics: AtomicU32,
    /// Self-healing loop, present on delta sessions when
    /// [`crate::FleetConfig::healing`] is set.
    pub(crate) healing: Option<Box<HealState>>,
}

impl SessionEntry {
    /// Borrowed serving view, if the session is hot. Paged sessions
    /// return `None` — the drainer rehydrates before grouping, so a
    /// `None` here during serving is a logic error upstream.
    pub(crate) fn view(&self) -> Option<InferenceView<'_>> {
        match &self.model {
            SessionModel::Device(device) => Some(device.inference_view()),
            SessionModel::Delta(ds) => Some(InferenceView {
                pipeline: &ds.base.pipeline,
                model: &ds.base.model,
                ncm: ds.overlay.as_ref().unwrap_or(&ds.base.ncm),
            }),
            SessionModel::Paged(_) => None,
        }
    }

    pub(crate) fn is_device(&self) -> bool {
        matches!(self.model, SessionModel::Device(_))
    }

    /// Record a served latency (device-backed sessions keep their own
    /// recorder; delta sessions are covered by shard counters).
    pub(crate) fn note_latency(&mut self, latency: Duration) {
        if let SessionModel::Device(device) = &mut self.model {
            device.note_latency(latency);
        }
    }

    /// Bytes this session holds resident *beyond* its shared base.
    fn resident_bytes(&self) -> usize {
        match &self.model {
            SessionModel::Device(device) => device.resident_bytes(),
            SessionModel::Delta(ds) => {
                let overlay = ds.overlay.as_ref().map_or(0, NcmClassifier::resident_bytes);
                ds.delta.resident_bytes() + overlay
            }
            SessionModel::Paged(pd) => match &pd.store {
                ColdStore::Memory(bytes) => bytes.len(),
                ColdStore::Disk(_) => 0,
            },
        }
    }
}

/// Point-in-time tier accounting for one shard, folded into
/// [`crate::ShardStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct TierSnapshot {
    /// Per-session resident bytes across the shard (excludes shared
    /// bases, which are fleet-global and counted once).
    pub resident_bytes: usize,
    /// Sessions currently serveable without rehydration (devices + hot
    /// deltas).
    pub hot_sessions: usize,
    /// Delta sessions currently paged out.
    pub paged_sessions: usize,
    /// Lifetime count of page-ins (cold session touched by a submit).
    pub rehydrations: u64,
}

/// One shard's session map with LRU tiering over its delta sessions.
///
/// All methods assume the caller holds the shard's session lock — this
/// type adds no synchronisation of its own (mirrors the plain `HashMap`
/// it replaced).
pub(crate) struct SessionStore {
    entries: HashMap<u64, SessionEntry>,
    /// touch-stamp → session id, oldest first. Only hot delta sessions
    /// appear here; devices pin hot, paged sessions left the tier.
    lru: BTreeMap<u64, u64>,
    clock: u64,
    hot_deltas: usize,
    paged: usize,
    rehydrations: u64,
}

impl SessionStore {
    pub(crate) fn new() -> Self {
        SessionStore {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
            hot_deltas: 0,
            paged: 0,
            rehydrations: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn get(&self, id: u64) -> Option<&SessionEntry> {
        self.entries.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut SessionEntry> {
        self.entries.get_mut(&id)
    }

    /// Mutable access to a **hot** delta session (call
    /// [`ensure_hot`](Self::ensure_hot) first).
    pub(crate) fn delta_mut(&mut self, id: u64) -> Result<&mut DeltaSession, StoreError> {
        match self.entries.get_mut(&id) {
            None => Err(StoreError::UnknownSession(SessionId(id))),
            Some(entry) => match &mut entry.model {
                SessionModel::Delta(ds) => Ok(ds),
                SessionModel::Device(_) => Err(StoreError::NotDelta(SessionId(id))),
                SessionModel::Paged(_) => Err(StoreError::Storage(format!(
                    "{} touched while paged (ensure_hot not called)",
                    SessionId(id)
                ))),
            },
        }
    }

    pub(crate) fn insert(&mut self, id: u64, entry: SessionEntry) {
        match &entry.model {
            SessionModel::Delta(_) => self.hot_deltas += 1,
            SessionModel::Paged(_) => self.paged += 1,
            SessionModel::Device(_) => {}
        }
        let is_delta = matches!(entry.model, SessionModel::Delta(_));
        self.entries.insert(id, entry);
        if is_delta {
            self.touch(id);
        }
    }

    pub(crate) fn remove(&mut self, id: u64) -> Option<SessionEntry> {
        let entry = self.entries.remove(&id)?;
        match &entry.model {
            SessionModel::Delta(ds) => {
                if ds.touch != 0 {
                    self.lru.remove(&ds.touch);
                }
                self.hot_deltas -= 1;
            }
            SessionModel::Paged(pd) => {
                self.paged -= 1;
                if let ColdStore::Disk(path) = &pd.store {
                    let _ = std::fs::remove_file(path);
                }
            }
            SessionModel::Device(_) => {}
        }
        Some(entry)
    }

    /// Mark a delta session most-recently-used. No-op for devices,
    /// paged, and unknown sessions.
    pub(crate) fn touch(&mut self, id: u64) {
        if let Some(entry) = self.entries.get_mut(&id) {
            if let SessionModel::Delta(ds) = &mut entry.model {
                if ds.touch != 0 {
                    self.lru.remove(&ds.touch);
                }
                self.clock += 1;
                ds.touch = self.clock;
                self.lru.insert(self.clock, id);
            }
        }
    }

    /// Rehydrate `id` if it is paged: load the delta bytes (memory or
    /// crash-safe disk frame), decode, and rebuild the overlay against
    /// the same immutable base. Returns `true` if a rehydration
    /// happened. Hot and device sessions are touched and left alone.
    pub(crate) fn ensure_hot(&mut self, id: u64) -> Result<bool, StoreError> {
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(StoreError::UnknownSession(SessionId(id)))?;
        let SessionModel::Paged(pd) = &entry.model else {
            self.touch(id);
            return Ok(false);
        };
        let bytes = match &pd.store {
            ColdStore::Memory(bytes) => bytes.clone(),
            ColdStore::Disk(path) => {
                let (bytes, frame_version) = load_framed_versioned(path)?;
                // A versioned spool frame must still match the base it
                // will rehydrate against; a mismatch means the spool
                // file belongs to a different base generation.
                if !frame_version.is_legacy() && frame_version != pd.base.version {
                    return Err(StoreError::Storage(format!(
                        "spool frame for {} is pinned to {frame_version} but the base is {}",
                        SessionId(id),
                        pd.base.version
                    )));
                }
                bytes
            }
        };
        let delta = PersonalDelta::from_bytes(&bytes)?;
        if let Some(pinned) = delta.base_version() {
            if pinned != pd.base.version {
                return Err(StoreError::Storage(format!(
                    "delta for {} is calibrated against {pinned} but the base is {}",
                    SessionId(id),
                    pd.base.version
                )));
            }
        }
        let mut ds = DeltaSession {
            base: Arc::clone(&pd.base),
            delta,
            overlay: None,
            touch: 0,
        };
        ds.rebuild_overlay()?;
        if let ColdStore::Disk(path) = &pd.store {
            let _ = std::fs::remove_file(path);
        }
        entry.model = SessionModel::Delta(Box::new(ds));
        self.paged -= 1;
        self.hot_deltas += 1;
        self.rehydrations += 1;
        self.touch(id);
        Ok(true)
    }

    /// Page a hot delta session out: serialize the delta, spill it to
    /// the spool directory via the crash-safe framed path (falling back
    /// to an in-memory spill if no spool is set or the write fails), and
    /// drop the overlay. Returns `true` if the session was a hot delta
    /// and is now paged.
    pub(crate) fn page_out(&mut self, id: u64, spool: Option<&Path>) -> bool {
        let Some(entry) = self.entries.get_mut(&id) else {
            return false;
        };
        let SessionModel::Delta(ds) = &entry.model else {
            return false;
        };
        let bytes = ds.delta.to_bytes();
        let base = Arc::clone(&ds.base);
        let touch = ds.touch;
        let store = match spool {
            Some(dir) => {
                let path = dir.join(format!("session-{id}.delta"));
                // Stamp the spool frame with the base version so the
                // on-disk artefact is self-describing and rehydration
                // can validate it (legacy v0 keeps the legacy frame).
                match save_framed_versioned(&bytes, base.version, &path) {
                    Ok(()) => ColdStore::Disk(path),
                    Err(_) => ColdStore::Memory(bytes),
                }
            }
            None => ColdStore::Memory(bytes),
        };
        entry.model = SessionModel::Paged(PagedDelta { base, store });
        if touch != 0 {
            self.lru.remove(&touch);
        }
        self.hot_deltas -= 1;
        self.paged += 1;
        true
    }

    /// Evict least-recently-used delta sessions until at most
    /// `capacity` remain hot. `capacity == 0` disables tiering (all
    /// deltas stay resident).
    pub(crate) fn enforce_capacity(&mut self, capacity: usize, spool: Option<&Path>) {
        if capacity == 0 {
            return;
        }
        while self.hot_deltas > capacity {
            let Some((_, &id)) = self.lru.iter().next() else {
                break;
            };
            if !self.page_out(id, spool) {
                // An LRU entry must be a hot delta; bail rather than spin
                // if the invariant is ever broken.
                break;
            }
        }
    }

    /// Transactionally migrate a hot delta session onto `new_base`,
    /// replaying the user's calibration through the new backbone.
    ///
    /// The candidate state — replayed delta, new overlay — is built
    /// **fully off to the side** and only swapped in after every
    /// validation gate passes; on any rollback or error the session's
    /// old `(base, delta)` pair is untouched (byte-exact by
    /// construction, mirroring `UpdateOutcome`'s commit-or-rollback
    /// contract). Prototypes are re-derived as the mean embedding of the
    /// delta's stored support rows — the exact computation
    /// `calibrate_session` performs — so a surviving migration is the
    /// calibration the user would have gotten on the new base.
    ///
    /// Validation gates (each a [`RollbackReason`]):
    /// * a prototype with no stored support rows cannot cross embedding
    ///   spaces → [`RollbackReason::MissingReplaySource`];
    /// * non-finite embeddings out of the new backbone →
    ///   [`RollbackReason::NonFiniteWeights`];
    /// * the rebuilt overlay must classify the user's own support rows
    ///   at `accuracy_floor` or better →
    ///   [`RollbackReason::SelfAccuracy`].
    ///
    /// The caller must have called [`ensure_hot`](Self::ensure_hot)
    /// (paged sessions rehydrate bit-identically first, so migration
    /// after a page-out cycle replays the same bytes).
    pub(crate) fn migrate_delta(
        &mut self,
        id: u64,
        new_base: &Arc<SharedBase>,
        new_key: ModelKey,
        precision: Precision,
        accuracy_floor: f32,
    ) -> Result<ReplayOutcome, StoreError> {
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(StoreError::UnknownSession(SessionId(id)))?;
        let (old_touch, old_delta) = match &entry.model {
            SessionModel::Delta(ds) => (ds.touch, &ds.delta),
            SessionModel::Device(_) => return Err(StoreError::NotDelta(SessionId(id))),
            SessionModel::Paged(_) => {
                return Err(StoreError::Storage(format!(
                    "{} migrated while paged (ensure_hot not called)",
                    SessionId(id)
                )))
            }
        };

        // Build the candidate delta: margin/threshold/support rows are
        // base-independent and carry over verbatim; prototypes live in
        // the base's embedding space and must be re-derived.
        let mut candidate = old_delta.clone();
        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        let mut replayed = 0usize;
        for label in old_delta.prototype_labels() {
            let Some(rows) = old_delta.support(label) else {
                return Ok(ReplayOutcome::RolledBack {
                    reason: RollbackReason::MissingReplaySource,
                });
            };
            if rows.is_empty() {
                return Ok(ReplayOutcome::RolledBack {
                    reason: RollbackReason::MissingReplaySource,
                });
            }
            embedder.embed_rows(&new_base.model, rows, &mut embeddings)?;
            if (0..embeddings.rows()).any(|r| embeddings.row(r).iter().any(|v| !v.is_finite())) {
                return Ok(ReplayOutcome::RolledBack {
                    reason: RollbackReason::NonFiniteWeights,
                });
            }
            candidate.set_prototype(label, mean_embedding(&embeddings));
            replayed += 1;
        }
        if !candidate.is_empty() && !new_base.version.is_legacy() {
            candidate.pin_base(new_base.version);
        }

        // Assemble the candidate session off to the side; an overlay
        // rebuild failure leaves the old state untouched.
        let mut session = DeltaSession {
            base: Arc::clone(new_base),
            delta: candidate,
            overlay: None,
            touch: old_touch,
        };
        session.rebuild_overlay()?;

        // Self-accuracy gate: the rebuilt overlay must still recognise
        // the user's own recordings.
        if accuracy_floor > 0.0 {
            let ncm = session.overlay.as_ref().unwrap_or(&new_base.ncm);
            let mut correct = 0usize;
            let mut total = 0usize;
            for label in session.delta.support_labels() {
                let rows = session.delta.support(label).expect("label from support_labels");
                if rows.is_empty() {
                    continue;
                }
                embedder.embed_rows(&new_base.model, rows, &mut embeddings)?;
                for r in 0..embeddings.rows() {
                    let decision = ncm.classify(embeddings.row(r))?;
                    total += 1;
                    if decision.label == *label {
                        correct += 1;
                    }
                }
            }
            if total > 0 {
                let after = correct as f32 / total as f32;
                if after < accuracy_floor {
                    return Ok(ReplayOutcome::RolledBack {
                        reason: RollbackReason::SelfAccuracy {
                            after,
                            floor: accuracy_floor,
                        },
                    });
                }
            }
        }

        // Commit: swap the candidate in, preserving the LRU stamp (the
        // lru map entry keeps pointing at this id).
        let classes = session
            .overlay
            .as_ref()
            .unwrap_or(&new_base.ncm)
            .num_classes();
        let entry = self.entries.get_mut(&id).expect("entry checked above");
        entry.model = SessionModel::Delta(Box::new(session));
        entry.key = new_key;
        entry.precision = precision;
        Ok(ReplayOutcome::Committed {
            classes,
            replayed_prototypes: replayed,
        })
    }

    /// Transactionally recalibrate a hot delta session from harvested
    /// drift evidence: build a candidate [`PersonalDelta`] **off to the
    /// side** — current delta plus `rows` as the refreshed support for
    /// `label`, with the prototype re-derived as their mean embedding
    /// (the exact [`crate::Fleet::calibrate_session`] computation) —
    /// rebuild its overlay, and swap it in only if the candidate still
    /// classifies the user's own support rows at `accuracy_floor` or
    /// better. On rollback the session's old `(base, delta)` pair is
    /// untouched (byte-exact by construction). The caller must have
    /// called [`ensure_hot`](Self::ensure_hot).
    pub(crate) fn recalibrate_delta(
        &mut self,
        id: u64,
        label: &str,
        rows: &[Vec<f32>],
        accuracy_floor: f32,
    ) -> Result<ReplayOutcome, StoreError> {
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(StoreError::UnknownSession(SessionId(id)))?;
        let (old_touch, old_delta, base) = match &entry.model {
            SessionModel::Delta(ds) => (ds.touch, &ds.delta, Arc::clone(&ds.base)),
            SessionModel::Device(_) => return Err(StoreError::NotDelta(SessionId(id))),
            SessionModel::Paged(_) => {
                return Err(StoreError::Storage(format!(
                    "{} recalibrated while paged (ensure_hot not called)",
                    SessionId(id)
                )))
            }
        };
        if rows.is_empty() {
            return Ok(ReplayOutcome::RolledBack {
                reason: RollbackReason::MissingReplaySource,
            });
        }

        let mut embedder = BatchEmbedder::new();
        let mut embeddings = Matrix::default();
        embedder.embed_rows(&base.model, rows, &mut embeddings)?;
        if (0..embeddings.rows()).any(|r| embeddings.row(r).iter().any(|v| !v.is_finite())) {
            return Ok(ReplayOutcome::RolledBack {
                reason: RollbackReason::NonFiniteWeights,
            });
        }
        let mut candidate = old_delta.clone();
        candidate.set_prototype(label, mean_embedding(&embeddings));
        candidate.set_support(label, rows.to_vec());
        if !base.version.is_legacy() {
            candidate.pin_base(base.version);
        }

        // Assemble the candidate session aside; an overlay rebuild
        // failure leaves the old state untouched.
        let mut session = DeltaSession {
            base: Arc::clone(&base),
            delta: candidate,
            overlay: None,
            touch: old_touch,
        };
        session.rebuild_overlay()?;

        // Self-accuracy gate across *all* of the user's support rows:
        // the refreshed class must not cannibalise the others.
        if accuracy_floor > 0.0 {
            let ncm = session.overlay.as_ref().unwrap_or(&base.ncm);
            let mut correct = 0usize;
            let mut total = 0usize;
            for l in session.delta.support_labels() {
                let rows = session.delta.support(l).expect("label from support_labels");
                if rows.is_empty() {
                    continue;
                }
                embedder.embed_rows(&base.model, rows, &mut embeddings)?;
                for r in 0..embeddings.rows() {
                    let decision = ncm.classify(embeddings.row(r))?;
                    total += 1;
                    if decision.label == *l {
                        correct += 1;
                    }
                }
            }
            if total > 0 {
                let after = correct as f32 / total as f32;
                if after < accuracy_floor {
                    return Ok(ReplayOutcome::RolledBack {
                        reason: RollbackReason::SelfAccuracy {
                            after,
                            floor: accuracy_floor,
                        },
                    });
                }
            }
        }

        let classes = session.overlay.as_ref().unwrap_or(&base.ncm).num_classes();
        let entry = self.entries.get_mut(&id).expect("entry checked above");
        entry.model = SessionModel::Delta(Box::new(session));
        Ok(ReplayOutcome::Committed {
            classes,
            replayed_prototypes: 1,
        })
    }

    /// Restore a delta session to a given `(base, delta)` pair verbatim
    /// — the rollback path a rollout driver uses to walk a canary wave
    /// back to version N with the exact pre-migration delta bytes.
    pub(crate) fn restore_delta(
        &mut self,
        id: u64,
        base: &Arc<SharedBase>,
        key: ModelKey,
        precision: Precision,
        delta: PersonalDelta,
    ) -> Result<(), StoreError> {
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(StoreError::UnknownSession(SessionId(id)))?;
        let old_touch = match &entry.model {
            SessionModel::Delta(ds) => ds.touch,
            SessionModel::Device(_) => return Err(StoreError::NotDelta(SessionId(id))),
            SessionModel::Paged(_) => {
                return Err(StoreError::Storage(format!(
                    "{} restored while paged (ensure_hot not called)",
                    SessionId(id)
                )))
            }
        };
        let mut session = DeltaSession {
            base: Arc::clone(base),
            delta,
            overlay: None,
            touch: old_touch,
        };
        session.rebuild_overlay()?;
        let entry = self.entries.get_mut(&id).expect("entry checked above");
        entry.model = SessionModel::Delta(Box::new(session));
        entry.key = key;
        entry.precision = precision;
        Ok(())
    }

    pub(crate) fn tier_snapshot(&self) -> TierSnapshot {
        let resident_bytes = self.entries.values().map(SessionEntry::resident_bytes).sum();
        TierSnapshot {
            resident_bytes,
            hot_sessions: self.entries.len() - self.paged,
            paged_sessions: self.paged,
            rehydrations: self.rehydrations,
        }
    }
}
