//! Fleet runtime configuration.

use magneto_core::SelfHealingConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Tuning knobs for the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Session shards. A session lives on shard `id % shards` for its
    /// whole life, and each shard is drained by exactly one worker, so
    /// per-session request order is preserved end to end.
    pub shards: usize,
    /// Worker threads. `0` selects deterministic inline mode: no threads
    /// are spawned and the caller drives processing via
    /// [`crate::Fleet::pump`] — single-threaded, reproducible, and
    /// bit-identical to the threaded modes (which only change *when*
    /// windows are processed, never *what* they compute).
    pub workers: usize,
    /// Pending-window bound per shard. A full queue rejects with
    /// [`crate::SubmitError::QueueFull`] instead of buffering without
    /// limit — explicit backpressure, never unbounded memory.
    pub queue_capacity: usize,
    /// Most windows drained into one scheduling cycle (and therefore the
    /// largest possible micro-batch).
    pub max_batch: usize,
    /// Admission control: most in-flight (queued or executing) windows
    /// one session may have.
    pub max_inflight_per_session: usize,
    /// Admission control: most in-flight windows fleet-wide.
    pub max_inflight_global: usize,
    /// Retry hint handed back with every rejection.
    pub retry_after: Duration,
    /// Circuit breaker: panics a session may cause (strikes) before it
    /// is quarantined. Serving a window from a panicking session is
    /// caught per batch and isolated per window, so one bad session
    /// costs retries, never a worker — but a session that keeps
    /// panicking is cut off. `0` disables quarantining.
    #[serde(default = "default_quarantine_strikes")]
    pub quarantine_strikes: u32,
    /// How long a quarantined session is refused at submit before the
    /// breaker half-opens again. Returned as the retry hint in
    /// [`crate::SubmitError::Quarantined`].
    #[serde(default = "default_quarantine_for")]
    pub quarantine_for: Duration,
    /// Tiered session store: most base+delta sessions kept hot
    /// (overlay resident) **per shard**. Above the cap, the
    /// least-recently-served deltas page out to the spool (crash-safe
    /// framed files, or an in-memory spill if no spool directory is
    /// configured) and rehydrate — bit-identically — on their next
    /// submit. `0` disables tiering: every delta stays hot.
    /// Device-backed sessions never page and do not count against the
    /// cap.
    #[serde(default)]
    pub hot_delta_capacity: usize,
    /// Base-version migration gate: the fraction of a session's own
    /// support rows the replayed overlay must still classify correctly
    /// for [`crate::Fleet::migrate_session`] to commit (mirrors the
    /// incremental-update self-accuracy floor). Below the floor the
    /// migration rolls back and the session stays on its old base.
    /// `0.0` disables the gate.
    #[serde(default = "default_replay_accuracy_floor")]
    pub replay_accuracy_floor: f32,
    /// Self-healing under concept drift for base+delta sessions: when
    /// set, every delta session gets a per-session streaming
    /// [`magneto_core::DriftMonitor`] (baselined on its own live
    /// distances) and a [`magneto_core::Recalibrator`] policy that, on
    /// sustained drift, rebuilds a candidate [`magneto_core::PersonalDelta`]
    /// off to the side from harvested high-confidence windows and swaps
    /// it in only if it passes the replay self-accuracy gate — otherwise
    /// the session's `(base, delta)` pair is untouched. `None` (the
    /// default) keeps serving drift-blind.
    #[serde(default)]
    pub healing: Option<SelfHealingConfig>,
}

fn default_quarantine_strikes() -> u32 {
    3
}

fn default_replay_accuracy_floor() -> f32 {
    0.5
}

fn default_quarantine_for() -> Duration {
    Duration::from_secs(5)
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            workers: 4,
            queue_capacity: 256,
            max_batch: 64,
            max_inflight_per_session: 32,
            max_inflight_global: 1024,
            retry_after: Duration::from_millis(2),
            quarantine_strikes: default_quarantine_strikes(),
            quarantine_for: default_quarantine_for(),
            hot_delta_capacity: 0,
            replay_accuracy_floor: default_replay_accuracy_floor(),
            healing: None,
        }
    }
}

impl FleetConfig {
    /// The deterministic single-threaded configuration: one shard, no
    /// workers, caller-driven [`crate::Fleet::pump`].
    pub fn deterministic() -> Self {
        FleetConfig {
            shards: 1,
            workers: 0,
            ..FleetConfig::default()
        }
    }

    /// Validate the knobs.
    ///
    /// # Errors
    /// A description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("fleet needs at least one shard".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".into());
        }
        if self.max_batch == 0 {
            return Err("max batch must be positive".into());
        }
        if self.max_inflight_per_session == 0 || self.max_inflight_global == 0 {
            return Err("in-flight limits must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.replay_accuracy_floor) {
            return Err("replay accuracy floor must be in [0, 1]".into());
        }
        if let Some(healing) = &self.healing {
            healing.validate().map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(FleetConfig::default().validate().is_ok());
        assert!(FleetConfig::deterministic().validate().is_ok());
        assert_eq!(FleetConfig::deterministic().workers, 0);
    }

    #[test]
    fn invalid_knobs_are_rejected() {
        for bad in [
            FleetConfig {
                shards: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                queue_capacity: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                max_batch: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                max_inflight_per_session: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                max_inflight_global: 0,
                ..FleetConfig::default()
            },
            FleetConfig {
                replay_accuracy_floor: 1.5,
                ..FleetConfig::default()
            },
            FleetConfig {
                healing: Some(SelfHealingConfig {
                    alert_ratio: 0.5,
                    ..SelfHealingConfig::default()
                }),
                ..FleetConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(FleetConfig {
            healing: Some(SelfHealingConfig::default()),
            ..FleetConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let c = FleetConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: FleetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn pre_quarantine_configs_deserialize_with_defaults() {
        // Configs serialized before the circuit-breaker knobs existed
        // must still load, picking up the defaults.
        let json = serde_json::to_string(&FleetConfig::default()).unwrap();
        let stripped = json
            .split(",\"quarantine_strikes\"")
            .next()
            .map(|head| format!("{head}}}"))
            .unwrap();
        assert_ne!(stripped, json);
        let back: FleetConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.quarantine_strikes, default_quarantine_strikes());
        assert_eq!(back.quarantine_for, default_quarantine_for());
        // Stripping at quarantine_strikes also drops the (later)
        // tiering, migration, and self-healing knobs; they pick up
        // their defaults.
        assert_eq!(back.hot_delta_capacity, 0);
        assert_eq!(back.replay_accuracy_floor, default_replay_accuracy_floor());
        assert_eq!(back.healing, None);
    }
}
