//! # magneto-platform
//!
//! Deployment substrate for the paper's Figure-1 comparison: the
//! *Cloud-based* HAR protocol (sensor windows travel to a cloud
//! classifier) versus the *Edge-based* protocol (everything runs on the
//! phone).
//!
//! The real paper demonstrates this with a physical phone and a demo
//! booth; this reproduction simulates the deployment environment so the
//! comparison is measurable and deterministic:
//!
//! * [`network`] — a parametric wireless link (RTT, jitter, bandwidth,
//!   loss with retransmission) with Wi-Fi/LTE/3G/congested presets;
//! * [`device`] — an edge-device compute model (relative CPU speed,
//!   memory budget) with phone/wearable presets;
//! * [`flops`] — operation counts for every stage of the MAGNETO
//!   pipeline, so compute latency can be scaled across device classes;
//! * [`energy`] — a compute-vs-radio energy model (transmitting a byte
//!   over cellular costs orders of magnitude more than a FLOP);
//! * [`protocol`] — the two [`protocol::HarProtocol`]
//!   implementations plus per-inference outcome records feeding the F1
//!   experiment tables;
//! * [`fleet`] — energy/traffic accounting aggregated across a whole
//!   fleet of concurrently served edge sessions (the `magneto-fleet`
//!   serving runtime reports into it);
//! * [`rollout`] — the versioned base-model lifecycle: canary-waved
//!   rollout of a new bundle as a delta-compressed diff, with an
//!   accuracy gate against the pre-rollout baseline, automatic halt +
//!   rollback, and Definition 1 checked as a post-condition.

pub mod device;
pub mod energy;
pub mod fleet;
pub mod flops;
pub mod network;
pub mod protocol;
pub mod rollout;

pub use device::DeviceModel;
pub use energy::EnergyModel;
pub use fleet::{FleetAccounting, FleetEnergyReport};
pub use network::NetworkLink;
pub use protocol::{CloudProtocol, EdgeProtocol, HarProtocol, ProtocolOutcome};
pub use rollout::{
    BundleDiff, HaltReason, Rollout, RolloutConfig, RolloutError, RolloutReport, RolloutStatus,
    WaveOutcome,
};
