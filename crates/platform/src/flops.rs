//! Operation counts for the MAGNETO pipeline stages.
//!
//! Used to scale compute latency across device classes: the same window
//! costs the same FLOPs everywhere, only the FLOP/s differ.

/// FLOPs for a dense-MLP forward pass over a batch: each layer costs
/// `2·in·out` multiply-adds plus `out` bias adds and `out` activations
/// per row.
pub fn mlp_forward_flops(dims: &[usize], batch: usize) -> u64 {
    let mut flops = 0u64;
    for w in dims.windows(2) {
        let (i, o) = (w[0] as u64, w[1] as u64);
        flops += 2 * i * o + 2 * o;
    }
    flops * batch as u64
}

/// FLOPs for one training step (forward + backward ≈ 3× forward for an
/// MLP: backward recomputes both weight and input gradients).
pub fn mlp_train_flops(dims: &[usize], batch: usize) -> u64 {
    mlp_forward_flops(dims, batch) * 3
}

/// FLOPs for NCM classification: one distance per class.
pub fn ncm_flops(classes: usize, embedding_dim: usize) -> u64 {
    // Squared distance: 3 ops per dimension (sub, mul, add) per class.
    (3 * classes * embedding_dim) as u64
}

/// Approximate FLOPs for the 80-feature extraction over a
/// `channels × window` raw window. Statistical features are a small
/// constant number of passes; the DFT features cost `window²/2` each for
/// two series.
pub fn feature_flops(channels: usize, window_len: usize) -> u64 {
    let linear_passes = 12u64; // denoise + magnitudes + moments + order stats
    let linear = linear_passes * (channels * window_len) as u64;
    let dft = (window_len * window_len) as u64; // two series × n²/2
    linear + dft
}

/// Total per-window inference FLOPs for a backbone and class count.
pub fn inference_flops(dims: &[usize], classes: usize, channels: usize, window_len: usize) -> u64 {
    feature_flops(channels, window_len)
        + mlp_forward_flops(dims, 1)
        + ncm_flops(classes, *dims.last().unwrap_or(&0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flops_known_value() {
        // 2 layers: 4->3 and 3->2: 2*4*3+2*3 + 2*3*2+2*2 = 30 + 16 = 46.
        assert_eq!(mlp_forward_flops(&[4, 3, 2], 1), 46);
        assert_eq!(mlp_forward_flops(&[4, 3, 2], 10), 460);
        assert_eq!(mlp_forward_flops(&[4], 1), 0);
    }

    #[test]
    fn train_is_three_times_forward() {
        let dims = [80, 64, 32];
        assert_eq!(mlp_train_flops(&dims, 8), 3 * mlp_forward_flops(&dims, 8));
    }

    #[test]
    fn paper_backbone_magnitude() {
        // 80·1024 + 1024·512 + 512·128 + 128·64 + 64·128 ≈ 0.69M params
        // -> ~1.4 MFLOPs per inference forward.
        let flops = mlp_forward_flops(&magneto_nn::PAPER_BACKBONE, 1);
        assert!(flops > 1_000_000 && flops < 3_000_000, "flops {flops}");
    }

    #[test]
    fn ncm_is_negligible_next_to_backbone() {
        let backbone = mlp_forward_flops(&magneto_nn::PAPER_BACKBONE, 1);
        let ncm = ncm_flops(10, 128);
        assert!(ncm * 100 < backbone);
    }

    #[test]
    fn inference_flops_compose() {
        let dims = [80, 64, 32];
        let total = inference_flops(&dims, 5, 22, 120);
        assert_eq!(
            total,
            feature_flops(22, 120) + mlp_forward_flops(&dims, 1) + ncm_flops(5, 32)
        );
        assert!(total > feature_flops(22, 120));
    }

    #[test]
    fn feature_flops_scale_with_window() {
        assert!(feature_flops(22, 240) > feature_flops(22, 120) * 2);
        assert!(feature_flops(44, 120) > feature_flops(22, 120));
    }
}
