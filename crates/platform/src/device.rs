//! Edge-device compute and memory model.
//!
//! §1 names the edge constraints: model size, data size, energy. The
//! device model turns FLOP counts into time on a given hardware class and
//! enforces a memory budget, so experiments can ask "does the bundle fit
//! on a wearable?" as a checked operation.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A class of edge hardware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Name for reports. Deserialised instances get the generic name
    /// `"custom"` (the field is informational, not identity).
    #[serde(skip_deserializing, default = "custom_name")]
    pub name: &'static str,
    /// Sustained compute throughput in GFLOP/s for this workload class
    /// (scalar f32 on a mobile core, not peak SIMD marketing numbers).
    pub gflops: f64,
    /// Memory available to the HAR app, bytes.
    pub memory_budget: usize,
    /// Persistent storage available to the HAR app, bytes.
    pub storage_budget: usize,
}

fn custom_name() -> &'static str {
    "custom"
}

impl DeviceModel {
    /// A current flagship smartphone.
    pub fn flagship_phone() -> Self {
        DeviceModel {
            name: "flagship_phone",
            gflops: 8.0,
            memory_budget: 512 * 1024 * 1024,
            storage_budget: 4 * 1024 * 1024 * 1024,
        }
    }

    /// A budget smartphone (the paper's realistic target).
    pub fn budget_phone() -> Self {
        DeviceModel {
            name: "budget_phone",
            gflops: 2.0,
            memory_budget: 128 * 1024 * 1024,
            storage_budget: 512 * 1024 * 1024,
        }
    }

    /// A wearable / smartwatch-class device.
    pub fn wearable() -> Self {
        DeviceModel {
            name: "wearable",
            gflops: 0.4,
            memory_budget: 16 * 1024 * 1024,
            storage_budget: 64 * 1024 * 1024,
        }
    }

    /// A cloud server (used as the far side of the Cloud protocol).
    pub fn cloud_server() -> Self {
        DeviceModel {
            name: "cloud_server",
            gflops: 200.0,
            memory_budget: 64 * 1024 * 1024 * 1024,
            storage_budget: usize::MAX / 2,
        }
    }

    /// Time to execute `flops` on this device.
    pub fn compute_time(&self, flops: u64) -> Duration {
        if self.gflops <= 0.0 {
            return Duration::MAX;
        }
        Duration::from_secs_f64(flops as f64 / (self.gflops * 1e9))
    }

    /// Whether a payload fits in memory.
    pub fn fits_in_memory(&self, bytes: usize) -> bool {
        bytes <= self.memory_budget
    }

    /// Whether a payload fits in storage.
    pub fn fits_in_storage(&self, bytes: usize) -> bool {
        bytes <= self.storage_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flops;

    #[test]
    fn compute_time_scales_inversely_with_speed() {
        let flagship = DeviceModel::flagship_phone();
        let wearable = DeviceModel::wearable();
        let flops = 1_000_000u64;
        let tf = flagship.compute_time(flops);
        let tw = wearable.compute_time(flops);
        assert!(tw > tf * 10);
        // Exact arithmetic: 1 MFLOP at 8 GFLOP/s = 125 µs.
        assert!((tf.as_secs_f64() - 1.25e-4).abs() < 1e-9);
    }

    #[test]
    fn paper_inference_is_milliseconds_on_phones() {
        // The §4.2.1 claim: per-window inference latency is a few ms.
        let flops = flops::inference_flops(&magneto_nn::PAPER_BACKBONE, 5, 22, 120);
        for device in [DeviceModel::flagship_phone(), DeviceModel::budget_phone()] {
            let t = device.compute_time(flops).as_secs_f64() * 1e3;
            assert!(t < 5.0, "{}: {t} ms", device.name);
        }
        // Even the wearable stays under ~20 ms.
        let tw = DeviceModel::wearable().compute_time(flops).as_secs_f64() * 1e3;
        assert!(tw < 20.0, "wearable {tw} ms");
    }

    #[test]
    fn five_mb_bundle_fits_everywhere() {
        let bundle = 5 * 1024 * 1024;
        for d in [
            DeviceModel::flagship_phone(),
            DeviceModel::budget_phone(),
            DeviceModel::wearable(),
        ] {
            assert!(d.fits_in_memory(bundle), "{}", d.name);
            assert!(d.fits_in_storage(bundle), "{}", d.name);
        }
    }

    #[test]
    fn memory_budget_enforced() {
        let w = DeviceModel::wearable();
        assert!(!w.fits_in_memory(w.memory_budget + 1));
        assert!(w.fits_in_memory(w.memory_budget));
    }

    #[test]
    fn degenerate_speed_is_infinite_time() {
        let broken = DeviceModel {
            gflops: 0.0,
            ..DeviceModel::wearable()
        };
        assert_eq!(broken.compute_time(1), Duration::MAX);
    }

    #[test]
    fn serde_roundtrip() {
        let d = DeviceModel::budget_phone();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "custom");
        assert_eq!(back.gflops, d.gflops);
        assert_eq!(back.memory_budget, d.memory_budget);
    }
}
