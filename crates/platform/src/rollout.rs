//! Versioned base-model rollout: canary waves, regression gate,
//! automatic rollback.
//!
//! The cloud periodically retrains and ships a new base model. At fleet
//! scale that is not one download — it is a *lifecycle*: version N+1
//! must prove it descends from the version N the fleet is serving
//! ([`Lineage::validate_succession`]), travel as a [`BundleDiff`] (only
//! the wire sections that actually changed), land on a small **canary
//! cohort** first, and survive an accuracy gate against the pre-rollout
//! baseline before the remaining waves migrate. A regression halts the
//! rollout and walks every migrated canary session back to its exact
//! pre-migration `(base, delta)` state via
//! [`Fleet::restore_session`] — personalization is never sacrificed to
//! a bad base.
//!
//! Privacy is a *checked invariant*, not a convention: every byte the
//! driver ships flows through the caller's [`PrivacyLedger`], probe
//! windows are cloud-owned (synthesized by the operator, never user
//! recordings), and [`Rollout::run`] fails with a typed error if the
//! ledger ever shows uplink or a downlink payload above the Definition-1
//! budget (5 MB).

use crate::fleet::FleetAccounting;
use magneto_core::privacy::PrivacyLedger;
use magneto_core::{CoreError, EdgeBundle, Fnv64, ModelVersion, Precision};
use magneto_fleet::{Fleet, FleetReply, SessionId, StoreError};
use serde::Serialize;
use std::fmt;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

/// Wire framing for a serialized [`BundleDiff`].
const DIFF_MAGIC: &[u8; 4] = b"MGDF";
const DIFF_VERSION: u32 = 1;

/// The paper's Definition-1 downlink budget: 5 MB (decimal).
pub const DOWNLINK_BUDGET_BYTES: usize = 5_000_000;

/// One patch operation against the base bundle's wire sections.
#[derive(Debug, Clone, PartialEq)]
enum DiffOp {
    /// Reuse base section `i` verbatim (the device already has it).
    Keep(u32),
    /// Ship replacement bytes for this section.
    Replace(Vec<u8>),
}

/// A section-level delta between two bundle wire images.
///
/// The bundle wire format is a 9-byte header followed by length-prefixed
/// sections (pipeline, model, support envelope, registry — plus the
/// lineage section on versioned bundles). A retrain that only touches
/// the classifier re-ships only the sections that changed; unchanged
/// megabytes of backbone weights are referenced, not re-sent. Both
/// endpoints are pinned by FNV-1a content hashes, so a diff can neither
/// be applied to the wrong base nor silently produce the wrong target.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleDiff {
    base_hash: u64,
    target_hash: u64,
    /// The target's 9-byte wire header (magic, wire version, format).
    header: Vec<u8>,
    ops: Vec<DiffOp>,
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Split a bundle wire image into its 9-byte header and length-prefixed
/// sections.
fn split_sections(bytes: &[u8]) -> Result<(&[u8], Vec<&[u8]>), CoreError> {
    if bytes.len() < 9 || &bytes[..4] != b"MGBD" {
        return Err(CoreError::InvalidBundle(
            "diff endpoint is not a bundle wire image".into(),
        ));
    }
    let (header, mut rest) = bytes.split_at(9);
    let mut sections = Vec::new();
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(CoreError::InvalidBundle(
                "truncated section length in bundle wire image".into(),
            ));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(CoreError::InvalidBundle(
                "truncated section in bundle wire image".into(),
            ));
        }
        let (section, tail) = rest.split_at(len);
        sections.push(section);
        rest = tail;
    }
    Ok((header, sections))
}

impl BundleDiff {
    /// Compute the diff that turns `base` wire bytes into `target` wire
    /// bytes. Sections are matched by content: a target section
    /// identical to *any* base section becomes a [`DiffOp::Keep`]
    /// reference, so inserting a lineage section or reordering does not
    /// force a re-send of the backbone.
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] when either image is not a framed
    /// bundle.
    pub fn between(base: &[u8], target: &[u8]) -> Result<BundleDiff, CoreError> {
        let (_, base_sections) = split_sections(base)?;
        let (target_header, target_sections) = split_sections(target)?;
        let ops = target_sections
            .iter()
            .map(|t| {
                match base_sections.iter().position(|b| b == t) {
                    Some(i) => DiffOp::Keep(i as u32),
                    None => DiffOp::Replace(t.to_vec()),
                }
            })
            .collect();
        Ok(BundleDiff {
            base_hash: fnv(base),
            target_hash: fnv(target),
            header: target_header.to_vec(),
            ops,
        })
    }

    /// Apply the diff to a base wire image, reconstructing the target.
    /// Verifies the base hash before patching and the target hash after
    /// — a corrupt or mismatched reconstruction never reaches a device.
    ///
    /// # Errors
    /// [`CoreError::InvalidBundle`] on a hash mismatch or an
    /// out-of-range section reference.
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>, CoreError> {
        if fnv(base) != self.base_hash {
            return Err(CoreError::InvalidBundle(format!(
                "diff applies to base {:016x}, got {:016x}",
                self.base_hash,
                fnv(base)
            )));
        }
        let (_, base_sections) = split_sections(base)?;
        let mut out = self.header.clone();
        for op in &self.ops {
            let section: &[u8] = match op {
                DiffOp::Keep(i) => base_sections.get(*i as usize).copied().ok_or_else(|| {
                    CoreError::InvalidBundle(format!("diff references missing base section {i}"))
                })?,
                DiffOp::Replace(bytes) => bytes,
            };
            out.extend_from_slice(&(section.len() as u32).to_le_bytes());
            out.extend_from_slice(section);
        }
        if fnv(&out) != self.target_hash {
            return Err(CoreError::InvalidBundle(
                "diff application did not reproduce the target bundle".into(),
            ));
        }
        Ok(out)
    }

    /// Serialize for transfer:
    ///
    /// ```text
    /// diff := "MGDF" | u32 version | u64 base | u64 target
    ///       | u32 header_len | header | u32 ops | op*
    /// op   := 0x00 u32 index | 0x01 u32 len bytes
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.encoded_payload_estimate());
        out.extend_from_slice(DIFF_MAGIC);
        out.extend_from_slice(&DIFF_VERSION.to_le_bytes());
        out.extend_from_slice(&self.base_hash.to_le_bytes());
        out.extend_from_slice(&self.target_hash.to_le_bytes());
        out.extend_from_slice(&(self.header.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.header);
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                DiffOp::Keep(i) => {
                    out.push(0);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                DiffOp::Replace(bytes) => {
                    out.push(1);
                    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
            }
        }
        out
    }

    /// Wire size of the diff — the bytes a device actually downloads.
    pub fn encoded_size(&self) -> usize {
        self.to_bytes().len()
    }

    fn encoded_payload_estimate(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DiffOp::Keep(_) => 5,
                DiffOp::Replace(b) => 5 + b.len(),
            })
            .sum()
    }
}

/// Configuration for a staged rollout.
#[derive(Debug, Clone, Serialize)]
pub struct RolloutConfig {
    /// Fraction of the cohort migrated per wave, canary first. Must sum
    /// to ≤ 1; any remainder joins the final wave.
    pub wave_fractions: Vec<f64>,
    /// Halt the rollout when a wave's probe accuracy falls more than
    /// this below the pre-rollout baseline.
    pub max_accuracy_drop: f32,
    /// Per-payload Cloud → Edge byte budget (Definition 1: 5 MB).
    pub downlink_budget: usize,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            wave_fractions: vec![0.02, 0.18, 0.80],
            max_accuracy_drop: 0.05,
            downlink_budget: DOWNLINK_BUDGET_BYTES,
        }
    }
}

impl RolloutConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    /// A description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.wave_fractions.is_empty() {
            return Err("rollout needs at least one wave".into());
        }
        if self.wave_fractions.iter().any(|&f| f <= 0.0 || f > 1.0) {
            return Err("wave fractions must be in (0, 1]".into());
        }
        if self.wave_fractions.iter().sum::<f64>() > 1.0 + 1e-9 {
            return Err("wave fractions must sum to at most 1".into());
        }
        if !(0.0..=1.0).contains(&self.max_accuracy_drop) {
            return Err("max accuracy drop must be in [0, 1]".into());
        }
        if self.downlink_budget == 0 {
            return Err("downlink budget must be positive".into());
        }
        Ok(())
    }
}

/// Why a rollout stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum HaltReason {
    /// A wave's probe accuracy regressed past the configured gate.
    AccuracyRegression {
        /// Pre-rollout baseline accuracy.
        baseline: f32,
        /// The regressed wave's accuracy.
        observed: f32,
        /// The gate: lowest tolerated accuracy.
        floor: f32,
    },
}

impl fmt::Display for HaltReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaltReason::AccuracyRegression {
                baseline,
                observed,
                floor,
            } => write!(
                f,
                "wave accuracy {observed:.3} fell below floor {floor:.3} (baseline {baseline:.3})"
            ),
        }
    }
}

/// Terminal state of one rollout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RolloutStatus {
    /// Every wave migrated and passed the gate.
    Completed,
    /// The gate tripped; the offending wave was restored to version N.
    Halted {
        /// Zero-based wave index that tripped the gate.
        wave: usize,
        /// What tripped it.
        reason: HaltReason,
        /// Sessions walked back to their pre-migration state.
        restored: usize,
    },
}

/// Per-wave telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WaveOutcome {
    /// Zero-based wave index (0 = canary).
    pub wave: usize,
    /// Sessions in the wave.
    pub sessions: usize,
    /// Sessions whose replay committed onto the new base.
    pub migrated: usize,
    /// Sessions whose replay rolled back (they stay on version N).
    pub rolled_back: usize,
    /// Probe accuracy over the wave after migration.
    pub accuracy: f32,
    /// Mean end-to-end serve latency over the wave's probes, µs.
    pub mean_latency_us: f64,
    /// Bytes shipped Cloud → Edge to this wave (diff × sessions).
    pub downlink_bytes: u64,
}

/// Full rollout report (serialized into `BENCH_rollout.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RolloutReport {
    /// The version the fleet served before the rollout.
    pub from_version: ModelVersion,
    /// The version being rolled out.
    pub to_version: ModelVersion,
    /// Wire size of the full target bundle.
    pub full_bundle_bytes: usize,
    /// Wire size of the shipped diff (per device).
    pub diff_bytes: usize,
    /// Pre-rollout probe accuracy over the canary cohort.
    pub baseline_accuracy: f32,
    /// Per-wave telemetry, in order.
    pub waves: Vec<WaveOutcome>,
    /// How the rollout ended.
    pub status: RolloutStatus,
}

/// Errors from [`Rollout::run`].
#[derive(Debug)]
pub enum RolloutError {
    /// The target bundle's lineage does not descend from the base.
    Lineage(CoreError),
    /// The privacy invariant (Definition 1) was violated.
    Privacy(CoreError),
    /// Diff computation or application failed.
    Diff(CoreError),
    /// A fleet/store operation failed.
    Fleet(StoreError),
    /// Invalid configuration or arguments.
    Config(String),
    /// Serving a probe window failed.
    Serving(String),
}

impl fmt::Display for RolloutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutError::Lineage(e) => write!(f, "lineage validation failed: {e}"),
            RolloutError::Privacy(e) => write!(f, "privacy invariant violated: {e}"),
            RolloutError::Diff(e) => write!(f, "bundle diff failed: {e}"),
            RolloutError::Fleet(e) => write!(f, "fleet operation failed: {e}"),
            RolloutError::Config(msg) => write!(f, "invalid rollout config: {msg}"),
            RolloutError::Serving(msg) => write!(f, "probe serving failed: {msg}"),
        }
    }
}

impl std::error::Error for RolloutError {}

impl From<StoreError> for RolloutError {
    fn from(e: StoreError) -> Self {
        RolloutError::Fleet(e)
    }
}

/// A cohort member: the session plus the receiver its predictions
/// arrive on (as returned by [`Fleet::register_from_base`]).
pub type CohortSession = (SessionId, Receiver<FleetReply>);

/// The rollout driver.
pub struct Rollout {
    config: RolloutConfig,
}

impl Rollout {
    /// Create a driver with validated configuration.
    ///
    /// # Errors
    /// [`RolloutError::Config`] for an invalid knob.
    pub fn new(config: RolloutConfig) -> Result<Rollout, RolloutError> {
        config.validate().map_err(RolloutError::Config)?;
        Ok(Rollout { config })
    }

    /// Roll `target` out to `cohort` over the configured waves.
    ///
    /// `probes` are **cloud-owned** evaluation windows with expected
    /// labels — operator-synthesized, never user recordings, so grading
    /// them uploads nothing. The flow per wave: ship the
    /// [`BundleDiff`] to each device (recorded in `ledger` and
    /// `accounting`), snapshot each session's delta, replay it onto the
    /// new base via [`Fleet::migrate_session`], then grade the wave
    /// against the pre-rollout baseline measured on the canary cohort.
    /// A regression halts the rollout and restores every session of the
    /// offending wave to its snapshot.
    ///
    /// On return — completed or halted — the ledger is checked against
    /// both halves of Definition 1.
    ///
    /// # Errors
    /// See [`RolloutError`]. A halted rollout is **not** an error; it is
    /// reported in [`RolloutReport::status`].
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        fleet: &mut Fleet,
        base: &EdgeBundle,
        target: &EdgeBundle,
        cohort: &[CohortSession],
        probes: &[(Vec<Vec<f32>>, String)],
        precision: Precision,
        accounting: &mut FleetAccounting,
        ledger: &mut PrivacyLedger,
    ) -> Result<RolloutReport, RolloutError> {
        if cohort.is_empty() {
            return Err(RolloutError::Config("empty rollout cohort".into()));
        }
        if probes.is_empty() {
            return Err(RolloutError::Config("no probe windows".into()));
        }

        // 1. Version succession: the target must prove it descends from
        //    the base the fleet is serving.
        let lineage = target.lineage.ok_or_else(|| {
            RolloutError::Lineage(CoreError::InvalidBundle(
                "target bundle carries no lineage".into(),
            ))
        })?;
        lineage
            .validate_succession(base.version(), base.content_hash())
            .map_err(RolloutError::Lineage)?;

        // 2. Delta-compress the upgrade and prove it reconstructs the
        //    target bit-exactly before shipping anything.
        let base_bytes = base.to_bytes(false);
        let target_bytes = target.to_bytes(false);
        let diff = BundleDiff::between(&base_bytes, &target_bytes).map_err(RolloutError::Diff)?;
        let reconstructed = diff.apply(&base_bytes).map_err(RolloutError::Diff)?;
        if reconstructed != target_bytes {
            return Err(RolloutError::Diff(CoreError::InvalidBundle(
                "diff round-trip mismatch".into(),
            )));
        }
        let diff_bytes = diff.encoded_size();
        if diff_bytes > self.config.downlink_budget {
            return Err(RolloutError::Privacy(CoreError::PrivacyViolation {
                description: format!(
                    "version diff {} → {} exceeds the downlink budget",
                    base.version(),
                    lineage.version
                ),
                bytes: diff_bytes,
            }));
        }

        let base_key = fleet.register_base(base, precision)?;
        let target_key = fleet.register_base(target, precision)?;

        // 3. Pre-rollout baseline over the canary cohort.
        let waves = partition(cohort.len(), &self.config.wave_fractions);
        let canary = &cohort[..waves[0]];
        let (baseline_accuracy, _) = evaluate(fleet, canary, probes)?;
        let floor = baseline_accuracy - self.config.max_accuracy_drop;

        // 4. Staged migration.
        let mut report = RolloutReport {
            from_version: base.version(),
            to_version: lineage.version,
            full_bundle_bytes: target_bytes.len(),
            diff_bytes,
            baseline_accuracy,
            waves: Vec::with_capacity(waves.len()),
            status: RolloutStatus::Completed,
        };
        let mut start = 0usize;
        for (w, &size) in waves.iter().enumerate() {
            let slice = &cohort[start..start + size];
            start += size;
            let mut migrated = 0usize;
            let mut rolled_back = 0usize;
            let mut snapshots = Vec::with_capacity(slice.len());
            for (id, _) in slice {
                ledger.record_download(
                    diff_bytes,
                    format!(
                        "bundle diff {} → {} (wave {w})",
                        report.from_version, report.to_version
                    ),
                );
                accounting.record_deploy(diff_bytes);
                let snapshot = fleet.session_delta(*id)?;
                let outcome = fleet.migrate_session(*id, target_key, precision)?;
                if outcome.is_committed() {
                    migrated += 1;
                } else {
                    rolled_back += 1;
                }
                snapshots.push(snapshot);
            }
            let (accuracy, mean_latency_us) = evaluate(fleet, slice, probes)?;
            report.waves.push(WaveOutcome {
                wave: w,
                sessions: slice.len(),
                migrated,
                rolled_back,
                accuracy,
                mean_latency_us,
                downlink_bytes: (diff_bytes * slice.len()) as u64,
            });
            if accuracy < floor {
                // Halt: walk every session of this wave back to its
                // exact pre-migration (base, delta) pair.
                let mut restored = 0usize;
                for ((id, _), snapshot) in slice.iter().zip(snapshots) {
                    fleet.restore_session(*id, base_key, precision, snapshot)?;
                    restored += 1;
                }
                report.status = RolloutStatus::Halted {
                    wave: w,
                    reason: HaltReason::AccuracyRegression {
                        baseline: baseline_accuracy,
                        observed: accuracy,
                        floor,
                    },
                    restored,
                };
                break;
            }
        }

        // 5. Definition 1, both halves, as a hard post-condition.
        ledger.check_no_uplink().map_err(RolloutError::Privacy)?;
        ledger
            .check_downlink_budget(self.config.downlink_budget)
            .map_err(RolloutError::Privacy)?;
        Ok(report)
    }
}

/// Split `n` sessions into wave sizes from `fractions`. The final wave
/// absorbs rounding remainders and any unallocated fraction; every wave
/// that should be non-empty gets at least one session while sessions
/// remain.
fn partition(n: usize, fractions: &[f64]) -> Vec<usize> {
    let mut sizes = Vec::with_capacity(fractions.len());
    let mut assigned = 0usize;
    for (i, &f) in fractions.iter().enumerate() {
        let remaining = n - assigned;
        let size = if i + 1 == fractions.len() {
            remaining
        } else {
            (((n as f64) * f).round() as usize).clamp(usize::from(remaining > 0), remaining)
        };
        sizes.push(size);
        assigned += size;
    }
    sizes
}

/// Serve every probe through every session of `slice`, returning
/// (accuracy, mean latency in µs). The fleet is pumped inline, so this
/// works on deterministic (worker-less) fleets.
fn evaluate(
    fleet: &mut Fleet,
    slice: &[CohortSession],
    probes: &[(Vec<Vec<f32>>, String)],
) -> Result<(f32, f64), RolloutError> {
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut latency = Duration::ZERO;
    for (id, rx) in slice {
        for (window, expected) in probes {
            let t0 = Instant::now();
            fleet
                .submit(*id, window.clone())
                .map_err(|e| RolloutError::Serving(e.to_string()))?;
            fleet.pump();
            let reply = rx
                .recv_timeout(Duration::from_secs(30))
                .map_err(|e| RolloutError::Serving(format!("probe reply for {id}: {e}")))?;
            let prediction = reply
                .outcome
                .map_err(|e| RolloutError::Serving(format!("probe failed for {id}: {e}")))?;
            latency += t0.elapsed();
            total += 1;
            if prediction.label == *expected {
                correct += 1;
            }
        }
    }
    let accuracy = if total == 0 {
        0.0
    } else {
        correct as f32 / total as f32
    };
    let mean_latency_us = if total == 0 {
        0.0
    } else {
        latency.as_secs_f64() * 1e6 / total as f64
    };
    Ok((accuracy, mean_latency_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_session() {
        for n in [1usize, 3, 10, 100, 1000] {
            let sizes = partition(n, &[0.02, 0.18, 0.80]);
            assert_eq!(sizes.iter().sum::<usize>(), n, "n={n} sizes={sizes:?}");
            assert!(sizes[0] >= 1, "canary must be non-empty for n={n}");
        }
        assert_eq!(partition(100, &[1.0]), vec![100]);
    }

    #[test]
    fn config_validation() {
        assert!(RolloutConfig::default().validate().is_ok());
        for bad in [
            RolloutConfig {
                wave_fractions: vec![],
                ..RolloutConfig::default()
            },
            RolloutConfig {
                wave_fractions: vec![0.0, 0.5],
                ..RolloutConfig::default()
            },
            RolloutConfig {
                wave_fractions: vec![0.8, 0.8],
                ..RolloutConfig::default()
            },
            RolloutConfig {
                max_accuracy_drop: 2.0,
                ..RolloutConfig::default()
            },
            RolloutConfig {
                downlink_budget: 0,
                ..RolloutConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    /// A fake two-section wire image with the bundle magic.
    fn fake_bundle(sections: &[&[u8]]) -> Vec<u8> {
        let mut out = b"MGBD".to_vec();
        out.extend_from_slice(&1u32.to_le_bytes());
        out.push(0);
        for s in sections {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
        out
    }

    #[test]
    fn diff_reuses_unchanged_sections() {
        let big = vec![7u8; 10_000];
        let base = fake_bundle(&[&big, b"registry-v1"]);
        let target = fake_bundle(&[&big, b"registry-v2-with-more"]);
        let diff = BundleDiff::between(&base, &target).unwrap();
        // The 10 KB section travels as a 5-byte reference.
        assert!(
            diff.encoded_size() < 200,
            "diff too large: {}",
            diff.encoded_size()
        );
        assert_eq!(diff.apply(&base).unwrap(), target);
    }

    #[test]
    fn diff_rejects_wrong_base_and_detects_corruption() {
        let base = fake_bundle(&[b"aaa", b"bbb"]);
        let target = fake_bundle(&[b"aaa", b"ccc"]);
        let diff = BundleDiff::between(&base, &target).unwrap();
        // Wrong base: hash gate refuses before patching.
        let other = fake_bundle(&[b"xxx", b"bbb"]);
        assert!(diff.apply(&other).is_err());
        // Identity diff still round-trips.
        let id = BundleDiff::between(&base, &base).unwrap();
        assert_eq!(id.apply(&base).unwrap(), base);
        // Non-bundle input is rejected structurally.
        assert!(BundleDiff::between(b"nope", &target).is_err());
    }
}
