//! Fleet-level energy and traffic accounting.
//!
//! One phone is the paper's story; a serving fleet is the ROADMAP's. This
//! module aggregates the per-device models ([`crate::energy`],
//! [`crate::flops`]) across N concurrently served edge sessions so a
//! fleet operator can answer: what does serving this population cost in
//! joules, and what *would* it have cost to ship every window to the
//! Cloud instead? The asymmetry of Figure 1 compounds at fleet scale —
//! radio tails are paid per device per transaction, while edge compute
//! amortises across micro-batches.

use crate::energy::EnergyModel;
use crate::flops;
use serde::{Deserialize, Serialize};

/// Aggregated accounting for a fleet of edge sessions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAccounting {
    energy: EnergyModel,
    /// Backbone layer dims (input → … → embedding) used for FLOP counts.
    dims: Vec<usize>,
    /// Classes per session (prototype count for the NCM FLOP term).
    classes: usize,
    /// Sensor channels per window.
    channels: usize,
    /// Samples per window.
    window_len: usize,
    /// Sessions registered.
    pub sessions: usize,
    /// Windows served on-device.
    pub windows: u64,
    /// Micro-batches executed (one backbone forward each).
    pub batches: u64,
    /// Joules spent on on-device compute.
    pub compute_joules: f64,
    /// Joules spent on radio (bundle downloads only — Definition 1
    /// forbids uplink, so serving adds no radio cost).
    pub radio_joules: f64,
    /// Bytes moved Cloud → Edge (bundle deployments).
    pub downlink_bytes: u64,
}

/// A summary row for reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetEnergyReport {
    /// Total joules across the fleet (compute + radio).
    pub total_joules: f64,
    /// Mean joules per served window.
    pub joules_per_window: f64,
    /// Mean windows per micro-batch (batching efficiency).
    pub mean_batch_size: f64,
    /// Joules the same traffic would have cost under the Cloud protocol
    /// (every raw window radioed up, per device, per window).
    pub cloud_equivalent_joules: f64,
}

impl FleetAccounting {
    /// Accounting for a fleet of devices with the given backbone shape.
    pub fn new(
        energy: EnergyModel,
        dims: &[usize],
        classes: usize,
        channels: usize,
        window_len: usize,
    ) -> Self {
        FleetAccounting {
            energy,
            dims: dims.to_vec(),
            classes,
            channels,
            window_len,
            sessions: 0,
            windows: 0,
            batches: 0,
            compute_joules: 0.0,
            radio_joules: 0.0,
            downlink_bytes: 0,
        }
    }

    /// Record one session deployment: the bundle download is the only
    /// radio transaction an edge session ever costs.
    pub fn record_deploy(&mut self, bundle_bytes: usize) {
        self.sessions += 1;
        self.downlink_bytes += bundle_bytes as u64;
        self.radio_joules += self.energy.radio_joules(bundle_bytes);
    }

    /// Record one executed micro-batch of `batch` windows. FLOPs are the
    /// full per-window pipeline (features + backbone + NCM) — batching
    /// saves wall-clock and allocations, not arithmetic, so energy scales
    /// with windows while `mean_batch_size` captures the serving
    /// efficiency.
    pub fn record_batch(&mut self, batch: usize) {
        if batch == 0 {
            return;
        }
        self.batches += 1;
        self.windows += batch as u64;
        let per_window =
            flops::inference_flops(&self.dims, self.classes, self.channels, self.window_len);
        self.compute_joules += self.energy.compute_joules(per_window * batch as u64);
    }

    /// Fold in an aggregate of `windows` served across `batches`
    /// micro-batches — the shape shard counters report. Equivalent to
    /// replaying the individual [`record_batch`](Self::record_batch)
    /// calls.
    pub fn record_served(&mut self, windows: u64, batches: u64) {
        if windows == 0 {
            return;
        }
        self.batches += batches;
        self.windows += windows;
        let per_window =
            flops::inference_flops(&self.dims, self.classes, self.channels, self.window_len);
        self.compute_joules += self.energy.compute_joules(per_window * windows);
    }

    /// Raw bytes of one serialized window (f32 samples, all channels).
    fn window_bytes(&self) -> usize {
        self.channels * self.window_len * std::mem::size_of::<f32>()
    }

    /// Summarise the fleet's energy position.
    pub fn report(&self) -> FleetEnergyReport {
        let total = self.compute_joules + self.radio_joules;
        let cloud = self.windows as f64 * self.energy.radio_joules(self.window_bytes());
        FleetEnergyReport {
            total_joules: total,
            joules_per_window: if self.windows == 0 {
                0.0
            } else {
                total / self.windows as f64
            },
            mean_batch_size: if self.batches == 0 {
                0.0
            } else {
                self.windows as f64 / self.batches as f64
            },
            cloud_equivalent_joules: cloud,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> FleetAccounting {
        FleetAccounting::new(EnergyModel::lte_phone(), &[80, 128, 64, 32], 5, 22, 120)
    }

    #[test]
    fn empty_fleet_reports_zeroes() {
        let acc = fleet();
        let r = acc.report();
        assert_eq!(r.total_joules, 0.0);
        assert_eq!(r.joules_per_window, 0.0);
        assert_eq!(r.mean_batch_size, 0.0);
        assert_eq!(r.cloud_equivalent_joules, 0.0);
    }

    #[test]
    fn deploys_and_batches_accumulate() {
        let mut acc = fleet();
        for _ in 0..8 {
            acc.record_deploy(2_000_000);
        }
        for _ in 0..100 {
            acc.record_batch(16);
        }
        acc.record_batch(0); // no-op
        assert_eq!(acc.sessions, 8);
        assert_eq!(acc.downlink_bytes, 16_000_000);
        assert_eq!(acc.windows, 1600);
        assert_eq!(acc.batches, 100);
        let r = acc.report();
        assert!((r.mean_batch_size - 16.0).abs() < 1e-12);
        assert!(r.total_joules > 0.0);
        assert!(r.joules_per_window > 0.0);
    }

    #[test]
    fn edge_fleet_beats_cloud_equivalent_at_scale() {
        // 64 sessions, a day's worth of windows each: compute energy for
        // on-device serving stays far under radioing every raw window up
        // over LTE — the Figure-1 asymmetry, fleet-sized.
        let mut acc = fleet();
        for _ in 0..64 {
            acc.record_deploy(2_000_000);
        }
        for _ in 0..(64 * 100) {
            acc.record_batch(10);
        }
        let r = acc.report();
        assert!(
            r.cloud_equivalent_joules > r.total_joules * 10.0,
            "cloud {} J vs edge {} J",
            r.cloud_equivalent_joules,
            r.total_joules
        );
    }

    #[test]
    fn energy_scales_with_windows_not_batching() {
        // Same window count, different batch shapes → same joules.
        let mut coarse = fleet();
        coarse.record_batch(64);
        let mut fine = fleet();
        for _ in 0..64 {
            fine.record_batch(1);
        }
        assert!((coarse.compute_joules - fine.compute_joules).abs() < 1e-9);
        assert!(coarse.report().mean_batch_size > fine.report().mean_batch_size);
    }

    #[test]
    fn record_served_matches_replayed_batches() {
        let mut replay = fleet();
        for _ in 0..10 {
            replay.record_batch(16);
        }
        let mut folded = fleet();
        folded.record_served(160, 10);
        folded.record_served(0, 3); // no windows -> no-op
        assert_eq!(replay.windows, folded.windows);
        assert_eq!(replay.batches, folded.batches);
        assert!((replay.compute_joules - folded.compute_joules).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let mut acc = fleet();
        acc.record_deploy(1_000);
        acc.record_batch(4);
        let json = serde_json::to_string(&acc).unwrap();
        let back: FleetAccounting = serde_json::from_str(&json).unwrap();
        assert_eq!(acc, back);
    }
}
