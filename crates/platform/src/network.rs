//! Parametric wireless-link model.
//!
//! The Cloud-based protocol's latency is dominated by the radio link, so
//! the model captures the pieces that matter at HAR timescales: base RTT,
//! jitter, serialisation delay from finite bandwidth, and packet loss
//! with retransmission.

use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A simulated bidirectional link between Edge and Cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkLink {
    /// Base round-trip time in milliseconds.
    pub base_rtt_ms: f64,
    /// Standard deviation of RTT jitter (ms).
    pub jitter_ms: f64,
    /// Uplink bandwidth in megabits per second.
    pub uplink_mbps: f64,
    /// Downlink bandwidth in megabits per second.
    pub downlink_mbps: f64,
    /// Probability that a request/response exchange must be retransmitted.
    pub loss_prob: f64,
}

impl NetworkLink {
    /// Home/office Wi-Fi.
    pub fn wifi() -> Self {
        NetworkLink {
            base_rtt_ms: 12.0,
            jitter_ms: 3.0,
            uplink_mbps: 50.0,
            downlink_mbps: 100.0,
            loss_prob: 0.005,
        }
    }

    /// Good LTE coverage.
    pub fn lte() -> Self {
        NetworkLink {
            base_rtt_ms: 45.0,
            jitter_ms: 12.0,
            uplink_mbps: 10.0,
            downlink_mbps: 30.0,
            loss_prob: 0.01,
        }
    }

    /// Legacy 3G or weak signal.
    pub fn cellular_3g() -> Self {
        NetworkLink {
            base_rtt_ms: 150.0,
            jitter_ms: 50.0,
            uplink_mbps: 1.0,
            downlink_mbps: 4.0,
            loss_prob: 0.03,
        }
    }

    /// Congested network (stadium / conference demo hall).
    pub fn congested() -> Self {
        NetworkLink {
            base_rtt_ms: 300.0,
            jitter_ms: 120.0,
            uplink_mbps: 0.5,
            downlink_mbps: 1.0,
            loss_prob: 0.08,
        }
    }

    /// Perfect zero-latency link (upper bound for the Cloud protocol).
    pub fn ideal() -> Self {
        NetworkLink {
            base_rtt_ms: 0.0,
            jitter_ms: 0.0,
            uplink_mbps: f64::INFINITY,
            downlink_mbps: f64::INFINITY,
            loss_prob: 0.0,
        }
    }

    /// Pure serialisation delay of `bytes` at `mbps`.
    fn serialization(bytes: usize, mbps: f64) -> f64 {
        if mbps.is_infinite() || mbps <= 0.0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (mbps * 1e6) * 1e3 // ms
    }

    /// Simulate one request/response exchange carrying `up_bytes` to the
    /// Cloud and `down_bytes` back. Returns `(duration, retransmissions)`.
    pub fn round_trip(
        &self,
        up_bytes: usize,
        down_bytes: usize,
        rng: &mut SeededRng,
    ) -> (Duration, u32) {
        let mut retries = 0u32;
        let mut total_ms = 0.0f64;
        loop {
            let jitter = if self.jitter_ms > 0.0 {
                f64::from(rng.normal_with(0.0, self.jitter_ms as f32)).max(-self.base_rtt_ms * 0.5)
            } else {
                0.0
            };
            total_ms += (self.base_rtt_ms + jitter).max(0.0)
                + Self::serialization(up_bytes, self.uplink_mbps)
                + Self::serialization(down_bytes, self.downlink_mbps);
            if self.loss_prob > 0.0 && rng.chance(self.loss_prob) && retries < 5 {
                retries += 1;
                continue;
            }
            break;
        }
        (Duration::from_secs_f64(total_ms / 1e3), retries)
    }

    /// One-way transfer time for `bytes` down the downlink (bundle
    /// deployment cost).
    pub fn download_time(&self, bytes: usize, rng: &mut SeededRng) -> Duration {
        let jitter = if self.jitter_ms > 0.0 {
            f64::from(rng.normal_with(0.0, self.jitter_ms as f32)).abs()
        } else {
            0.0
        };
        let ms = self.base_rtt_ms / 2.0 + jitter + Self::serialization(bytes, self.downlink_mbps);
        Duration::from_secs_f64(ms.max(0.0) / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_instant() {
        let link = NetworkLink::ideal();
        let mut rng = SeededRng::new(1);
        let (d, retries) = link.round_trip(1_000_000, 1_000_000, &mut rng);
        assert_eq!(d, Duration::ZERO);
        assert_eq!(retries, 0);
        assert_eq!(link.download_time(10_000_000, &mut rng), Duration::ZERO);
    }

    #[test]
    fn rtt_ordering_matches_presets() {
        let mut rng = SeededRng::new(2);
        let mut mean_rtt = |link: NetworkLink| {
            let mut rng = rng.split("x");
            let n = 200;
            (0..n)
                .map(|_| link.round_trip(10_560, 64, &mut rng).0.as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        let wifi = mean_rtt(NetworkLink::wifi());
        let lte = mean_rtt(NetworkLink::lte());
        let g3 = mean_rtt(NetworkLink::cellular_3g());
        let congested = mean_rtt(NetworkLink::congested());
        assert!(wifi < lte && lte < g3 && g3 < congested);
        // Wi-Fi round trip for one window is tens of ms.
        assert!(wifi > 0.005 && wifi < 0.05, "wifi {wifi}");
    }

    #[test]
    fn bandwidth_dominates_large_payloads() {
        // 1 MB over 1 Mbps uplink takes ~8 s of serialisation.
        let link = NetworkLink {
            base_rtt_ms: 10.0,
            jitter_ms: 0.0,
            uplink_mbps: 1.0,
            downlink_mbps: 100.0,
            loss_prob: 0.0,
        };
        let mut rng = SeededRng::new(3);
        let (d, _) = link.round_trip(1_000_000, 64, &mut rng);
        assert!(d.as_secs_f64() > 7.9 && d.as_secs_f64() < 8.3, "{d:?}");
    }

    #[test]
    fn loss_inflates_latency_via_retransmission() {
        let lossless = NetworkLink {
            loss_prob: 0.0,
            jitter_ms: 0.0,
            ..NetworkLink::lte()
        };
        let lossy = NetworkLink {
            loss_prob: 0.5,
            jitter_ms: 0.0,
            ..NetworkLink::lte()
        };
        let mut rng1 = SeededRng::new(4);
        let mut rng2 = SeededRng::new(4);
        let n = 300;
        let base: f64 = (0..n)
            .map(|_| lossless.round_trip(1000, 64, &mut rng1).0.as_secs_f64())
            .sum();
        let inflated: f64 = (0..n)
            .map(|_| lossy.round_trip(1000, 64, &mut rng2).0.as_secs_f64())
            .sum();
        assert!(
            inflated > base * 1.5,
            "lossy {inflated} vs lossless {base}"
        );
    }

    #[test]
    fn retransmissions_bounded() {
        let pathological = NetworkLink {
            loss_prob: 1.0,
            ..NetworkLink::wifi()
        };
        let mut rng = SeededRng::new(5);
        let (_, retries) = pathological.round_trip(100, 100, &mut rng);
        assert_eq!(retries, 5);
    }

    #[test]
    fn download_time_scales_with_size() {
        let link = NetworkLink {
            jitter_ms: 0.0,
            ..NetworkLink::lte()
        };
        let mut rng = SeededRng::new(6);
        let small = link.download_time(1_000, &mut rng);
        let large = link.download_time(5_000_000, &mut rng);
        assert!(large > small * 10);
        // A 5 MB bundle over LTE downloads in seconds, not minutes —
        // the Cloud→Edge deployment cost the paper accepts once.
        assert!(large.as_secs_f64() < 5.0, "{large:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let link = NetworkLink::lte();
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..50 {
            assert_eq!(
                link.round_trip(500, 64, &mut a),
                link.round_trip(500, 64, &mut b)
            );
        }
    }
}
