//! The two HAR deployment protocols of Figure 1.
//!
//! *Cloud-based* (left of the figure): the Edge device captures a window
//! and ships the raw samples to a Cloud classifier; a label comes back.
//! Constant Edge↔Cloud traffic, latency dominated by the link, and every
//! window of user data leaves the device.
//!
//! *Edge-based* (right, MAGNETO): the only transfer ever is the initial
//! Cloud→Edge bundle; inference and learning run locally.
//!
//! Both protocols use the *same* trained model so the comparison isolates
//! deployment: latency, uplink bytes (privacy) and energy.

use crate::device::DeviceModel;
use crate::energy::EnergyModel;
use crate::flops;
use crate::network::NetworkLink;
use magneto_core::ncm::NcmClassifier;
use magneto_core::privacy::PrivacyLedger;
use magneto_core::ResidentModel;
use magneto_core::{CoreError, Result};
use magneto_dsp::PreprocessingPipeline;
use magneto_tensor::SeededRng;
use std::time::Duration;

/// Size of the classification response message (label id + confidence +
/// framing).
const RESPONSE_BYTES: usize = 64;

/// Outcome of one protocol inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// Predicted activity label.
    pub label: String,
    /// Classifier confidence.
    pub confidence: f32,
    /// End-to-end latency as experienced by the user.
    pub latency: Duration,
    /// Bytes of user data that left the device for this inference.
    pub uplink_bytes: usize,
    /// Device-side energy consumed (compute + radio), joules.
    pub energy_joules: f64,
}

/// A HAR deployment protocol.
pub trait HarProtocol {
    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// Classify one raw channel-major window.
    ///
    /// # Errors
    /// Propagates classification failures.
    fn infer_window(&mut self, channels: &[Vec<f32>]) -> Result<ProtocolOutcome>;

    /// The privacy ledger accumulated so far.
    fn ledger(&self) -> &PrivacyLedger;
}

/// Shared classification core (identical across protocols by design).
/// Works at whatever precision the model is resident at.
struct Classifier {
    pipeline: PreprocessingPipeline,
    model: ResidentModel,
    ncm: NcmClassifier,
}

impl Classifier {
    fn classify(&self, channels: &[Vec<f32>]) -> Result<(String, f32)> {
        let features = self.pipeline.process(channels)?;
        let embedding = self.model.embed_one(&features)?;
        let decision = self.ncm.classify(&embedding)?;
        Ok((decision.label, decision.confidence))
    }

    fn inference_flops(&self, channels: usize, window_len: usize) -> u64 {
        flops::inference_flops(
            &self.model.dims(),
            self.ncm.num_classes(),
            channels,
            window_len,
        )
    }
}

/// MAGNETO's Edge-based protocol: everything local.
pub struct EdgeProtocol {
    classifier: Classifier,
    device: DeviceModel,
    energy: EnergyModel,
    ledger: PrivacyLedger,
}

impl EdgeProtocol {
    /// Build from trained components and a device class. Records the
    /// one-time bundle download in the ledger.
    pub fn new(
        pipeline: PreprocessingPipeline,
        model: impl Into<ResidentModel>,
        ncm: NcmClassifier,
        device: DeviceModel,
        energy: EnergyModel,
        bundle_bytes: usize,
    ) -> Self {
        let mut ledger = PrivacyLedger::edge_only();
        ledger.record_download(bundle_bytes, "initial edge bundle");
        EdgeProtocol {
            classifier: Classifier {
                pipeline,
                model: model.into(),
                ncm,
            },
            device,
            energy,
            ledger,
        }
    }
}

impl HarProtocol for EdgeProtocol {
    fn name(&self) -> &'static str {
        "edge"
    }

    fn infer_window(&mut self, channels: &[Vec<f32>]) -> Result<ProtocolOutcome> {
        let window_len = channels.first().map_or(0, Vec::len);
        let (label, confidence) = self.classifier.classify(channels)?;
        let flops = self.classifier.inference_flops(channels.len(), window_len);
        let latency = self.device.compute_time(flops);
        let energy_joules = self.energy.compute_joules(flops);
        Ok(ProtocolOutcome {
            label,
            confidence,
            latency,
            uplink_bytes: 0,
            energy_joules,
        })
    }

    fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }
}

/// The conventional Cloud-based protocol: raw windows go up, labels come
/// back.
pub struct CloudProtocol {
    classifier: Classifier,
    link: NetworkLink,
    server: DeviceModel,
    energy: EnergyModel,
    ledger: PrivacyLedger,
    rng: SeededRng,
}

impl CloudProtocol {
    /// Build from trained components (hosted on the Cloud side), a link
    /// and the device's energy model.
    pub fn new(
        pipeline: PreprocessingPipeline,
        model: impl Into<ResidentModel>,
        ncm: NcmClassifier,
        link: NetworkLink,
        energy: EnergyModel,
        rng: SeededRng,
    ) -> Self {
        CloudProtocol {
            classifier: Classifier {
                pipeline,
                model: model.into(),
                ncm,
            },
            link,
            server: DeviceModel::cloud_server(),
            energy,
            ledger: PrivacyLedger::allow_uplink(),
            rng,
        }
    }
}

impl HarProtocol for CloudProtocol {
    fn name(&self) -> &'static str {
        "cloud"
    }

    fn infer_window(&mut self, channels: &[Vec<f32>]) -> Result<ProtocolOutcome> {
        let window_len = channels.first().map_or(0, Vec::len);
        let upload_bytes: usize = channels.iter().map(|c| c.len() * 4).sum();
        // The user's raw window leaves the device — count it.
        self.ledger.try_upload(upload_bytes, "raw sensor window")?;
        let (label, confidence) = self.classifier.classify(channels)?;
        let server_flops = self.classifier.inference_flops(channels.len(), window_len);
        let (link_time, _retries) =
            self.link
                .round_trip(upload_bytes, RESPONSE_BYTES, &mut self.rng);
        let latency = link_time + self.server.compute_time(server_flops);
        // Device-side energy: radio only (compute happens on the server).
        let energy_joules = self.energy.radio_joules(upload_bytes + RESPONSE_BYTES);
        Ok(ProtocolOutcome {
            label,
            confidence,
            latency,
            uplink_bytes: upload_bytes,
            energy_joules,
        })
    }

    fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }
}

/// Convenience: run `windows` through a protocol, returning outcomes.
///
/// # Errors
/// Propagates the first inference failure.
pub fn run_protocol(
    protocol: &mut dyn HarProtocol,
    windows: &[Vec<Vec<f32>>],
) -> Result<Vec<ProtocolOutcome>> {
    windows.iter().map(|w| protocol.infer_window(w)).collect()
}

/// Guard that the error type stays convertible (compile-time assertion
/// used by downstream code).
#[allow(dead_code)]
fn _assert_error_compat(e: CoreError) -> CoreError {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_core::cloud::{CloudConfig, CloudInitializer};
    use magneto_core::incremental::ModelState;
    use magneto_sensors::{GeneratorConfig, SensorDataset};
    use magneto_tensor::vector::DistanceMetric;

    fn trained_parts() -> (PreprocessingPipeline, ResidentModel, NcmClassifier, usize) {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap();
        let bytes = bundle.total_bytes();
        let state = ModelState::assemble(
            bundle.model,
            bundle.support_set,
            bundle.registry,
            DistanceMetric::Euclidean,
        )
        .unwrap();
        (bundle.pipeline, state.model, state.ncm, bytes)
    }

    fn test_windows(n: usize) -> Vec<Vec<Vec<f32>>> {
        let ds = SensorDataset::generate(
            &GeneratorConfig {
                windows_per_class: n,
                ..GeneratorConfig::tiny()
            },
            7,
        );
        ds.windows.into_iter().map(|w| w.channels).collect()
    }

    #[test]
    fn both_protocols_agree_on_labels() {
        let (pipeline, model, ncm, bytes) = trained_parts();
        let mut edge = EdgeProtocol::new(
            pipeline.clone(),
            model.clone(),
            ncm.clone(),
            DeviceModel::budget_phone(),
            EnergyModel::lte_phone(),
            bytes,
        );
        let mut cloud = CloudProtocol::new(
            pipeline,
            model,
            ncm,
            NetworkLink::lte(),
            EnergyModel::lte_phone(),
            SeededRng::new(2),
        );
        for w in test_windows(2) {
            let e = edge.infer_window(&w).unwrap();
            let c = cloud.infer_window(&w).unwrap();
            assert_eq!(e.label, c.label, "same model must agree");
            assert_eq!(e.confidence, c.confidence);
        }
    }

    #[test]
    fn edge_has_zero_uplink_cloud_leaks_everything() {
        let (pipeline, model, ncm, bytes) = trained_parts();
        let mut edge = EdgeProtocol::new(
            pipeline.clone(),
            model.clone(),
            ncm.clone(),
            DeviceModel::budget_phone(),
            EnergyModel::lte_phone(),
            bytes,
        );
        let mut cloud = CloudProtocol::new(
            pipeline,
            model,
            ncm,
            NetworkLink::wifi(),
            EnergyModel::wifi_phone(),
            SeededRng::new(3),
        );
        let windows = test_windows(2);
        for w in &windows {
            assert_eq!(edge.infer_window(w).unwrap().uplink_bytes, 0);
            let c = cloud.infer_window(w).unwrap();
            assert_eq!(c.uplink_bytes, 22 * 120 * 4);
        }
        edge.ledger().assert_no_uplink();
        assert_eq!(
            cloud.ledger().uplink_bytes(),
            windows.len() * 22 * 120 * 4
        );
    }

    #[test]
    fn edge_latency_beats_cloud_on_realistic_links() {
        let (pipeline, model, ncm, bytes) = trained_parts();
        let mut edge = EdgeProtocol::new(
            pipeline.clone(),
            model.clone(),
            ncm.clone(),
            DeviceModel::budget_phone(),
            EnergyModel::lte_phone(),
            bytes,
        );
        for link in [NetworkLink::wifi(), NetworkLink::lte(), NetworkLink::cellular_3g()] {
            let mut cloud = CloudProtocol::new(
                pipeline.clone(),
                model.clone(),
                ncm.clone(),
                link,
                EnergyModel::lte_phone(),
                SeededRng::new(4),
            );
            let windows = test_windows(1);
            let edge_lat: f64 = windows
                .iter()
                .map(|w| edge.infer_window(w).unwrap().latency.as_secs_f64())
                .sum();
            let cloud_lat: f64 = windows
                .iter()
                .map(|w| cloud.infer_window(w).unwrap().latency.as_secs_f64())
                .sum();
            assert!(
                edge_lat < cloud_lat,
                "link {:?}: edge {edge_lat}s vs cloud {cloud_lat}s",
                link.base_rtt_ms
            );
        }
    }

    #[test]
    fn cloud_wins_latency_only_on_ideal_link_with_slow_device() {
        // Sanity check that the comparison is not rigged: with a
        // zero-latency link and a very slow wearable, offloading can win.
        let (pipeline, model, ncm, bytes) = trained_parts();
        let glacial = DeviceModel {
            gflops: 0.001,
            ..DeviceModel::wearable()
        };
        let mut edge = EdgeProtocol::new(
            pipeline.clone(),
            model.clone(),
            ncm.clone(),
            glacial,
            EnergyModel::wifi_phone(),
            bytes,
        );
        let mut cloud = CloudProtocol::new(
            pipeline,
            model,
            ncm,
            NetworkLink::ideal(),
            EnergyModel::wifi_phone(),
            SeededRng::new(5),
        );
        let w = &test_windows(1)[0];
        let e = edge.infer_window(w).unwrap();
        let c = cloud.infer_window(w).unwrap();
        assert!(c.latency < e.latency, "crossover exists: {c:?} vs {e:?}");
    }

    #[test]
    fn edge_energy_beats_cloud_on_lte() {
        let (pipeline, model, ncm, bytes) = trained_parts();
        let mut edge = EdgeProtocol::new(
            pipeline.clone(),
            model.clone(),
            ncm.clone(),
            DeviceModel::budget_phone(),
            EnergyModel::lte_phone(),
            bytes,
        );
        let mut cloud = CloudProtocol::new(
            pipeline,
            model,
            ncm,
            NetworkLink::lte(),
            EnergyModel::lte_phone(),
            SeededRng::new(6),
        );
        let w = &test_windows(1)[0];
        let e = edge.infer_window(w).unwrap();
        let c = cloud.infer_window(w).unwrap();
        assert!(
            c.energy_joules > e.energy_joules * 10.0,
            "cloud {} J vs edge {} J",
            c.energy_joules,
            e.energy_joules
        );
    }

    #[test]
    fn run_protocol_helper() {
        let (pipeline, model, ncm, bytes) = trained_parts();
        let mut edge = EdgeProtocol::new(
            pipeline,
            model,
            ncm,
            DeviceModel::flagship_phone(),
            EnergyModel::wifi_phone(),
            bytes,
        );
        let windows = test_windows(1);
        let outcomes = run_protocol(&mut edge, &windows).unwrap();
        assert_eq!(outcomes.len(), windows.len());
        assert_eq!(edge.name(), "edge");
    }
}
