//! Compute-vs-radio energy model.
//!
//! §1 lists energy as an edge constraint. The asymmetry that makes the
//! Edge protocol attractive is that *radio* is expensive: transmitting a
//! byte over cellular costs orders of magnitude more energy than
//! computing a FLOP, so shipping raw windows to the Cloud burns battery
//! even though the phone "does no work".

use serde::{Deserialize, Serialize};

/// Energy cost model for an edge device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Joules per GFLOP of on-device compute.
    pub joules_per_gflop: f64,
    /// Joules per transmitted/received byte (radio active energy).
    pub radio_joules_per_byte: f64,
    /// Fixed joules per radio transaction (ramp-up/tail energy — the
    /// dominant term for small payloads on cellular).
    pub radio_tail_joules: f64,
}

impl EnergyModel {
    /// Typical smartphone on Wi-Fi.
    pub fn wifi_phone() -> Self {
        EnergyModel {
            joules_per_gflop: 0.7,
            radio_joules_per_byte: 6e-8,
            radio_tail_joules: 0.02,
        }
    }

    /// Typical smartphone on LTE (expensive radio tail).
    pub fn lte_phone() -> Self {
        EnergyModel {
            joules_per_gflop: 0.7,
            radio_joules_per_byte: 4e-7,
            radio_tail_joules: 0.25,
        }
    }

    /// Energy for `flops` of local compute.
    pub fn compute_joules(&self, flops: u64) -> f64 {
        flops as f64 / 1e9 * self.joules_per_gflop
    }

    /// Energy for one radio transaction moving `bytes`.
    pub fn radio_joules(&self, bytes: usize) -> f64 {
        self.radio_tail_joules + bytes as f64 * self.radio_joules_per_byte
    }
}

/// Simple battery accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Total capacity in joules (a 4000 mAh phone battery ≈ 55 kJ).
    pub capacity_joules: f64,
    /// Energy consumed so far.
    pub used_joules: f64,
}

impl Battery {
    /// A typical 4000 mAh / 3.85 V phone battery.
    pub fn phone() -> Self {
        Battery {
            capacity_joules: 55_000.0,
            used_joules: 0.0,
        }
    }

    /// Consume energy (saturating at capacity).
    pub fn drain(&mut self, joules: f64) {
        self.used_joules = (self.used_joules + joules.max(0.0)).min(self.capacity_joules);
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        1.0 - self.used_joules / self.capacity_joules
    }

    /// `true` once fully drained.
    pub fn is_empty(&self) -> bool {
        self.used_joules >= self.capacity_joules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flops;

    #[test]
    fn radio_tail_dominates_small_payloads_on_lte() {
        let m = EnergyModel::lte_phone();
        let one_window = m.radio_joules(10_560);
        assert!(one_window > 0.2, "window tx {one_window} J");
        // The tail is > 95% of the cost for a single window.
        assert!(m.radio_tail_joules / one_window > 0.95);
    }

    #[test]
    fn edge_inference_energy_beats_lte_upload() {
        // The asymmetry behind Figure 1's energy claim: computing the
        // whole paper-backbone inference locally costs far less than
        // radioing the raw window to the Cloud over LTE.
        let m = EnergyModel::lte_phone();
        let infer = m.compute_joules(flops::inference_flops(
            &magneto_nn::PAPER_BACKBONE,
            5,
            22,
            120,
        ));
        let upload = m.radio_joules(10_560);
        assert!(
            upload > infer * 50.0,
            "upload {upload} J vs inference {infer} J"
        );
    }

    #[test]
    fn wifi_radio_cheaper_than_lte() {
        let wifi = EnergyModel::wifi_phone().radio_joules(10_560);
        let lte = EnergyModel::lte_phone().radio_joules(10_560);
        assert!(wifi < lte);
    }

    #[test]
    fn compute_joules_linear() {
        let m = EnergyModel::wifi_phone();
        assert!((m.compute_joules(2_000_000_000) - 1.4).abs() < 1e-9);
        assert_eq!(m.compute_joules(0), 0.0);
    }

    #[test]
    fn battery_accounting() {
        let mut b = Battery::phone();
        assert!((b.remaining_fraction() - 1.0).abs() < 1e-12);
        b.drain(5_500.0);
        assert!((b.remaining_fraction() - 0.9).abs() < 1e-9);
        assert!(!b.is_empty());
        b.drain(1e9);
        assert!(b.is_empty());
        assert_eq!(b.remaining_fraction(), 0.0);
        // Negative drains are ignored.
        let mut c = Battery::phone();
        c.drain(-100.0);
        assert_eq!(c.used_joules, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = EnergyModel::lte_phone();
        let json = serde_json::to_string(&m).unwrap();
        let back: EnergyModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
