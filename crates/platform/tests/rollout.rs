//! Rollout lifecycle integration tests, including the Definition-1
//! property test: whatever the wave layout or cohort size, a rollout
//! never uploads a byte and never ships a downlink payload over the
//! 5 MB budget.

use magneto_core::privacy::{Direction, PrivacyLedger};
use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, Lineage, ModelVersion, Precision,
};
use magneto_fleet::{Fleet, FleetConfig, FleetReply, SessionId};
use magneto_platform::rollout::DOWNLINK_BUDGET_BYTES;
use magneto_platform::{EnergyModel, FleetAccounting, Rollout, RolloutConfig, RolloutStatus};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use magneto_tensor::SeededRng;
use proptest::prelude::*;
use std::sync::mpsc::Receiver;
use std::sync::OnceLock;

/// The fleet's current base: the seed bundle stamped as version 1.
fn bundle_v1() -> &'static EdgeBundle {
    static BUNDLE: OnceLock<EdgeBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
        CloudInitializer::new(CloudConfig::fast_demo())
            .pretrain(&corpus)
            .unwrap()
            .0
            .with_lineage(Lineage::root(1))
    })
}

/// A healthy successor: same weights, new version (a no-op retrain).
fn bundle_v2() -> EdgeBundle {
    let v1 = bundle_v1();
    v1.clone().with_lineage(v1.child_lineage())
}

/// A regressed successor: the support classes are rotated one label
/// over, so every base prototype answers for the wrong activity. The
/// lineage is perfectly valid — only the canary gate can catch this.
fn bundle_v2_regressed() -> EdgeBundle {
    let v1 = bundle_v1();
    let mut bad = v1.clone();
    let labels: Vec<String> = bad.registry.labels().to_vec();
    let mut rng = SeededRng::new(99);
    let samples: Vec<Vec<Vec<f32>>> = labels
        .iter()
        .map(|l| v1.support_set.samples(l).unwrap().to_vec())
        .collect();
    for (i, label) in labels.iter().enumerate() {
        let rotated = &samples[(i + 1) % samples.len()];
        bad.support_set.set_class(label, rotated, &mut rng).unwrap();
    }
    bad.with_lineage(v1.child_lineage())
}

/// Cloud-owned probe windows with expected labels (synthesized by the
/// operator — not user recordings, so grading them uploads nothing).
fn probes(n: usize) -> Vec<(Vec<Vec<f32>>, String)> {
    let ds = SensorDataset::generate(
        &GeneratorConfig {
            windows_per_class: n,
            ..GeneratorConfig::tiny()
        },
        5,
    );
    ds.windows
        .into_iter()
        .map(|w| (w.channels, w.label))
        .collect()
}

fn calibration_windows(count: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut pool = StreamPool::new(1, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), seed);
    (0..count).map(|_| pool.next_round().remove(0)).collect()
}

fn accounting() -> FleetAccounting {
    FleetAccounting::new(EnergyModel::lte_phone(), &[80, 128, 64, 32], 5, 22, 120)
}

/// Register `n` delta sessions on v1, calibrating every third one so
/// the cohort mixes personalized and pristine devices.
fn cohort(fleet: &Fleet, n: usize) -> Vec<(SessionId, Receiver<FleetReply>)> {
    let key = fleet.register_base(bundle_v1(), Precision::F32).unwrap();
    (0..n)
        .map(|i| {
            let (id, rx) = fleet.register_from_base(key, Precision::F32).unwrap();
            if i % 3 == 0 {
                fleet
                    .calibrate_session(id, "user_move", &calibration_windows(2, 100 + i as u64))
                    .unwrap();
            }
            (id, rx)
        })
        .collect()
}

#[test]
fn healthy_rollout_migrates_every_wave() {
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let sessions = cohort(&fleet, 12);
    let v2 = bundle_v2();
    let mut acc = accounting();
    let mut ledger = PrivacyLedger::edge_only();
    let report = Rollout::new(RolloutConfig::default())
        .unwrap()
        .run(
            &mut fleet,
            bundle_v1(),
            &v2,
            &sessions,
            &probes(2),
            Precision::F32,
            &mut acc,
            &mut ledger,
        )
        .unwrap();

    assert_eq!(report.status, RolloutStatus::Completed);
    assert_eq!(report.from_version, ModelVersion(1));
    assert_eq!(report.to_version, ModelVersion(2));
    assert_eq!(
        report.waves.iter().map(|w| w.sessions).sum::<usize>(),
        sessions.len()
    );
    assert_eq!(report.waves.iter().map(|w| w.rolled_back).sum::<usize>(), 0);
    // The upgrade travelled as a diff, not a full bundle: only the
    // lineage section changed, so the diff is a fraction of the bundle.
    assert!(
        report.diff_bytes * 10 < report.full_bundle_bytes,
        "diff {} vs full {}",
        report.diff_bytes,
        report.full_bundle_bytes
    );

    // Every session now serves v2; calibrated deltas were re-pinned.
    for (id, _) in &sessions {
        assert_eq!(fleet.session_version(*id).unwrap(), ModelVersion(2));
    }
    assert_eq!(
        fleet.session_delta(sessions[0].0).unwrap().base_version(),
        Some(ModelVersion(2))
    );

    // Satellite: per-wave downlink bytes flowed into FleetAccounting.
    assert_eq!(acc.sessions, sessions.len());
    assert_eq!(
        acc.downlink_bytes,
        (report.diff_bytes * sessions.len()) as u64
    );
    fleet.shutdown();
}

#[test]
fn regressed_canary_halts_and_restores_version_n() {
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let sessions = cohort(&fleet, 10);
    let key1 = fleet.register_base(bundle_v1(), Precision::F32).unwrap();
    let before: Vec<Vec<u8>> = sessions
        .iter()
        .map(|(id, _)| fleet.session_delta(*id).unwrap().to_bytes())
        .collect();

    let bad = bundle_v2_regressed();
    let mut acc = accounting();
    let mut ledger = PrivacyLedger::edge_only();
    let config = RolloutConfig {
        wave_fractions: vec![0.2, 0.8],
        max_accuracy_drop: 0.10,
        ..RolloutConfig::default()
    };
    let report = Rollout::new(config)
        .unwrap()
        .run(
            &mut fleet,
            bundle_v1(),
            &bad,
            &sessions,
            &probes(2),
            Precision::F32,
            &mut acc,
            &mut ledger,
        )
        .unwrap();

    // The canary gate tripped: wave 0 only, later waves never shipped.
    match report.status {
        RolloutStatus::Halted { wave, restored, .. } => {
            assert_eq!(wave, 0);
            assert_eq!(restored, report.waves[0].sessions);
        }
        RolloutStatus::Completed => panic!("regression must halt the rollout"),
    }
    assert_eq!(report.waves.len(), 1);
    assert!(report.waves[0].accuracy < report.baseline_accuracy);
    // Only the canary wave's diffs were ever shipped.
    assert_eq!(
        acc.downlink_bytes,
        (report.diff_bytes * report.waves[0].sessions) as u64
    );

    // Every device — canary included — is back on version N with its
    // exact pre-rollout delta bytes and the old batching key.
    for ((id, _), snapshot) in sessions.iter().zip(&before) {
        assert_eq!(fleet.session_version(*id).unwrap(), ModelVersion(1));
        assert_eq!(fleet.session_key(*id).unwrap(), key1);
        assert_eq!(&fleet.session_delta(*id).unwrap().to_bytes(), snapshot);
    }
    fleet.shutdown();
}

#[test]
fn lineage_violations_are_rejected_before_any_shipping() {
    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let sessions = cohort(&fleet, 3);
    let mut acc = accounting();
    let mut ledger = PrivacyLedger::edge_only();
    let rollout = Rollout::new(RolloutConfig::default()).unwrap();

    // No lineage at all.
    let unversioned = {
        let mut b = bundle_v1().clone();
        b.lineage = None;
        b
    };
    // A "successor" claiming to be a root.
    let fake_root = bundle_v1().clone().with_lineage(Lineage::root(9));
    for bad in [unversioned, fake_root] {
        let err = rollout
            .run(
                &mut fleet,
                bundle_v1(),
                &bad,
                &sessions,
                &probes(1),
                Precision::F32,
                &mut acc,
                &mut ledger,
            )
            .unwrap_err();
        assert!(
            err.to_string().contains("lineage"),
            "wrong error: {err}"
        );
    }
    // Nothing was shipped or recorded.
    assert_eq!(acc.downlink_bytes, 0);
    assert!(ledger.records().is_empty());
    fleet.shutdown();
}

// ---------------------------------------------------------------------
// Definition 1 as a property: across wave layouts and cohort sizes, a
// rollout records zero uplink and every downlink payload ≤ 5 MB.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn definition_1_holds_for_any_rollout_shape(
        cohort_size in 2usize..6,
        canary_fraction in 0.1f64..0.5,
        regressed in any::<bool>(),
    ) {
        let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
        let sessions = cohort(&fleet, cohort_size);
        let target = if regressed {
            bundle_v2_regressed()
        } else {
            bundle_v2()
        };
        let mut acc = accounting();
        let mut ledger = PrivacyLedger::edge_only();
        let config = RolloutConfig {
            wave_fractions: vec![canary_fraction, 1.0 - canary_fraction],
            ..RolloutConfig::default()
        };
        let report = Rollout::new(config)
            .unwrap()
            .run(
                &mut fleet,
                bundle_v1(),
                &target,
                &sessions,
                &probes(1),
                Precision::F32,
                &mut acc,
                &mut ledger,
            )
            .unwrap();

        // First half: no user-derived byte ever travelled Edge → Cloud.
        prop_assert!(ledger.check_no_uplink().is_ok());
        prop_assert_eq!(ledger.uplink_bytes(), 0);
        // Second half: every downlink payload — including version
        // migration diffs — fits the paper's 5 MB budget.
        prop_assert!(ledger.check_downlink_budget(DOWNLINK_BUDGET_BYTES).is_ok());
        for r in ledger.records() {
            prop_assert_eq!(r.direction, Direction::CloudToEdge);
            prop_assert!(r.bytes <= DOWNLINK_BUDGET_BYTES);
        }
        // Ledger and accounting agree on what was shipped.
        prop_assert_eq!(ledger.downlink_bytes() as u64, acc.downlink_bytes);
        let shipped: u64 = report.waves.iter().map(|w| w.downlink_bytes).sum();
        prop_assert_eq!(shipped, acc.downlink_bytes);
        fleet.shutdown();
    }
}
