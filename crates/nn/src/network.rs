//! The MLP backbone.
//!
//! A stack of [`Dense`] layers with ReLU between hidden layers and a
//! linear embedding output, mirroring the paper's
//! `[1024×512×128×64×128]` fully-connected design on 80 input features.

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::{Dense, DenseCache, DenseGrad};
use crate::Result;
use magneto_tensor::{Matrix, SeededRng, Workspace};
use serde::{Deserialize, Serialize};

/// A multi-layer perceptron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Cached per-layer forward state for a whole network.
#[derive(Debug, Clone, Default)]
pub struct ForwardCache {
    caches: Vec<DenseCache>,
    /// The network output for this batch.
    pub output: Matrix,
}

impl ForwardCache {
    /// An empty cache, ready to be filled by
    /// [`Mlp::forward_cached_into`].
    pub fn new() -> Self {
        ForwardCache::default()
    }
}

/// Per-layer gradients for a whole network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Gradients {
    /// One gradient per layer, input-side first.
    pub layers: Vec<DenseGrad>,
}

impl Gradients {
    /// Zero gradients shaped like `net`.
    pub fn zeros_like(net: &Mlp) -> Self {
        Gradients {
            layers: net.layers.iter().map(DenseGrad::zeros_like).collect(),
        }
    }

    /// `self += other`.
    ///
    /// # Errors
    /// Layer-count or shape mismatch.
    pub fn accumulate(&mut self, other: &Gradients) -> Result<()> {
        if self.layers.len() != other.layers.len() {
            return Err(NnError::InvalidBatch(format!(
                "gradient layer count mismatch: {} vs {}",
                self.layers.len(),
                other.layers.len()
            )));
        }
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            a.accumulate(b)?;
        }
        Ok(())
    }

    /// Scale all gradients in place.
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.layers {
            g.scale(s);
        }
    }

    /// Largest absolute gradient entry (divergence guard / clipping).
    pub fn max_abs(&self) -> f32 {
        self.layers.iter().fold(0.0f32, |m, g| m.max(g.max_abs()))
    }

    /// Clip every entry to `[-limit, limit]` (training stability on tiny
    /// on-device batches).
    pub fn clip(&mut self, limit: f32) {
        for g in &mut self.layers {
            g.dw.map_inplace(|v| v.clamp(-limit, limit));
            for b in &mut g.db {
                *b = b.clamp(-limit, limit);
            }
        }
    }
}

impl Mlp {
    /// Build an MLP with the given layer widths (`dims[0]` = input
    /// features, `dims.last()` = embedding size). Hidden layers are ReLU;
    /// the output layer is linear.
    ///
    /// # Errors
    /// [`NnError::InvalidArchitecture`] for fewer than two dims or a zero
    /// width.
    pub fn new(dims: &[usize], rng: &mut SeededRng) -> Result<Self> {
        if dims.len() < 2 {
            return Err(NnError::InvalidArchitecture(format!(
                "need at least input and output dims, got {dims:?}"
            )));
        }
        if dims.contains(&0) {
            return Err(NnError::InvalidArchitecture(format!(
                "zero-width layer in {dims:?}"
            )));
        }
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, rng));
        }
        Ok(Mlp { layers })
    }

    /// The paper's backbone on 80 features.
    ///
    /// # Errors
    /// Never fails for the fixed dims; kept fallible for signature
    /// uniformity.
    pub fn paper_backbone(rng: &mut SeededRng) -> Result<Self> {
        Mlp::new(&crate::PAPER_BACKBONE, rng)
    }

    /// Assemble an MLP from pre-built layers (deserialisation,
    /// dequantisation).
    ///
    /// # Errors
    /// [`NnError::InvalidArchitecture`] when `layers` is empty or
    /// consecutive layer dims do not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self> {
        if layers.is_empty() {
            return Err(NnError::InvalidArchitecture("no layers".into()));
        }
        for w in layers.windows(2) {
            if w[0].out_dim() != w[1].in_dim() {
                return Err(NnError::InvalidArchitecture(format!(
                    "layer chain break: {} -> {}",
                    w[0].out_dim(),
                    w[1].in_dim()
                )));
            }
        }
        Ok(Mlp { layers })
    }

    /// Layer widths, input first.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        dims.push(self.layers[0].in_dim());
        dims.extend(self.layers.iter().map(Dense::out_dim));
        dims
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Embedding (output) dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow the layers (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutably borrow the layers (optimisers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Size of the parameters in bytes at f32 precision.
    pub fn param_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Inference forward pass (no caches).
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::default();
        let mut ws = Workspace::new();
        self.forward_into(x, &mut out, &mut ws)?;
        Ok(out)
    }

    /// Inference forward pass writing the embedding batch into `out`,
    /// ping-ponging the hidden activations between two workspace buffers
    /// so the whole pass allocates nothing once `ws` is warm.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix, ws: &mut Workspace) -> Result<()> {
        let exec = ws.exec().clone();
        forward_layers(self.layers.len(), x, out, ws, |i, src, dst, _ws| {
            self.layers[i].infer_into_exec(src, dst, &exec)
        })
    }

    /// Embed a single feature vector.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_one(&self, features: &[f32]) -> Result<Vec<f32>> {
        let out = self.forward(&Matrix::from_row(features))?;
        Ok(out.into_vec())
    }

    /// Training forward pass, caching layer state.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn forward_cached(&self, x: &Matrix) -> Result<ForwardCache> {
        let mut cache = ForwardCache::new();
        let mut ws = Workspace::new();
        self.forward_cached_into(x, &mut cache, &mut ws)?;
        Ok(cache)
    }

    /// Training forward pass reusing `cache`'s per-layer matrices and
    /// drawing hidden-activation scratch from `ws`.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn forward_cached_into(
        &self,
        x: &Matrix,
        cache: &mut ForwardCache,
        ws: &mut Workspace,
    ) -> Result<()> {
        cache.caches.resize_with(self.layers.len(), DenseCache::default);
        let exec = ws.exec().clone();
        let mut h = ws.take(0, 0);
        let mut result = Ok(());
        for (i, (layer, lc)) in self.layers.iter().zip(cache.caches.iter_mut()).enumerate() {
            if i == 0 {
                result = layer.forward_into_exec(x, lc, &mut h, &exec);
            } else {
                let mut out = ws.take(0, 0);
                result = layer.forward_into_exec(&h, lc, &mut out, &exec);
                ws.give(std::mem::replace(&mut h, out));
            }
            if result.is_err() {
                break;
            }
        }
        if result.is_ok() {
            std::mem::swap(&mut cache.output, &mut h);
        }
        ws.give(h);
        result
    }

    /// Backward pass from `∂L/∂output`; returns gradients for every layer.
    ///
    /// # Errors
    /// Shape mismatch between cache and upstream gradient.
    pub fn backward(&self, cache: &ForwardCache, grad_output: &Matrix) -> Result<Gradients> {
        let mut grads = Gradients { layers: Vec::new() };
        let mut ws = Workspace::new();
        self.backward_into(cache, grad_output, &mut grads, &mut ws)?;
        Ok(grads)
    }

    /// Backward pass writing every layer's gradients into `grads`
    /// (resized to fit on first use) and drawing all intermediate
    /// matrices from `ws`.
    ///
    /// # Errors
    /// Shape mismatch between cache and upstream gradient.
    pub fn backward_into(
        &self,
        cache: &ForwardCache,
        grad_output: &Matrix,
        grads: &mut Gradients,
        ws: &mut Workspace,
    ) -> Result<()> {
        if cache.caches.len() != self.layers.len() {
            return Err(NnError::InvalidBatch(format!(
                "forward cache holds {} layers, network has {}",
                cache.caches.len(),
                self.layers.len()
            )));
        }
        grads.layers.resize_with(self.layers.len(), DenseGrad::default);
        let mut grad = ws.take(0, 0);
        grad.copy_from(grad_output);
        let mut dx = ws.take(0, 0);
        let mut result = Ok(());
        for ((layer, lc), g) in self
            .layers
            .iter()
            .zip(cache.caches.iter())
            .zip(grads.layers.iter_mut())
            .rev()
        {
            result = layer.backward_into(lc, &grad, g, &mut dx, ws);
            if result.is_err() {
                break;
            }
            std::mem::swap(&mut grad, &mut dx);
        }
        ws.give(grad);
        ws.give(dx);
        result
    }

    /// Make `self` a parameter-for-parameter copy of `src`, reusing
    /// `self`'s layer allocations when the architectures match (the
    /// common case: refreshing a distillation-teacher snapshot from the
    /// live backbone every incremental update). Falls back to a clone
    /// when layer counts differ.
    pub fn copy_from(&mut self, src: &Mlp) {
        if self.layers.len() != src.layers.len() {
            self.layers = src.layers.clone();
            return;
        }
        for (dst, s) in self.layers.iter_mut().zip(src.layers.iter()) {
            dst.copy_from(s);
        }
    }

    /// `true` if every weight is finite (divergence guard).
    pub fn all_finite(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.weights.all_finite() && l.bias.iter().all(|v| v.is_finite()))
    }
}

/// The shared layer-walking skeleton every inference forward runs on:
/// ping-pong the hidden activations between two workspace buffers and
/// write the last layer straight into `out`. The f32 path
/// ([`Mlp::forward_into`]) and the int8 path
/// ([`crate::quantize::QuantizedMlp::forward_into`]) differ only in the
/// per-layer `step` they plug in here, so precision is a property of the
/// step, not of the loop.
///
/// `step(i, src, dst, ws)` must compute layer `i` from `src` into `dst`;
/// `ws` is free for the step's own scratch (the int8 step draws its
/// activation-quantisation buffers from it).
///
/// # Errors
/// Propagates the first step error; `out` is left unspecified then.
pub(crate) fn forward_layers<F>(
    n_layers: usize,
    x: &Matrix,
    out: &mut Matrix,
    ws: &mut Workspace,
    mut step: F,
) -> Result<()>
where
    F: FnMut(usize, &Matrix, &mut Matrix, &mut Workspace) -> Result<()>,
{
    debug_assert!(n_layers > 0, "layer chain validated at construction");
    let last = n_layers - 1;
    let mut a = ws.take(0, 0);
    let mut b = ws.take(0, 0);
    let mut result = Ok(());
    for i in 0..n_layers {
        let src = if i == 0 { x } else { &a };
        let dst = if i == last { &mut *out } else { &mut b };
        result = step(i, src, dst, ws);
        if result.is_err() {
            break;
        }
        std::mem::swap(&mut a, &mut b);
    }
    ws.give(a);
    ws.give(b);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(dims: &[usize], seed: u64) -> Mlp {
        Mlp::new(dims, &mut SeededRng::new(seed)).unwrap()
    }

    #[test]
    fn construction_and_shape_accessors() {
        let m = net(&[8, 16, 4], 1);
        assert_eq!(m.dims(), vec![8, 16, 4]);
        assert_eq!(m.input_dim(), 8);
        assert_eq!(m.output_dim(), 4);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.param_count(), 8 * 16 + 16 + 16 * 4 + 4);
        assert_eq!(m.param_bytes(), m.param_count() * 4);
        assert_eq!(m.layers().len(), 2);
    }

    #[test]
    fn paper_backbone_shape() {
        let m = Mlp::paper_backbone(&mut SeededRng::new(2)).unwrap();
        assert_eq!(m.dims(), vec![80, 1024, 512, 128, 64, 128]);
        // ~700k params -> ~2.8 MB at f32. Must stay under the 5 MB bundle
        // budget with room for the support set.
        let mb = m.param_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 3.0, "backbone is {mb:.2} MiB");
        // Hidden layers ReLU, output linear.
        assert_eq!(m.layers()[0].activation, Activation::Relu);
        assert_eq!(m.layers()[4].activation, Activation::Identity);
    }

    #[test]
    fn invalid_architectures_rejected() {
        let mut rng = SeededRng::new(3);
        assert!(matches!(
            Mlp::new(&[8], &mut rng),
            Err(NnError::InvalidArchitecture(_))
        ));
        assert!(matches!(
            Mlp::new(&[8, 0, 4], &mut rng),
            Err(NnError::InvalidArchitecture(_))
        ));
    }

    #[test]
    fn forward_matches_cached_forward() {
        let m = net(&[6, 10, 3], 4);
        let x = Matrix::filled(4, 6, 0.3);
        let plain = m.forward(&x).unwrap();
        let cached = m.forward_cached(&x).unwrap();
        assert_eq!(plain, cached.output);
        assert_eq!(m.embed_one(&[0.3; 6]).unwrap().len(), 3);
    }

    #[test]
    fn whole_network_gradient_check() {
        // L = sum(output); compare analytic dW against finite differences
        // for entries in the first and last layers.
        let mut m = net(&[4, 6, 3], 5);
        let x = Matrix::from_vec(
            3,
            4,
            vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5, 0.9, -0.7, 0.0, 0.8, -0.2, 0.4],
        )
        .unwrap();
        let cache = m.forward_cached(&x).unwrap();
        let grad_out = Matrix::filled(3, 3, 1.0);
        let grads = m.backward(&cache, &grad_out).unwrap();

        let eps = 1e-3f32;
        for (li, r, c) in [(0usize, 0usize, 0usize), (0, 3, 5), (1, 2, 1)] {
            let orig = m.layers[li].weights.get(r, c);
            m.layers[li].weights.set(r, c, orig + eps);
            let up = m.forward(&x).unwrap().sum();
            m.layers[li].weights.set(r, c, orig - eps);
            let down = m.forward(&x).unwrap().sum();
            m.layers[li].weights.set(r, c, orig);
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads.layers[li].dw.get(r, c);
            assert!(
                (numeric - analytic).abs() < 3e-2,
                "layer {li} dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradients_accumulate_scale_clip() {
        let m = net(&[3, 4, 2], 6);
        let x = Matrix::filled(2, 3, 1.0);
        let cache = m.forward_cached(&x).unwrap();
        let g1 = m
            .backward(&cache, &Matrix::filled(2, 2, 1.0))
            .unwrap();
        let mut acc = Gradients::zeros_like(&m);
        acc.accumulate(&g1).unwrap();
        acc.accumulate(&g1).unwrap();
        acc.scale(0.5);
        // acc == g1 now.
        for (a, b) in acc.layers.iter().zip(g1.layers.iter()) {
            assert_eq!(a, b);
        }
        let before = acc.max_abs();
        acc.clip(before / 2.0);
        assert!(acc.max_abs() <= before / 2.0 + 1e-6);
        // Mismatched accumulate fails.
        let other = Gradients::zeros_like(&net(&[3, 2], 7));
        assert!(acc.accumulate(&other).is_err());
    }

    #[test]
    fn all_finite_detects_poisoned_weights() {
        let mut m = net(&[2, 2], 8);
        assert!(m.all_finite());
        m.layers_mut()[0].weights.set(0, 0, f32::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn deterministic_construction() {
        assert_eq!(net(&[5, 7, 3], 9), net(&[5, 7, 3], 9));
        assert_ne!(net(&[5, 7, 3], 9), net(&[5, 7, 3], 10));
    }

    #[test]
    fn serde_roundtrip() {
        let m = net(&[3, 5, 2], 11);
        let json = serde_json::to_string(&m).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
