//! Loss functions with analytic gradients.
//!
//! * [`contrastive_loss`] — the Hadsell–Chopra pairwise contrastive loss a
//!   Siamese network trains on (§3.2): similar pairs are pulled together,
//!   dissimilar pairs pushed beyond a margin.
//! * [`distillation_loss`] — embedding-level teacher–student MSE. During
//!   on-device updates the frozen pre-update model is the teacher; keeping
//!   the student's embeddings of *old-class support data* close to the
//!   teacher's is what prevents catastrophic forgetting (§3.3).
//! * [`softmax_cross_entropy`] — for the cloud-classifier baseline used in
//!   the Figure-1 protocol comparison.

use crate::error::NnError;
use crate::Result;
use magneto_tensor::{vector, Matrix};

/// Pairwise contrastive loss.
///
/// Given row-aligned embedding batches `a` and `b` and pair labels
/// (`true` = same class), computes
///
/// ```text
/// L = mean_i [ y_i · ½·d_i² + (1 − y_i) · ½·max(0, m − d_i)² ]
/// ```
///
/// with `d_i = ‖a_i − b_i‖`. Returns `(loss, ∂L/∂a, ∂L/∂b)`.
///
/// # Errors
/// [`NnError::InvalidBatch`] on empty or misaligned batches.
pub fn contrastive_loss(
    a: &Matrix,
    b: &Matrix,
    same: &[bool],
    margin: f32,
) -> Result<(f32, Matrix, Matrix)> {
    let mut grad_a = Matrix::default();
    let mut grad_b = Matrix::default();
    let loss = contrastive_loss_into(a, b, same, margin, &mut grad_a, &mut grad_b)?;
    Ok((loss, grad_a, grad_b))
}

/// [`contrastive_loss`] writing the gradients into caller-owned matrices
/// (resized to `(n, dim)`), so the training hot loop allocates nothing.
///
/// # Errors
/// [`NnError::InvalidBatch`] on empty or misaligned batches.
pub fn contrastive_loss_into(
    a: &Matrix,
    b: &Matrix,
    same: &[bool],
    margin: f32,
    grad_a: &mut Matrix,
    grad_b: &mut Matrix,
) -> Result<f32> {
    if a.shape() != b.shape() || a.rows() != same.len() || a.rows() == 0 {
        return Err(NnError::InvalidBatch(format!(
            "contrastive batch misaligned: a {:?}, b {:?}, labels {}",
            a.shape(),
            b.shape(),
            same.len()
        )));
    }
    let n = a.rows();
    let dim = a.cols();
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f32;
    grad_a.resize(n, dim);
    grad_b.resize(n, dim);
    #[allow(clippy::needless_range_loop)] // i indexes three parallel collections
    for i in 0..n {
        let ra = a.row(i);
        let rb = b.row(i);
        let d = vector::euclidean(ra, rb);
        if same[i] {
            loss += 0.5 * d * d;
            // ∂(½d²)/∂a = (a − b)
            for j in 0..dim {
                let diff = ra[j] - rb[j];
                grad_a.set(i, j, diff * inv_n);
                grad_b.set(i, j, -diff * inv_n);
            }
        } else if d < margin {
            let gap = margin - d;
            loss += 0.5 * gap * gap;
            // ∂(½(m−d)²)/∂a = −(m−d)/d · (a − b); guard d ≈ 0.
            let coef = if d > 1e-7 { -gap / d } else { 0.0 };
            for j in 0..dim {
                let diff = ra[j] - rb[j];
                grad_a.set(i, j, coef * diff * inv_n);
                grad_b.set(i, j, -coef * diff * inv_n);
            }
        }
    }
    Ok(loss * inv_n)
}

/// Embedding-level distillation loss: mean squared error between student
/// and (frozen) teacher embeddings of the same inputs.
///
/// ```text
/// L = (1/n) Σ_i ‖s_i − t_i‖²       ∂L/∂s = 2(s − t)/n
/// ```
///
/// Returns `(loss, ∂L/∂student)`.
///
/// # Errors
/// [`NnError::InvalidBatch`] on shape mismatch or empty batch.
pub fn distillation_loss(student: &Matrix, teacher: &Matrix) -> Result<(f32, Matrix)> {
    let mut grad = Matrix::default();
    let loss = distillation_loss_into(student, teacher, &mut grad)?;
    Ok((loss, grad))
}

/// [`distillation_loss`] writing `∂L/∂student` into a caller-owned
/// matrix (resized to the student's shape).
///
/// # Errors
/// [`NnError::InvalidBatch`] on shape mismatch or empty batch.
pub fn distillation_loss_into(student: &Matrix, teacher: &Matrix, grad: &mut Matrix) -> Result<f32> {
    if student.shape() != teacher.shape() || student.rows() == 0 {
        return Err(NnError::InvalidBatch(format!(
            "distillation shapes: student {:?}, teacher {:?}",
            student.shape(),
            teacher.shape()
        )));
    }
    let n = student.rows() as f32;
    let scale = 2.0 / n;
    grad.resize(student.rows(), student.cols());
    let mut loss = 0.0f32;
    for ((g, &s), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(student.as_slice().iter())
        .zip(teacher.as_slice().iter())
    {
        let diff = s - t;
        loss += diff * diff;
        *g = diff * scale;
    }
    Ok(loss / n)
}

/// Supervised contrastive loss (Khosla et al., NeurIPS 2020 — the
/// paper's reference \[9\]) with analytic gradients, including the backprop
/// through the L2 normalisation.
///
/// For a batch of embeddings `Z` with integer labels:
///
/// ```text
/// ẑᵢ = zᵢ/‖zᵢ‖        sᵢⱼ = ẑᵢ·ẑⱼ/τ
/// Lᵢ = −1/|P(i)| Σ_{p∈P(i)} [ sᵢₚ − log Σ_{a≠i} exp(sᵢₐ) ]
/// L  = mean over anchors with at least one positive
/// ```
///
/// Returns `(loss, ∂L/∂Z)`. Anchors without positives are skipped; if no
/// anchor has a positive the loss is `0` with zero gradient.
///
/// # Errors
/// [`NnError::InvalidBatch`] on empty/misaligned batches.
pub fn supervised_contrastive_loss(
    embeddings: &Matrix,
    labels: &[usize],
    temperature: f32,
) -> Result<(f32, Matrix)> {
    let n = embeddings.rows();
    let d = embeddings.cols();
    if n != labels.len() || n == 0 {
        return Err(NnError::InvalidBatch(format!(
            "supcon batch: {} rows vs {} labels",
            n,
            labels.len()
        )));
    }
    let tau = temperature.max(1e-4);

    // Normalise (keep norms for the backward pass).
    let mut norms = vec![0.0f32; n];
    let mut zhat = Matrix::zeros(n, d);
    #[allow(clippy::needless_range_loop)] // i indexes three parallel structures
    for i in 0..n {
        let row = embeddings.row(i);
        let nm = vector::norm(row).max(1e-8);
        norms[i] = nm;
        for (j, &v) in row.iter().enumerate() {
            zhat.set(i, j, v / nm);
        }
    }

    // Similarity matrix s and per-anchor softmax over a ≠ i.
    let sim = zhat.matmul_transposed(&zhat)?; // cosine similarities
    let mut loss = 0.0f32;
    let mut grad_zhat = Matrix::zeros(n, d);
    let anchors: Vec<usize> = (0..n)
        .filter(|&i| labels.iter().enumerate().any(|(j, &l)| j != i && l == labels[i]))
        .collect();
    if anchors.is_empty() {
        return Ok((0.0, Matrix::zeros(n, d)));
    }
    let w = 1.0 / anchors.len() as f32;

    for &i in &anchors {
        let positives: Vec<usize> = (0..n)
            .filter(|&j| j != i && labels[j] == labels[i])
            .collect();
        let p_count = positives.len() as f32;

        // Stable log-sum-exp over a ≠ i.
        let mut max_s = f32::NEG_INFINITY;
        for a in 0..n {
            if a != i {
                max_s = max_s.max(sim.get(i, a) / tau);
            }
        }
        let mut denom = 0.0f32;
        let mut q = vec![0.0f32; n]; // softmax weights over a ≠ i
        #[allow(clippy::needless_range_loop)] // a indexes q and sim rows together
        for a in 0..n {
            if a != i {
                let e = ((sim.get(i, a) / tau) - max_s).exp();
                q[a] = e;
                denom += e;
            }
        }
        let lse = max_s + denom.ln();
        for v in &mut q {
            *v /= denom;
        }

        for &p in &positives {
            loss -= w / p_count * (sim.get(i, p) / tau - lse);
        }

        // ∂L/∂ẑ contributions for anchor i.
        for k in 0..d {
            // −1/|P| Σ_p ẑ_p  +  Σ_a q_a ẑ_a     (all scaled by w/τ)
            let mut gi = 0.0f32;
            for &p in &positives {
                gi -= zhat.get(p, k) / p_count;
            }
            for (a, &qa) in q.iter().enumerate() {
                if a != i {
                    gi += qa * zhat.get(a, k);
                }
            }
            grad_zhat.set(i, k, grad_zhat.get(i, k) + w / tau * gi);
        }
        // Contributions to the other rows.
        for &p in &positives {
            for k in 0..d {
                let g = grad_zhat.get(p, k) - w / (tau * p_count) * zhat.get(i, k);
                grad_zhat.set(p, k, g);
            }
        }
        for (a, &qa) in q.iter().enumerate() {
            if a != i && qa > 0.0 {
                for k in 0..d {
                    let g = grad_zhat.get(a, k) + w / tau * qa * zhat.get(i, k);
                    grad_zhat.set(a, k, g);
                }
            }
        }
    }

    // Backprop through ẑ = z/‖z‖:  ∂L/∂z = (g − (ẑ·g) ẑ)/‖z‖.
    let mut grad = Matrix::zeros(n, d);
    #[allow(clippy::needless_range_loop)] // i indexes grads, zhat and norms together
    for i in 0..n {
        let g = grad_zhat.row(i);
        let zh = zhat.row(i);
        let dot = vector::dot(zh, g);
        for k in 0..d {
            grad.set(i, k, (g[k] - dot * zh[k]) / norms[i]);
        }
    }
    Ok((loss, grad))
}

/// Softmax cross-entropy over logits, with one-hot integer targets.
///
/// Returns `(mean loss, ∂L/∂logits)` where the gradient is the classic
/// `(softmax(z) − onehot)/n`.
///
/// # Errors
/// [`NnError::InvalidBatch`] on empty batches or out-of-range targets.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> Result<(f32, Matrix)> {
    if logits.rows() != targets.len() || logits.rows() == 0 {
        return Err(NnError::InvalidBatch(format!(
            "cross-entropy batch: {} logit rows vs {} targets",
            logits.rows(),
            targets.len()
        )));
    }
    let classes = logits.cols();
    let n = logits.rows();
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0f32;
    let mut grad = Matrix::zeros(n, classes);
    #[allow(clippy::needless_range_loop)] // i indexes logits rows and targets together
    for i in 0..n {
        let t = targets[i];
        if t >= classes {
            return Err(NnError::InvalidBatch(format!(
                "target {t} out of range for {classes} classes"
            )));
        }
        let probs = vector::softmax(logits.row(i));
        loss -= probs[t].max(1e-12).ln();
        for (j, &p) in probs.iter().enumerate() {
            let y = if j == t { 1.0 } else { 0.0 };
            grad.set(i, j, (p - y) * inv_n);
        }
    }
    Ok((loss * inv_n, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, data.to_vec()).unwrap()
    }

    #[test]
    fn contrastive_identical_similar_pair_is_zero() {
        let a = m(1, 2, &[1.0, 2.0]);
        let (loss, ga, gb) = contrastive_loss(&a, &a.clone(), &[true], 1.0).unwrap();
        assert_eq!(loss, 0.0);
        assert!(ga.as_slice().iter().all(|&v| v == 0.0));
        assert!(gb.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn contrastive_separated_dissimilar_pair_is_zero() {
        let a = m(1, 2, &[0.0, 0.0]);
        let b = m(1, 2, &[10.0, 0.0]);
        let (loss, ga, _) = contrastive_loss(&a, &b, &[false], 1.0).unwrap();
        assert_eq!(loss, 0.0);
        assert!(ga.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn contrastive_known_values() {
        // Similar pair at distance 2: loss = ½·4 = 2.
        let a = m(1, 1, &[0.0]);
        let b = m(1, 1, &[2.0]);
        let (loss, ga, gb) = contrastive_loss(&a, &b, &[true], 1.0).unwrap();
        assert!((loss - 2.0).abs() < 1e-6);
        assert!((ga.get(0, 0) + 2.0).abs() < 1e-6); // (a-b) = -2
        assert!((gb.get(0, 0) - 2.0).abs() < 1e-6);
        // Dissimilar pair at distance 0.5, margin 1: loss = ½·0.25.
        let (loss2, _, _) =
            contrastive_loss(&m(1, 1, &[0.0]), &m(1, 1, &[0.5]), &[false], 1.0).unwrap();
        assert!((loss2 - 0.125).abs() < 1e-6);
    }

    #[test]
    fn contrastive_gradient_check() {
        let a = m(2, 3, &[0.3, -0.2, 0.5, 0.1, 0.9, -0.4]);
        let b = m(2, 3, &[0.0, 0.4, 0.2, -0.6, 0.8, 0.3]);
        let same = [true, false];
        let margin = 1.5;
        let (_, ga, gb) = contrastive_loss(&a, &b, &same, margin).unwrap();
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (0, 2), (1, 1)] {
            let mut ap = a.clone();
            ap.set(r, c, a.get(r, c) + eps);
            let (lp, _, _) = contrastive_loss(&ap, &b, &same, margin).unwrap();
            let mut am = a.clone();
            am.set(r, c, a.get(r, c) - eps);
            let (lm, _, _) = contrastive_loss(&am, &b, &same, margin).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - ga.get(r, c)).abs() < 1e-2,
                "dA[{r},{c}] numeric {numeric} vs {}",
                ga.get(r, c)
            );
            let mut bp = b.clone();
            bp.set(r, c, b.get(r, c) + eps);
            let (lbp, _, _) = contrastive_loss(&a, &bp, &same, margin).unwrap();
            let mut bm = b.clone();
            bm.set(r, c, b.get(r, c) - eps);
            let (lbm, _, _) = contrastive_loss(&a, &bm, &same, margin).unwrap();
            let numeric_b = (lbp - lbm) / (2.0 * eps);
            assert!(
                (numeric_b - gb.get(r, c)).abs() < 1e-2,
                "dB[{r},{c}]"
            );
        }
    }

    #[test]
    fn contrastive_zero_distance_dissimilar_does_not_nan() {
        let a = m(1, 2, &[1.0, 1.0]);
        let (loss, ga, _) = contrastive_loss(&a, &a.clone(), &[false], 1.0).unwrap();
        assert!(loss.is_finite());
        assert!(ga.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn contrastive_rejects_malformed() {
        let a = m(2, 2, &[0.0; 4]);
        let b = m(1, 2, &[0.0; 2]);
        assert!(contrastive_loss(&a, &b, &[true, false], 1.0).is_err());
        assert!(contrastive_loss(&a, &a.clone(), &[true], 1.0).is_err());
        let empty = Matrix::zeros(0, 2);
        assert!(contrastive_loss(&empty, &empty.clone(), &[], 1.0).is_err());
    }

    #[test]
    fn distillation_zero_when_matching() {
        let s = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let (loss, grad) = distillation_loss(&s, &s.clone()).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn distillation_known_value_and_gradient_check() {
        let s = m(1, 2, &[1.0, 0.0]);
        let t = m(1, 2, &[0.0, 0.0]);
        let (loss, grad) = distillation_loss(&s, &t).unwrap();
        assert!((loss - 1.0).abs() < 1e-6);
        assert!((grad.get(0, 0) - 2.0).abs() < 1e-6);
        // Finite difference.
        let eps = 1e-3;
        let mut sp = s.clone();
        sp.set(0, 1, eps);
        let (lp, _) = distillation_loss(&sp, &t).unwrap();
        let mut sm = s.clone();
        sm.set(0, 1, -eps);
        let (lm, _) = distillation_loss(&sm, &t).unwrap();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - grad.get(0, 1)).abs() < 1e-2);
    }

    #[test]
    fn distillation_rejects_mismatch() {
        assert!(distillation_loss(&Matrix::zeros(1, 2), &Matrix::zeros(2, 2)).is_err());
        assert!(distillation_loss(&Matrix::zeros(0, 2), &Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let logits = m(1, 3, &[10.0, -5.0, -5.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 0.01, "loss {loss}");
        // Gradient pushes the correct logit up (negative gradient).
        assert!(grad.get(0, 0) < 0.0);
        assert!(grad.get(0, 1) > 0.0);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = m(1, 4, &[0.0; 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = m(2, 3, &[0.5, -0.2, 0.8, 0.1, 0.9, -0.3]);
        let targets = [2usize, 1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (1, 2)] {
            let mut lp = logits.clone();
            lp.set(r, c, logits.get(r, c) + eps);
            let (up, _) = softmax_cross_entropy(&lp, &targets).unwrap();
            let mut lm = logits.clone();
            lm.set(r, c, logits.get(r, c) - eps);
            let (down, _) = softmax_cross_entropy(&lm, &targets).unwrap();
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - grad.get(r, c)).abs() < 1e-2);
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_targets() {
        let logits = m(1, 3, &[0.0; 3]);
        assert!(softmax_cross_entropy(&logits, &[3]).is_err());
        assert!(softmax_cross_entropy(&logits, &[]).is_err());
    }

    #[test]
    fn supcon_separated_classes_have_lower_loss() {
        // Tightly clustered, well-separated classes score lower than a
        // shuffled labelling of the same points.
        let z = m(
            4,
            2,
            &[1.0, 0.1, 1.0, -0.1, -1.0, 0.1, -1.0, -0.1],
        );
        let good = [0usize, 0, 1, 1];
        let bad = [0usize, 1, 0, 1];
        let (lg, _) = supervised_contrastive_loss(&z, &good, 0.2).unwrap();
        let (lb, _) = supervised_contrastive_loss(&z, &bad, 0.2).unwrap();
        assert!(lg < lb, "separated {lg} vs shuffled {lb}");
    }

    #[test]
    fn supcon_gradient_check() {
        let z = m(
            5,
            3,
            &[
                0.8, -0.2, 0.5, 0.6, 0.4, -0.3, -0.7, 0.9, 0.2, -0.5, -0.6, 0.4, 0.3, 0.2,
                -0.8,
            ],
        );
        let labels = [0usize, 0, 1, 1, 0];
        let tau = 0.5;
        let (_, grad) = supervised_contrastive_loss(&z, &labels, tau).unwrap();
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (1, 2), (3, 1), (4, 2)] {
            let mut zp = z.clone();
            zp.set(r, c, z.get(r, c) + eps);
            let (lp, _) = supervised_contrastive_loss(&zp, &labels, tau).unwrap();
            let mut zm = z.clone();
            zm.set(r, c, z.get(r, c) - eps);
            let (lm, _) = supervised_contrastive_loss(&zm, &labels, tau).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.get(r, c);
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                "dZ[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn supcon_no_positives_is_zero() {
        let z = m(3, 2, &[1.0, 0.0, 0.0, 1.0, -1.0, 0.0]);
        let labels = [0usize, 1, 2]; // all singletons
        let (loss, grad) = supervised_contrastive_loss(&z, &labels, 0.5).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn supcon_handles_zero_norm_rows() {
        let z = m(3, 2, &[0.0, 0.0, 1.0, 0.0, 1.0, 0.1]);
        let labels = [0usize, 0, 0];
        let (loss, grad) = supervised_contrastive_loss(&z, &labels, 0.5).unwrap();
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn supcon_rejects_malformed() {
        let z = m(2, 2, &[0.0; 4]);
        assert!(supervised_contrastive_loss(&z, &[0], 0.5).is_err());
        assert!(supervised_contrastive_loss(&Matrix::zeros(0, 2), &[], 0.5).is_err());
    }
}
