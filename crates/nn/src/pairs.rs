//! Pair sampling for Siamese training.
//!
//! A Siamese batch is a list of `(i, j, same)` index pairs into the
//! feature matrix. Training quality depends on balance: all-positive
//! batches collapse the embedding, all-negative batches only spread it.
//! [`sample_pairs`] draws ~50/50 positive/negative pairs with
//! class-uniform positives.

use magneto_tensor::SeededRng;
use std::collections::BTreeMap;

/// One Siamese training pair: row indices and whether the rows share a
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairSample {
    /// Row index of the first view.
    pub i: usize,
    /// Row index of the second view.
    pub j: usize,
    /// `true` when both rows have the same label.
    pub same: bool,
}

/// Sample `count` balanced pairs from integer labels.
///
/// Positives are drawn class-uniformly (each class contributes equally,
/// so a class with few fresh samples — the newly recorded activity — is
/// not drowned out). Negatives pair two different classes uniformly.
/// Classes with a single sample cannot form positives and are skipped for
/// that half; if only one class exists, all pairs are positive.
pub fn sample_pairs(labels: &[usize], count: usize, rng: &mut SeededRng) -> Vec<PairSample> {
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, &l) in labels.iter().enumerate() {
        by_class.entry(l).or_default().push(idx);
    }
    let classes: Vec<usize> = by_class.keys().copied().collect();
    let multi: Vec<usize> = classes
        .iter()
        .copied()
        .filter(|c| by_class[c].len() >= 2)
        .collect();
    let mut pairs = Vec::with_capacity(count);
    if classes.is_empty() {
        return pairs;
    }
    for k in 0..count {
        let want_positive = k % 2 == 0;
        if (want_positive && !multi.is_empty()) || classes.len() < 2 {
            // Positive pair from a class with at least two samples.
            if multi.is_empty() {
                break; // single-sample single class: nothing to pair
            }
            let c = multi[rng.index(multi.len())];
            let members = &by_class[&c];
            let a = rng.index(members.len());
            let mut b = rng.index(members.len());
            while b == a {
                b = rng.index(members.len());
            }
            pairs.push(PairSample {
                i: members[a],
                j: members[b],
                same: true,
            });
        } else {
            // Negative pair across two distinct classes.
            let ca = classes[rng.index(classes.len())];
            let mut cb = classes[rng.index(classes.len())];
            while cb == ca {
                cb = classes[rng.index(classes.len())];
            }
            let ma = &by_class[&ca];
            let mb = &by_class[&cb];
            pairs.push(PairSample {
                i: ma[rng.index(ma.len())],
                j: mb[rng.index(mb.len())],
                same: false,
            });
        }
    }
    pairs
}

/// Sample a class-balanced batch of `count` row indices (for batch
/// objectives like supervised contrastive): classes are visited
/// round-robin, rows uniformly within each class. Returns fewer than
/// `count` only when there are no rows at all.
pub fn sample_balanced_batch(labels: &[usize], count: usize, rng: &mut SeededRng) -> Vec<usize> {
    let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, &l) in labels.iter().enumerate() {
        by_class.entry(l).or_default().push(idx);
    }
    let classes: Vec<&Vec<usize>> = by_class.values().collect();
    if classes.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count);
    for k in 0..count {
        let members = classes[k % classes.len()];
        out.push(members[rng.index(members.len())]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_half_positive() {
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let mut rng = SeededRng::new(1);
        let pairs = sample_pairs(&labels, 200, &mut rng);
        assert_eq!(pairs.len(), 200);
        let pos = pairs.iter().filter(|p| p.same).count();
        assert_eq!(pos, 100);
    }

    #[test]
    fn labels_are_consistent_with_same_flag() {
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let mut rng = SeededRng::new(2);
        for p in sample_pairs(&labels, 300, &mut rng) {
            assert_eq!(labels[p.i] == labels[p.j], p.same);
            assert_ne!(p.i, p.j);
        }
    }

    #[test]
    fn positives_cover_small_classes() {
        // Class 9 has only 3 samples among 100; class-uniform positives
        // must still feature it often.
        let mut labels: Vec<usize> = vec![0; 97];
        labels.extend([9, 9, 9]);
        let mut rng = SeededRng::new(3);
        let pairs = sample_pairs(&labels, 400, &mut rng);
        let small_pos = pairs
            .iter()
            .filter(|p| p.same && labels[p.i] == 9)
            .count();
        assert!(small_pos > 50, "small class positives: {small_pos}");
    }

    #[test]
    fn single_class_yields_only_positives() {
        let labels = vec![5usize; 10];
        let mut rng = SeededRng::new(4);
        let pairs = sample_pairs(&labels, 50, &mut rng);
        assert_eq!(pairs.len(), 50);
        assert!(pairs.iter().all(|p| p.same));
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = SeededRng::new(5);
        assert!(sample_pairs(&[], 10, &mut rng).is_empty());
        // One class, one sample: no pairs possible.
        assert!(sample_pairs(&[3], 10, &mut rng).is_empty());
        // Two singleton classes: only negatives are possible; positives
        // terminate the loop early, so we get at most `count` pairs and
        // every produced pair is valid.
        let pairs = sample_pairs(&[0, 1], 10, &mut rng);
        assert!(pairs.iter().all(|p| !p.same));
    }

    #[test]
    fn deterministic() {
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let mut a = SeededRng::new(6);
        let mut b = SeededRng::new(6);
        assert_eq!(
            sample_pairs(&labels, 40, &mut a),
            sample_pairs(&labels, 40, &mut b)
        );
    }

    #[test]
    fn balanced_batch_round_robins_classes() {
        // Class 1 has a single member among many of class 0; it must
        // still occupy ~half the batch.
        let mut labels = vec![0usize; 50];
        labels.push(1);
        let mut rng = SeededRng::new(7);
        let batch = sample_balanced_batch(&labels, 40, &mut rng);
        assert_eq!(batch.len(), 40);
        let minority = batch.iter().filter(|&&i| labels[i] == 1).count();
        assert_eq!(minority, 20);
        assert!(batch.iter().all(|&i| i < labels.len()));
    }

    #[test]
    fn balanced_batch_degenerate() {
        let mut rng = SeededRng::new(8);
        assert!(sample_balanced_batch(&[], 10, &mut rng).is_empty());
        assert_eq!(sample_balanced_batch(&[3], 5, &mut rng), vec![0; 5]);
    }
}
