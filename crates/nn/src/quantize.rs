//! Post-training 8-bit weight quantisation.
//!
//! The paper stresses edge footprint ("Model size, which should be small
//! enough to fit within the Edge", §1; "does not exceed 5 MB", §4.2). The
//! f32 backbone is ~2.8 MB; symmetric per-tensor int8 quantisation brings
//! the stored weights to ~0.7 MB with negligible embedding drift, giving
//! the footprint experiment (C3 in DESIGN.md) a second operating point.

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::Dense;
use crate::network::Mlp;
use crate::Result;
use magneto_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// One dense layer with int8 weights (symmetric per-tensor scale) and f32
/// bias (biases are tiny; quantising them buys nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedDense {
    rows: usize,
    cols: usize,
    weights_i8: Vec<i8>,
    scale: f32,
    bias: Vec<f32>,
    activation: Activation,
}

/// A fully-quantised MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

impl QuantizedDense {
    fn quantize(layer: &Dense) -> Self {
        let max_abs = layer.weights.max_abs();
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let weights_i8 = layer
            .weights
            .as_slice()
            .iter()
            .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedDense {
            rows: layer.weights.rows(),
            cols: layer.weights.cols(),
            weights_i8,
            scale,
            bias: layer.bias.clone(),
            activation: layer.activation,
        }
    }

    fn dequantize(&self) -> Result<Dense> {
        let data: Vec<f32> = self
            .weights_i8
            .iter()
            .map(|&q| f32::from(q) * self.scale)
            .collect();
        Ok(Dense {
            weights: Matrix::from_vec(self.rows, self.cols, data)?,
            bias: self.bias.clone(),
            activation: self.activation,
        })
    }

    /// Stored bytes: i8 weights + f32 bias + scale + header.
    fn stored_bytes(&self) -> usize {
        self.weights_i8.len() + self.bias.len() * 4 + 4 + 12
    }
}

impl QuantizedMlp {
    /// Quantise every layer of an MLP.
    pub fn quantize(net: &Mlp) -> Self {
        QuantizedMlp {
            layers: net.layers().iter().map(QuantizedDense::quantize).collect(),
        }
    }

    /// Reconstruct an f32 MLP (lossy: weights round-trip through int8).
    ///
    /// # Errors
    /// [`NnError::Decode`] only on internal inconsistency.
    pub fn dequantize(&self) -> Result<Mlp> {
        if self.layers.is_empty() {
            return Err(NnError::Decode("quantized model has no layers".into()));
        }
        let layers = self
            .layers
            .iter()
            .map(QuantizedDense::dequantize)
            .collect::<Result<Vec<_>>>()?;
        Mlp::from_layers(layers)
    }

    /// Bytes needed to store the quantised parameters.
    pub fn stored_bytes(&self) -> usize {
        self.layers.iter().map(QuantizedDense::stored_bytes).sum()
    }

    /// Compact binary encoding:
    ///
    /// ```text
    /// qmodel := magic "MGNQ" | u32 n_layers | qlayer*
    /// qlayer := u8 activation | u32 rows | u32 cols | f32 scale
    ///           | rows*cols i8 | f32vec bias
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(self.stored_bytes() + 32);
        buf.put_slice(b"MGNQ");
        buf.put_u32_le(self.layers.len() as u32);
        for l in &self.layers {
            buf.put_u8(match l.activation {
                Activation::Relu => 0,
                Activation::LeakyRelu => 1,
                Activation::Sigmoid => 2,
                Activation::Tanh => 3,
                Activation::Identity => 4,
            });
            buf.put_u32_le(l.rows as u32);
            buf.put_u32_le(l.cols as u32);
            buf.put_f32_le(l.scale);
            for &q in &l.weights_i8 {
                buf.put_i8(q);
            }
            magneto_tensor::serialize::encode_f32_vec(&l.bias, &mut buf);
        }
        buf.to_vec()
    }

    /// Decode bytes produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    /// [`NnError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        use bytes::Buf;
        let mut buf = bytes::Bytes::copy_from_slice(bytes);
        if buf.remaining() < 8 {
            return Err(NnError::Decode("quantized header truncated".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"MGNQ" {
            return Err(NnError::Decode("bad quantized magic".into()));
        }
        let n_layers = buf.get_u32_le();
        if n_layers == 0 || n_layers > 1024 {
            return Err(NnError::Decode(format!(
                "implausible quantized layer count {n_layers}"
            )));
        }
        let mut layers = Vec::with_capacity(n_layers as usize);
        for _ in 0..n_layers {
            if buf.remaining() < 13 {
                return Err(NnError::Decode("quantized layer header truncated".into()));
            }
            let activation = match buf.get_u8() {
                0 => Activation::Relu,
                1 => Activation::LeakyRelu,
                2 => Activation::Sigmoid,
                3 => Activation::Tanh,
                4 => Activation::Identity,
                other => {
                    return Err(NnError::Decode(format!("unknown activation {other}")))
                }
            };
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            if rows > 1_000_000 || cols > 1_000_000 {
                return Err(NnError::Decode("implausible quantized dims".into()));
            }
            let scale = buf.get_f32_le();
            let n = rows * cols;
            if buf.remaining() < n {
                return Err(NnError::Decode("quantized weights truncated".into()));
            }
            let mut weights_i8 = Vec::with_capacity(n);
            for _ in 0..n {
                weights_i8.push(buf.get_i8());
            }
            let bias = magneto_tensor::serialize::decode_f32_vec(&mut buf)
                .map_err(NnError::Tensor)?;
            if bias.len() != cols {
                return Err(NnError::Decode("quantized bias length mismatch".into()));
            }
            layers.push(QuantizedDense {
                rows,
                cols,
                weights_i8,
                scale,
                bias,
                activation,
            });
        }
        Ok(QuantizedMlp { layers })
    }

    /// Mean absolute weight error introduced by quantisation.
    pub fn quantization_error(&self, original: &Mlp) -> Result<f32> {
        let restored = self.dequantize()?;
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (a, b) in original.layers().iter().zip(restored.layers().iter()) {
            for (&x, &y) in a.weights.as_slice().iter().zip(b.weights.as_slice().iter()) {
                total += f64::from((x - y).abs());
                count += 1;
            }
        }
        Ok((total / count.max(1) as f64) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::SeededRng;

    fn net(seed: u64) -> Mlp {
        Mlp::new(&[8, 16, 4], &mut SeededRng::new(seed)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_architecture() {
        let m = net(1);
        let q = QuantizedMlp::quantize(&m);
        let back = q.dequantize().unwrap();
        assert_eq!(back.dims(), m.dims());
        assert_eq!(back.layers()[0].activation, m.layers()[0].activation);
    }

    #[test]
    fn quantization_error_is_small() {
        let m = net(2);
        let q = QuantizedMlp::quantize(&m);
        let err = q.quantization_error(&m).unwrap();
        // Max |w| / 254 is the theoretical mean bound for symmetric int8.
        let bound = m
            .layers()
            .iter()
            .map(|l| l.weights.max_abs())
            .fold(0.0f32, f32::max)
            / 127.0;
        assert!(err <= bound, "err {err} vs bound {bound}");
        assert!(err > 0.0);
    }

    #[test]
    fn embeddings_survive_quantization() {
        let m = net(3);
        let q = QuantizedMlp::quantize(&m);
        let back = q.dequantize().unwrap();
        let x = Matrix::filled(4, 8, 0.5);
        let orig = m.forward(&x).unwrap();
        let quant = back.forward(&x).unwrap();
        let rel = orig.sub(&quant).unwrap().frobenius_norm() / orig.frobenius_norm().max(1e-9);
        assert!(rel < 0.05, "relative embedding drift {rel}");
    }

    #[test]
    fn storage_is_roughly_quarter_of_f32() {
        let m = net(4);
        let q = QuantizedMlp::quantize(&m);
        let f32_bytes = m.param_bytes();
        let q_bytes = q.stored_bytes();
        assert!(
            (q_bytes as f64) < (f32_bytes as f64) * 0.45,
            "quantised {q_bytes} vs f32 {f32_bytes}"
        );
    }

    #[test]
    fn paper_backbone_quantizes_under_one_mb() {
        let m = Mlp::paper_backbone(&mut SeededRng::new(5)).unwrap();
        let q = QuantizedMlp::quantize(&m);
        let mb = q.stored_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 1.0, "quantised backbone {mb:.2} MiB");
    }

    #[test]
    fn zero_weights_do_not_divide_by_zero() {
        let mut m = net(6);
        for l in m.layers_mut() {
            l.weights.scale_inplace(0.0);
        }
        let q = QuantizedMlp::quantize(&m);
        let back = q.dequantize().unwrap();
        assert!(back.layers()[0].weights.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn serde_roundtrip() {
        let q = QuantizedMlp::quantize(&net(7));
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedMlp = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn binary_roundtrip_exact() {
        let q = QuantizedMlp::quantize(&net(8));
        let bytes = q.to_bytes();
        let back = QuantizedMlp::from_bytes(&bytes).unwrap();
        assert_eq!(q, back);
        // Binary size tracks stored_bytes closely.
        assert!(bytes.len() <= q.stored_bytes() + 64);
    }

    #[test]
    fn binary_rejects_corruption() {
        let q = QuantizedMlp::quantize(&net(9));
        let good = q.to_bytes();
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(QuantizedMlp::from_bytes(&bad).is_err());
        assert!(QuantizedMlp::from_bytes(&good[..good.len() - 2]).is_err());
        assert!(QuantizedMlp::from_bytes(&[]).is_err());
    }
}
