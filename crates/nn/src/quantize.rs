//! Int8 models: quantised storage *and* quantised execution.
//!
//! The paper stresses edge footprint ("Model size, which should be small
//! enough to fit within the Edge", §1; "does not exceed 5 MB", §4.2).
//! Earlier PRs used this module only as a codec — shrink the serialized
//! bundle, dequantise to f32 at deploy. Since the precision refactor it
//! is a first-class forward path: [`QuantizedMlp`] keeps weights
//! resident as int8 with per-output-channel scales and runs inference
//! through the i8×i8→i32 kernels in [`magneto_tensor::quant`], sharing
//! the layer-walking skeleton (and the [`Workspace`] scratch discipline)
//! with the f32 [`Mlp`]. Training stays f32 — gradients need the full
//! dynamic range — so incremental learning dequantises, trains, and
//! re-quantises on commit.

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::Dense;
use crate::network::Mlp;
use crate::siamese::SiameseNetwork;
use crate::Result;
use magneto_tensor::quant::{QuantMatrix, QuantScratch};
use magneto_tensor::{Exec, Matrix, Workspace};
use serde::{Deserialize, Serialize};

/// One dense layer with int8 weights (symmetric per-output-channel
/// scales) and f32 bias (biases are tiny; quantising them buys nothing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedDense {
    weights: QuantMatrix,
    bias: Vec<f32>,
    activation: Activation,
}

/// A fully-quantised MLP that can run inference directly on its int8
/// weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedDense>,
}

/// A quantised Siamese network: the int8 backbone plus the contrastive
/// margin, mirroring [`SiameseNetwork`] so either can serve the same
/// embedding space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSiamese {
    backbone: QuantizedMlp,
    /// Contrastive margin carried through the quantised round trip.
    pub margin: f32,
}

impl QuantizedDense {
    fn quantize(layer: &Dense) -> Result<Self> {
        Ok(QuantizedDense {
            weights: QuantMatrix::quantize(&layer.weights).map_err(NnError::Tensor)?,
            bias: layer.bias.clone(),
            activation: layer.activation,
        })
    }

    fn dequantize(&self) -> Result<Dense> {
        Ok(Dense {
            weights: self.weights.dequantize().map_err(NnError::Tensor)?,
            bias: self.bias.clone(),
            activation: self.activation,
        })
    }

    /// `true` when every float parameter (scales, bias) is finite. The
    /// i8 weights cannot be non-finite; the scales and bias can, if the
    /// f32 model they were quantised from had diverged.
    fn all_finite(&self) -> bool {
        self.weights.scales().iter().all(|s| s.is_finite())
            && self.bias.iter().all(|b| b.is_finite())
    }

    fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Resident parameter bytes: i8 weights + f32 scales + f32 bias.
    fn stored_bytes(&self) -> usize {
        self.weights.stored_bytes() + self.bias.len() * 4
    }

    /// Fused int8 layer forward (`out = act(x·W + b)`).
    fn infer_into_exec(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        scratch: &mut QuantScratch,
        exec: &Exec,
    ) -> Result<()> {
        let act = self.activation;
        self.weights
            .matmul_bias_act_into_exec(x, &self.bias, |v| act.apply(v), out, scratch, exec)
            .map_err(NnError::Tensor)
    }
}

impl QuantizedMlp {
    /// Quantise every layer of an MLP.
    ///
    /// # Errors
    /// [`NnError::Tensor`] only on a degenerate (zero-sized) layer, which
    /// [`Mlp`] construction already rules out.
    pub fn quantize(net: &Mlp) -> Result<Self> {
        Ok(QuantizedMlp {
            layers: net
                .layers()
                .iter()
                .map(QuantizedDense::quantize)
                .collect::<Result<Vec<_>>>()?,
        })
    }

    /// Reconstruct an f32 MLP (lossy: weights round-trip through int8).
    ///
    /// # Errors
    /// [`NnError::Decode`] only on internal inconsistency.
    pub fn dequantize(&self) -> Result<Mlp> {
        if self.layers.is_empty() {
            return Err(NnError::Decode("quantized model has no layers".into()));
        }
        let layers = self
            .layers
            .iter()
            .map(QuantizedDense::dequantize)
            .collect::<Result<Vec<_>>>()?;
        Mlp::from_layers(layers)
    }

    /// `true` when every float parameter of every layer is finite
    /// (mirrors [`Mlp::all_finite`] for the quantised representation).
    pub fn all_finite(&self) -> bool {
        self.layers.iter().all(QuantizedDense::all_finite)
    }

    /// Layer widths, input first (mirrors [`Mlp::dims`]).
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        dims.push(self.layers[0].in_dim());
        dims.extend(self.layers.iter().map(QuantizedDense::out_dim));
        dims
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Embedding (output) dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total parameters (weights + biases), for CLI inspection parity
    /// with [`Mlp::param_count`].
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.rows() * l.weights.cols() + l.bias.len())
            .sum()
    }

    /// Bytes needed to keep the quantised parameters resident.
    pub fn stored_bytes(&self) -> usize {
        self.layers.iter().map(QuantizedDense::stored_bytes).sum()
    }

    /// Int8 inference forward pass writing the embedding batch into
    /// `out`. Runs the same ping-pong skeleton as [`Mlp::forward_into`];
    /// the per-layer step quantises activations into the workspace's
    /// [`QuantScratch`] and dispatches the i8 GEMM on the workspace's
    /// execution context — allocation-free once `ws` is warm, and
    /// bit-identical across pool sizes.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix, ws: &mut Workspace) -> Result<()> {
        if self.layers.is_empty() {
            return Err(NnError::Decode("quantized model has no layers".into()));
        }
        let exec = ws.exec().clone();
        crate::network::forward_layers(self.layers.len(), x, out, ws, |i, src, dst, ws| {
            self.layers[i].infer_into_exec(src, dst, ws.quant_scratch(), &exec)
        })
    }

    /// Allocating shim over [`forward_into`](Self::forward_into).
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::default();
        let mut ws = Workspace::new();
        self.forward_into(x, &mut out, &mut ws)?;
        Ok(out)
    }

    /// Embed a single feature vector through the int8 path.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_one(&self, features: &[f32]) -> Result<Vec<f32>> {
        let out = self.forward(&Matrix::from_row(features))?;
        Ok(out.into_vec())
    }

    /// Compact binary encoding (format `MGQ2`, per-output-channel
    /// scales; the per-tensor `MGNQ` format of earlier PRs is retired):
    ///
    /// ```text
    /// qmodel := magic "MGQ2" | u32 n_layers | qlayer*
    /// qlayer := u8 activation | u32 rows | u32 cols
    ///           | rows*cols i8 | f32vec scales | f32vec bias
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(self.stored_bytes() + 64);
        buf.put_slice(b"MGQ2");
        buf.put_u32_le(self.layers.len() as u32);
        for l in &self.layers {
            buf.put_u8(match l.activation {
                Activation::Relu => 0,
                Activation::LeakyRelu => 1,
                Activation::Sigmoid => 2,
                Activation::Tanh => 3,
                Activation::Identity => 4,
            });
            buf.put_u32_le(l.weights.rows() as u32);
            buf.put_u32_le(l.weights.cols() as u32);
            for &q in l.weights.data() {
                buf.put_i8(q);
            }
            magneto_tensor::serialize::encode_f32_vec(l.weights.scales(), &mut buf);
            magneto_tensor::serialize::encode_f32_vec(&l.bias, &mut buf);
        }
        buf.to_vec()
    }

    /// Decode bytes produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    /// [`NnError::Decode`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        use bytes::Buf;
        let mut buf = bytes::Bytes::copy_from_slice(bytes);
        if buf.remaining() < 8 {
            return Err(NnError::Decode("quantized header truncated".into()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"MGQ2" {
            return Err(NnError::Decode("bad quantized magic".into()));
        }
        let n_layers = buf.get_u32_le();
        if n_layers == 0 || n_layers > 1024 {
            return Err(NnError::Decode(format!(
                "implausible quantized layer count {n_layers}"
            )));
        }
        let mut layers: Vec<QuantizedDense> = Vec::with_capacity(n_layers as usize);
        for _ in 0..n_layers {
            if buf.remaining() < 9 {
                return Err(NnError::Decode("quantized layer header truncated".into()));
            }
            let activation = match buf.get_u8() {
                0 => Activation::Relu,
                1 => Activation::LeakyRelu,
                2 => Activation::Sigmoid,
                3 => Activation::Tanh,
                4 => Activation::Identity,
                other => {
                    return Err(NnError::Decode(format!("unknown activation {other}")))
                }
            };
            let rows = buf.get_u32_le() as usize;
            let cols = buf.get_u32_le() as usize;
            if rows == 0 || cols == 0 || rows > 1_000_000 || cols > 1_000_000 {
                return Err(NnError::Decode("implausible quantized dims".into()));
            }
            let n = rows * cols;
            if buf.remaining() < n {
                return Err(NnError::Decode("quantized weights truncated".into()));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_i8());
            }
            let scales = magneto_tensor::serialize::decode_f32_vec(&mut buf)
                .map_err(NnError::Tensor)?;
            if scales.len() != cols {
                return Err(NnError::Decode("quantized scale length mismatch".into()));
            }
            let bias = magneto_tensor::serialize::decode_f32_vec(&mut buf)
                .map_err(NnError::Tensor)?;
            if bias.len() != cols {
                return Err(NnError::Decode("quantized bias length mismatch".into()));
            }
            // Layers must chain like an f32 MLP.
            if let Some(prev) = layers.last() {
                if prev.out_dim() != rows {
                    return Err(NnError::Decode(format!(
                        "quantized layer chain break: {} -> {rows}",
                        prev.out_dim()
                    )));
                }
            }
            layers.push(QuantizedDense {
                weights: QuantMatrix::from_parts(rows, cols, data, scales)
                    .map_err(NnError::Tensor)?,
                bias,
                activation,
            });
        }
        Ok(QuantizedMlp { layers })
    }

    /// Mean absolute weight error introduced by quantisation.
    ///
    /// # Errors
    /// [`NnError::Decode`] on internal inconsistency.
    pub fn quantization_error(&self, original: &Mlp) -> Result<f32> {
        let restored = self.dequantize()?;
        let mut total = 0.0f64;
        let mut count = 0usize;
        for (a, b) in original.layers().iter().zip(restored.layers().iter()) {
            for (&x, &y) in a.weights.as_slice().iter().zip(b.weights.as_slice().iter()) {
                total += f64::from((x - y).abs());
                count += 1;
            }
        }
        Ok((total / count.max(1) as f64) as f32)
    }
}

impl QuantizedSiamese {
    /// Quantise a Siamese network, keeping the margin.
    ///
    /// # Errors
    /// [`NnError::Tensor`] only on a degenerate layer.
    pub fn quantize(net: &SiameseNetwork) -> Result<Self> {
        Ok(QuantizedSiamese {
            backbone: QuantizedMlp::quantize(net.backbone())?,
            margin: net.margin,
        })
    }

    /// Assemble from a decoded backbone plus margin (bundle decode).
    pub fn from_parts(backbone: QuantizedMlp, margin: f32) -> Self {
        QuantizedSiamese { backbone, margin }
    }

    /// Reconstruct the f32 network (lossy round trip through int8).
    ///
    /// # Errors
    /// [`NnError::Decode`] only on internal inconsistency.
    pub fn dequantize(&self) -> Result<SiameseNetwork> {
        Ok(SiameseNetwork::new(self.backbone.dequantize()?, self.margin))
    }

    /// The int8 backbone.
    pub fn backbone(&self) -> &QuantizedMlp {
        &self.backbone
    }

    /// Embed a batch of feature rows through the int8 path.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed(&self, features: &Matrix) -> Result<Matrix> {
        self.backbone.forward(features)
    }

    /// Embed a batch into a caller-owned output, drawing scratch from
    /// `ws` — the int8 twin of [`SiameseNetwork::embed_into`].
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_into(&self, features: &Matrix, out: &mut Matrix, ws: &mut Workspace) -> Result<()> {
        self.backbone.forward_into(features, out, ws)
    }

    /// Embed one feature vector.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_one(&self, features: &[f32]) -> Result<Vec<f32>> {
        self.backbone.embed_one(features)
    }

    /// Bytes needed to keep the quantised parameters resident.
    pub fn stored_bytes(&self) -> usize {
        self.backbone.stored_bytes()
    }

    /// `true` when every float parameter (scales, biases, margin) is
    /// finite.
    pub fn all_finite(&self) -> bool {
        self.margin.is_finite() && self.backbone.all_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::{KernelPlan, SeededRng};

    fn net(seed: u64) -> Mlp {
        Mlp::new(&[8, 16, 4], &mut SeededRng::new(seed)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_architecture() {
        let m = net(1);
        let q = QuantizedMlp::quantize(&m).unwrap();
        let back = q.dequantize().unwrap();
        assert_eq!(back.dims(), m.dims());
        assert_eq!(q.dims(), m.dims());
        assert_eq!(q.param_count(), m.param_count());
        assert_eq!(back.layers()[0].activation, m.layers()[0].activation);
    }

    #[test]
    fn quantization_error_is_small() {
        let m = net(2);
        let q = QuantizedMlp::quantize(&m).unwrap();
        let err = q.quantization_error(&m).unwrap();
        // Max |w| / 254 is the theoretical mean bound for symmetric int8;
        // per-channel scales can only tighten it.
        let bound = m
            .layers()
            .iter()
            .map(|l| l.weights.max_abs())
            .fold(0.0f32, f32::max)
            / 127.0;
        assert!(err <= bound, "err {err} vs bound {bound}");
        assert!(err > 0.0);
    }

    #[test]
    fn embeddings_survive_quantization() {
        let m = net(3);
        let q = QuantizedMlp::quantize(&m).unwrap();
        let back = q.dequantize().unwrap();
        let x = Matrix::filled(4, 8, 0.5);
        let orig = m.forward(&x).unwrap();
        let quant = back.forward(&x).unwrap();
        let rel = orig.sub(&quant).unwrap().frobenius_norm() / orig.frobenius_norm().max(1e-9);
        assert!(rel < 0.05, "relative embedding drift {rel}");
    }

    #[test]
    fn int8_forward_tracks_f32_forward() {
        let m = net(10);
        let q = QuantizedMlp::quantize(&m).unwrap();
        let mut rng = SeededRng::new(11);
        let data: Vec<f32> = (0..6 * 8).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let x = Matrix::from_vec(6, 8, data).unwrap();
        let f32_out = m.forward(&x).unwrap();
        let q_out = q.forward(&x).unwrap();
        assert_eq!(q_out.shape(), f32_out.shape());
        let rel = f32_out.sub(&q_out).unwrap().frobenius_norm()
            / f32_out.frobenius_norm().max(1e-9);
        assert!(rel < 0.1, "int8 forward drift {rel}");
    }

    #[test]
    fn int8_forward_bit_identical_across_pool_sizes() {
        let m = net(12);
        let q = QuantizedMlp::quantize(&m).unwrap();
        let mut rng = SeededRng::new(13);
        let data: Vec<f32> = (0..32 * 8).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let x = Matrix::from_vec(32, 8, data).unwrap();
        let plan = KernelPlan {
            par_min_rows: 8,
            i8_tiled_min_rows: 8,
            ..KernelPlan::inline()
        };
        let mut ws = Workspace::with_exec(Exec::from_plan(plan));
        let mut base = Matrix::default();
        q.forward_into(&x, &mut base, &mut ws).unwrap();
        for threads in [2usize, 8] {
            let mut ws_t = Workspace::with_exec(Exec::from_plan(plan.with_threads(threads)));
            let mut out = Matrix::default();
            q.forward_into(&x, &mut out, &mut ws_t).unwrap();
            assert_eq!(out, base, "threads={threads}");
        }
    }

    #[test]
    fn storage_is_roughly_quarter_of_f32() {
        let m = net(4);
        let q = QuantizedMlp::quantize(&m).unwrap();
        let f32_bytes = m.param_bytes();
        let q_bytes = q.stored_bytes();
        assert!(
            (q_bytes as f64) < (f32_bytes as f64) * 0.45,
            "quantised {q_bytes} vs f32 {f32_bytes}"
        );
    }

    #[test]
    fn paper_backbone_quantizes_under_one_mb() {
        let m = Mlp::paper_backbone(&mut SeededRng::new(5)).unwrap();
        let q = QuantizedMlp::quantize(&m).unwrap();
        let mb = q.stored_bytes() as f64 / (1024.0 * 1024.0);
        assert!(mb < 1.0, "quantised backbone {mb:.2} MiB");
    }

    #[test]
    fn zero_weights_do_not_divide_by_zero() {
        let mut m = net(6);
        for l in m.layers_mut() {
            l.weights.scale_inplace(0.0);
        }
        let q = QuantizedMlp::quantize(&m).unwrap();
        let back = q.dequantize().unwrap();
        assert!(back.layers()[0].weights.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn serde_roundtrip() {
        let q = QuantizedMlp::quantize(&net(7)).unwrap();
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantizedMlp = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn binary_roundtrip_exact() {
        let q = QuantizedMlp::quantize(&net(8)).unwrap();
        let bytes = q.to_bytes();
        let back = QuantizedMlp::from_bytes(&bytes).unwrap();
        assert_eq!(q, back);
        // Binary size tracks stored_bytes closely (header + per-layer
        // framing only).
        assert!(bytes.len() <= q.stored_bytes() + 64);
    }

    #[test]
    fn binary_rejects_corruption() {
        let q = QuantizedMlp::quantize(&net(9)).unwrap();
        let good = q.to_bytes();
        let mut bad = good.clone();
        bad[0] = b'Z';
        assert!(QuantizedMlp::from_bytes(&bad).is_err());
        assert!(QuantizedMlp::from_bytes(&good[..good.len() - 2]).is_err());
        assert!(QuantizedMlp::from_bytes(&[]).is_err());
    }

    #[test]
    fn binary_rejects_truncation_at_every_prefix() {
        let q = QuantizedMlp::quantize(&net(14)).unwrap();
        let good = q.to_bytes();
        for len in 0..good.len() {
            assert!(
                QuantizedMlp::from_bytes(&good[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn quantized_siamese_roundtrip_and_embed() {
        let mut rng = SeededRng::new(15);
        let net = SiameseNetwork::new(Mlp::new(&[8, 16, 4], &mut rng).unwrap(), 1.25);
        let q = QuantizedSiamese::quantize(&net).unwrap();
        assert_eq!(q.margin, 1.25);
        let back = q.dequantize().unwrap();
        assert_eq!(back.margin, 1.25);
        assert_eq!(back.backbone().dims(), net.backbone().dims());
        let x = Matrix::filled(3, 8, 0.4);
        let e = q.embed(&x).unwrap();
        assert_eq!(e.shape(), (3, 4));
        assert_eq!(q.embed_one(&[0.4; 8]).unwrap().len(), 4);
        let mut out = Matrix::default();
        let mut ws = Workspace::new();
        q.embed_into(&x, &mut out, &mut ws).unwrap();
        assert_eq!(out, e);
    }
}
