//! Epoch-level training loop with divergence guards and loss history.
//!
//! Used for both Cloud pre-training (many epochs, no teacher) and
//! on-device incremental updates (few epochs, frozen teacher, distillation
//! weight > 0).

use crate::error::NnError;
use crate::network::Mlp;
use crate::optimizer::{Adam, Optimizer};
use crate::pairs::{sample_balanced_batch, sample_pairs};
use crate::siamese::{SiameseNetwork, TrainScratch};
use crate::Result;
use magneto_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Which contrastive objective the Siamese training loop optimises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Pairwise (Hadsell–Chopra) contrastive loss on sampled pairs — the
    /// classic Siamese formulation and the default.
    #[default]
    Pairwise,
    /// Supervised contrastive (Khosla et al. \[9\]) on class-balanced
    /// batches of L2-normalised embeddings.
    SupCon {
        /// Softmax temperature τ (0.1–0.5 is typical).
        temperature: f32,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of passes over the pair budget.
    pub epochs: usize,
    /// Pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Pairs per optimisation step.
    pub batch_pairs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Multiplicative LR decay applied after each epoch.
    pub lr_decay: f32,
    /// Weight of the distillation term (0 disables even with a teacher).
    pub distill_weight: f32,
    /// Gradient clipping threshold (0 disables).
    pub grad_clip: f32,
    /// Seed for pair sampling.
    pub seed: u64,
    /// Contrastive objective.
    pub objective: Objective,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 20,
            pairs_per_epoch: 2048,
            batch_pairs: 128,
            learning_rate: 1e-3,
            lr_decay: 0.97,
            distill_weight: 0.0,
            grad_clip: 5.0,
            seed: 0,
            objective: Objective::Pairwise,
        }
    }
}

impl TrainerConfig {
    /// Configuration shaped like on-device incremental updates: few
    /// epochs, smaller batches, distillation enabled.
    pub fn edge_update() -> Self {
        TrainerConfig {
            epochs: 8,
            pairs_per_epoch: 512,
            batch_pairs: 64,
            learning_rate: 5e-4,
            lr_decay: 0.95,
            distill_weight: 4.0,
            grad_clip: 5.0,
            seed: 0,
            objective: Objective::Pairwise,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean contrastive loss per epoch.
    pub contrastive_losses: Vec<f32>,
    /// Mean (weighted) distillation loss per epoch.
    pub distillation_losses: Vec<f32>,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Total optimisation steps taken.
    pub steps: usize,
}

impl TrainingReport {
    /// Final epoch's mean loss, `None` when no epoch ran.
    ///
    /// Callers that want a printable value can
    /// `.unwrap_or(f32::NAN)`; forcing the `Option` through the API
    /// keeps "zero epochs" from masquerading as a numeric loss.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

/// Train a Siamese network on labelled feature rows.
///
/// `teacher` enables the joint contrastive + distillation objective used
/// for edge updates (§3.3): the teacher is the frozen pre-update backbone.
///
/// # Errors
/// [`NnError::InvalidBatch`] on empty/misaligned data,
/// [`NnError::Diverged`] if the loss or weights go non-finite.
pub fn train_siamese(
    net: &mut SiameseNetwork,
    features: &Matrix,
    labels: &[usize],
    teacher: Option<&Mlp>,
    config: &TrainerConfig,
) -> Result<TrainingReport> {
    train_siamese_masked(net, features, labels, teacher, None, config)
}

/// [`train_siamese`] with a per-sample distillation mask (see
/// [`SiameseNetwork::train_step_masked`]): only rows where
/// `distill_mask[r]` is `true` are anchored to the teacher. Incremental
/// learning passes the old-class rows here.
///
/// # Errors
/// As [`train_siamese`], plus an invalid mask length.
pub fn train_siamese_masked(
    net: &mut SiameseNetwork,
    features: &Matrix,
    labels: &[usize],
    teacher: Option<&Mlp>,
    distill_mask: Option<&[bool]>,
    config: &TrainerConfig,
) -> Result<TrainingReport> {
    // One scratch arena for the whole run: after the first step warms it,
    // every later step reuses the same buffers (see TrainScratch). The
    // default scratch runs on the process-wide execution context, so an
    // installed autotuned plan parallelises this loop automatically.
    let mut scratch = TrainScratch::new();
    train_siamese_masked_with(net, features, labels, teacher, distill_mask, config, &mut scratch)
}

/// [`train_siamese_masked`] drawing every temporary from a caller-owned
/// [`TrainScratch`]. The scratch also fixes the execution context
/// (kernel plan + thread pool) the GEMMs run on — results are
/// bit-identical at any thread count, so context choice is purely a
/// throughput decision.
///
/// # Errors
/// As [`train_siamese_masked`].
pub fn train_siamese_masked_with(
    net: &mut SiameseNetwork,
    features: &Matrix,
    labels: &[usize],
    teacher: Option<&Mlp>,
    distill_mask: Option<&[bool]>,
    config: &TrainerConfig,
    scratch: &mut TrainScratch,
) -> Result<TrainingReport> {
    if features.rows() != labels.len() || features.rows() == 0 {
        return Err(NnError::InvalidBatch(format!(
            "{} feature rows vs {} labels",
            features.rows(),
            labels.len()
        )));
    }
    let mut rng = SeededRng::new(config.seed);
    let mut optimizer = Adam::new(config.learning_rate);
    let mut report = TrainingReport {
        epoch_losses: Vec::with_capacity(config.epochs),
        contrastive_losses: Vec::with_capacity(config.epochs),
        distillation_losses: Vec::with_capacity(config.epochs),
        epochs_run: 0,
        steps: 0,
    };
    let teacher_arg = teacher.map(|t| (t, config.distill_weight));
    for epoch in 0..config.epochs {
        let mut epoch_total = 0.0f32;
        let mut epoch_contrastive = 0.0f32;
        let mut epoch_distill = 0.0f32;
        let mut batches = 0usize;
        let mut run_step = |loss: crate::siamese::StepLoss,
                            batches: &mut usize,
                            steps: &mut usize| {
            epoch_total += loss.total();
            epoch_contrastive += loss.contrastive;
            epoch_distill += loss.distillation;
            *batches += 1;
            *steps += 1;
        };
        match config.objective {
            Objective::Pairwise => {
                let pairs = sample_pairs(labels, config.pairs_per_epoch, &mut rng);
                if pairs.is_empty() {
                    return Err(NnError::InvalidBatch(
                        "no trainable pairs (single sample?)".into(),
                    ));
                }
                for chunk in pairs.chunks(config.batch_pairs.max(1)) {
                    let loss = net.train_step_masked_with(
                        features,
                        chunk,
                        &mut optimizer,
                        teacher_arg,
                        distill_mask,
                        config.grad_clip,
                        scratch,
                    )?;
                    run_step(loss, &mut batches, &mut report.steps);
                }
            }
            Objective::SupCon { temperature } => {
                let batch_size = config.batch_pairs.max(2);
                let steps_per_epoch =
                    (config.pairs_per_epoch / batch_size).max(1);
                for _ in 0..steps_per_epoch {
                    let batch = sample_balanced_batch(labels, batch_size, &mut rng);
                    if batch.is_empty() {
                        return Err(NnError::InvalidBatch("no samples to batch".into()));
                    }
                    let loss = net.train_step_supcon_with(
                        features,
                        labels,
                        &batch,
                        &mut optimizer,
                        teacher_arg,
                        distill_mask,
                        temperature,
                        config.grad_clip,
                        scratch,
                    )?;
                    run_step(loss, &mut batches, &mut report.steps);
                }
            }
        }
        let denom = batches.max(1) as f32;
        let mean_loss = epoch_total / denom;
        if !mean_loss.is_finite() || !net.backbone().all_finite() {
            return Err(NnError::Diverged { epoch });
        }
        report.epoch_losses.push(mean_loss);
        report.contrastive_losses.push(epoch_contrastive / denom);
        report.distillation_losses.push(epoch_distill / denom);
        report.epochs_run += 1;
        optimizer.set_learning_rate(optimizer.learning_rate() * config.lr_decay);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize, classes: usize, dim: usize, sep: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            for _ in 0..n_per_class {
                let row: Vec<f32> = (0..dim)
                    .map(|d| rng.normal_with(if d % classes == c { sep } else { 0.0 }, 1.0))
                    .collect();
                rows.push(row);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn small_net(seed: u64) -> SiameseNetwork {
        let mut rng = SeededRng::new(seed);
        SiameseNetwork::new(Mlp::new(&[6, 16, 8], &mut rng).unwrap(), 1.0)
    }

    fn fast_config() -> TrainerConfig {
        TrainerConfig {
            epochs: 10,
            pairs_per_epoch: 128,
            batch_pairs: 32,
            learning_rate: 3e-3,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (features, labels) = blobs(20, 3, 6, 2.5, 1);
        let mut net = small_net(2);
        let report = train_siamese(&mut net, &features, &labels, None, &fast_config()).unwrap();
        assert_eq!(report.epochs_run, 10);
        assert_eq!(report.epoch_losses.len(), 10);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0] * 0.7,
            "losses: {:?}",
            report.epoch_losses
        );
        assert!(report.steps >= 10 * 4);
        // No teacher -> zero distillation loss throughout.
        assert!(report.distillation_losses.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn distillation_losses_recorded_with_teacher() {
        let (features, labels) = blobs(15, 2, 6, 2.0, 3);
        let mut net = small_net(4);
        let teacher = small_net(5).into_backbone();
        let config = TrainerConfig {
            distill_weight: 1.0,
            ..fast_config()
        };
        let report =
            train_siamese(&mut net, &features, &labels, Some(&teacher), &config).unwrap();
        assert!(report.distillation_losses.iter().any(|&l| l > 0.0));
        // Contrastive + distillation == total (per epoch).
        for i in 0..report.epochs_run {
            let sum = report.contrastive_losses[i] + report.distillation_losses[i];
            assert!((sum - report.epoch_losses[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn rejects_misaligned_inputs() {
        let (features, mut labels) = blobs(5, 2, 6, 1.0, 6);
        labels.pop();
        let mut net = small_net(7);
        assert!(matches!(
            train_siamese(&mut net, &features, &labels, None, &fast_config()),
            Err(NnError::InvalidBatch(_))
        ));
        let empty = Matrix::zeros(0, 6);
        assert!(train_siamese(&mut net, &empty, &[], None, &fast_config()).is_err());
    }

    #[test]
    fn divergence_is_detected() {
        // A NaN feature (corrupt sensor input that slipped past the
        // extractor) must abort training with `Diverged`, never silently
        // produce a NaN model.
        let (mut features, labels) = blobs(10, 2, 6, 2.0, 8);
        features.set(3, 2, f32::NAN);
        let mut net = small_net(9);
        let result = train_siamese(&mut net, &features, &labels, None, &fast_config());
        assert!(
            matches!(result, Err(NnError::Diverged { epoch: 0 })),
            "expected divergence, got {result:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (features, labels) = blobs(10, 2, 6, 2.0, 10);
        let mut a = small_net(11);
        let mut b = small_net(11);
        let ra = train_siamese(&mut a, &features, &labels, None, &fast_config()).unwrap();
        let rb = train_siamese(&mut b, &features, &labels, None, &fast_config()).unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_update_preset_is_distilled() {
        let cfg = TrainerConfig::edge_update();
        assert!(cfg.distill_weight > 0.0);
        assert!(cfg.epochs < TrainerConfig::default().epochs);
    }

    #[test]
    fn supcon_objective_trains_and_separates() {
        let (features, labels) = blobs(20, 3, 6, 2.5, 30);
        let mut net = small_net(31);
        let config = TrainerConfig {
            objective: Objective::SupCon { temperature: 0.3 },
            learning_rate: 2e-3,
            ..fast_config()
        };
        let report = train_siamese(&mut net, &features, &labels, None, &config).unwrap();
        assert_eq!(report.epochs_run, config.epochs);
        assert!(
            report.final_loss().unwrap() < report.epoch_losses[0],
            "losses {:?}",
            report.epoch_losses
        );
        // Embeddings separate by class (cosine, since SupCon normalises).
        let emb = net.embed(&features).unwrap();
        let mut within = 0.0f32;
        let mut across = 0.0f32;
        let mut wn = 0;
        let mut an = 0;
        for i in 0..labels.len() {
            for j in (i + 1)..labels.len() {
                let d = magneto_tensor::vector::cosine_distance(emb.row(i), emb.row(j));
                if labels[i] == labels[j] {
                    within += d;
                    wn += 1;
                } else {
                    across += d;
                    an += 1;
                }
            }
        }
        let within = within / wn as f32;
        let across = across / an as f32;
        assert!(
            across > within * 1.5,
            "within {within}, across {across}"
        );
    }

    #[test]
    fn supcon_with_teacher_records_distillation() {
        let (features, labels) = blobs(10, 2, 6, 2.0, 32);
        let mut net = small_net(33);
        let teacher = small_net(34).into_backbone();
        let config = TrainerConfig {
            objective: Objective::SupCon { temperature: 0.3 },
            distill_weight: 1.0,
            epochs: 4,
            ..fast_config()
        };
        let report =
            train_siamese(&mut net, &features, &labels, Some(&teacher), &config).unwrap();
        assert!(report.distillation_losses.iter().any(|&l| l > 0.0));
    }

    #[test]
    fn empty_report_final_loss_is_none() {
        let r = TrainingReport {
            epoch_losses: vec![],
            contrastive_losses: vec![],
            distillation_losses: vec![],
            epochs_run: 0,
            steps: 0,
        };
        assert_eq!(r.final_loss(), None);
    }

    #[test]
    fn final_loss_is_last_epoch_mean() {
        let r = TrainingReport {
            epoch_losses: vec![0.9, 0.4, 0.25],
            contrastive_losses: vec![0.9, 0.4, 0.25],
            distillation_losses: vec![0.0, 0.0, 0.0],
            epochs_run: 3,
            steps: 12,
        };
        assert_eq!(r.final_loss(), Some(0.25));
    }

    #[test]
    fn external_scratch_matches_internal_path_bitwise() {
        let (features, labels) = blobs(10, 2, 6, 2.0, 40);
        let mut a = small_net(41);
        let mut b = small_net(41);
        let ra =
            train_siamese_masked(&mut a, &features, &labels, None, None, &fast_config()).unwrap();
        let mut scratch = TrainScratch::with_exec(magneto_tensor::Exec::inline());
        let rb = train_siamese_masked_with(
            &mut b,
            &features,
            &labels,
            None,
            None,
            &fast_config(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(a, b);
    }
}
