//! # magneto-nn
//!
//! From-scratch neural-network substrate for MAGNETO.
//!
//! The paper's learner (§3.2 item 2): "a Siamese Network-based model with
//! contrastive loss is designed, which learns a class-separable embedding
//! space. The backbone model is a simple Fully Connected (FC) neural
//! network with dimensions [1024×512×128×64×128]". On-device updates
//! jointly optimise "Contrastive and Distillation Loss" (§3.3) to fight
//! catastrophic forgetting.
//!
//! No Rust deep-learning crate is available offline, so this crate builds
//! the whole stack by hand:
//!
//! * [`activation`] — ReLU family with exact derivatives;
//! * [`layer`] — dense layers with manual backprop;
//! * [`network`] — the MLP backbone (any layer widths; the paper's
//!   `80→1024→512→128→64→128` is the default);
//! * [`loss`] — pairwise contrastive loss (Hadsell–Chopra form, which is
//!   what a Siamese network trains on), embedding-level distillation loss
//!   (Hinton-style teacher–student, applied to embeddings as in the
//!   companion paper), and softmax cross-entropy for baseline heads;
//! * [`optimizer`] — SGD with momentum and Adam;
//! * [`pairs`] — balanced positive/negative pair sampling;
//! * [`siamese`] — the Siamese wrapper: one shared backbone, two-view
//!   batches, optional frozen teacher;
//! * [`trainer`] — epoch loop with loss history and divergence guards;
//! * [`quantize`] — post-training 8-bit weight quantisation (for the
//!   < 5 MB footprint budget) *and* the int8 forward path that runs
//!   inference directly on the quantised weights;
//! * [`serialize`] — compact binary model encoding for the bundle.

pub mod activation;
pub mod error;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod pairs;
pub mod quantize;
pub mod serialize;
pub mod siamese;
pub mod trainer;

pub use activation::Activation;
pub use error::NnError;
pub use network::Mlp;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use quantize::{QuantizedMlp, QuantizedSiamese};
pub use siamese::SiameseNetwork;
pub use trainer::{TrainerConfig, TrainingReport};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;

/// The paper's backbone layout: 80 input features, hidden widths
/// 1024/512/128/64, and a 128-dimensional embedding.
pub const PAPER_BACKBONE: [usize; 6] = [80, 1024, 512, 128, 64, 128];
