//! Compact binary model encoding for the Cloud → Edge bundle.
//!
//! JSON would inflate the ~700k-parameter backbone severalfold; the bundle
//! uses the little-endian framing from `magneto-tensor::serialize` instead:
//!
//! ```text
//! model   := magic "MGNN" | u32 version | u32 n_layers | layer*
//! layer   := u8 activation | matrix weights | f32vec bias
//! ```

use crate::activation::Activation;
use crate::error::NnError;
use crate::layer::Dense;
use crate::network::Mlp;
use crate::Result;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use magneto_tensor::serialize as ts;

const MAGIC: &[u8; 4] = b"MGNN";
const VERSION: u32 = 1;

fn activation_code(a: Activation) -> u8 {
    match a {
        Activation::Relu => 0,
        Activation::LeakyRelu => 1,
        Activation::Sigmoid => 2,
        Activation::Tanh => 3,
        Activation::Identity => 4,
    }
}

fn activation_from_code(c: u8) -> Result<Activation> {
    Ok(match c {
        0 => Activation::Relu,
        1 => Activation::LeakyRelu,
        2 => Activation::Sigmoid,
        3 => Activation::Tanh,
        4 => Activation::Identity,
        other => return Err(NnError::Decode(format!("unknown activation code {other}"))),
    })
}

/// Encode a model to bytes.
pub fn encode_mlp(net: &Mlp) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(net.param_bytes() + 64);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(net.num_layers() as u32);
    for layer in net.layers() {
        buf.put_u8(activation_code(layer.activation));
        ts::encode_matrix(&layer.weights, &mut buf);
        ts::encode_f32_vec(&layer.bias, &mut buf);
    }
    buf.to_vec()
}

/// Decode a model previously written by [`encode_mlp`].
///
/// # Errors
/// [`NnError::Decode`] on bad magic/version/truncation, and
/// [`NnError::InvalidArchitecture`] if the decoded layers do not chain.
pub fn decode_mlp(bytes: &[u8]) -> Result<Mlp> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 12 {
        return Err(NnError::Decode("model header truncated".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(NnError::Decode("bad magic (not a MAGNETO model)".into()));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(NnError::Decode(format!(
            "unsupported model version {version} (expected {VERSION})"
        )));
    }
    let n_layers = buf.get_u32_le();
    if n_layers == 0 || n_layers > 1024 {
        return Err(NnError::Decode(format!("implausible layer count {n_layers}")));
    }
    let mut layers = Vec::with_capacity(n_layers as usize);
    for _ in 0..n_layers {
        if buf.remaining() < 1 {
            return Err(NnError::Decode("layer header truncated".into()));
        }
        let activation = activation_from_code(buf.get_u8())?;
        let weights = ts::decode_matrix(&mut buf).map_err(NnError::Tensor)?;
        let bias = ts::decode_f32_vec(&mut buf).map_err(NnError::Tensor)?;
        if bias.len() != weights.cols() {
            return Err(NnError::Decode(format!(
                "bias length {} does not match layer width {}",
                bias.len(),
                weights.cols()
            )));
        }
        layers.push(Dense {
            weights,
            bias,
            activation,
        });
    }
    Mlp::from_layers(layers)
}

/// Encoded size in bytes of a model under this framing.
pub fn encoded_size(net: &Mlp) -> usize {
    12 + net
        .layers()
        .iter()
        .map(|l| 1 + ts::matrix_encoded_size(&l.weights) + ts::f32_vec_encoded_size(&l.bias))
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::{Matrix, SeededRng};

    fn net(seed: u64) -> Mlp {
        Mlp::new(&[5, 9, 3], &mut SeededRng::new(seed)).unwrap()
    }

    #[test]
    fn roundtrip_is_exact() {
        let m = net(1);
        let bytes = encode_mlp(&m);
        assert_eq!(bytes.len(), encoded_size(&m));
        let back = decode_mlp(&bytes).unwrap();
        assert_eq!(m, back);
        // Behavioural identity too.
        let x = Matrix::filled(2, 5, 0.7);
        assert_eq!(m.forward(&x).unwrap(), back.forward(&x).unwrap());
    }

    #[test]
    fn paper_backbone_encoded_size_matches_expectation() {
        let m = Mlp::paper_backbone(&mut SeededRng::new(2)).unwrap();
        let bytes = encode_mlp(&m);
        // params * 4 plus a small framing overhead.
        assert!(bytes.len() >= m.param_bytes());
        assert!(bytes.len() < m.param_bytes() + 1024);
    }

    #[test]
    fn rejects_corruption() {
        let m = net(3);
        let good = encode_mlp(&m);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_mlp(&bad), Err(NnError::Decode(_))));

        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(decode_mlp(&bad).is_err());

        // Truncated.
        assert!(decode_mlp(&good[..good.len() - 3]).is_err());
        assert!(decode_mlp(&good[..8]).is_err());
        assert!(decode_mlp(&[]).is_err());
    }

    #[test]
    fn rejects_unknown_activation() {
        let m = net(4);
        let mut bytes = encode_mlp(&m);
        bytes[12] = 200; // first layer's activation code
        assert!(matches!(decode_mlp(&bytes), Err(NnError::Decode(_))));
    }

    #[test]
    fn rejects_zero_layers() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(0);
        assert!(decode_mlp(&buf).is_err());
    }

    #[test]
    fn activation_codes_roundtrip() {
        for a in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            assert_eq!(activation_from_code(activation_code(a)).unwrap(), a);
        }
        assert!(activation_from_code(17).is_err());
    }
}
