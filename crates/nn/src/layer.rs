//! Dense (fully-connected) layer with manual backprop.

use crate::activation::Activation;
use crate::Result;
use magneto_tensor::init::Initializer;
use magneto_tensor::{Exec, Matrix, SeededRng, TensorError, Workspace};
use serde::{Deserialize, Serialize};

/// A dense layer `y = act(x·W + b)` with `W: (in, out)`, `b: (out)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `(in_dim, out_dim)`.
    pub weights: Matrix,
    /// Bias vector, length `out_dim`.
    pub bias: Vec<f32>,
    /// Activation applied element-wise to the pre-activation.
    pub activation: Activation,
}

/// Cached forward state needed by the backward pass.
#[derive(Debug, Clone, Default)]
pub struct DenseCache {
    /// The layer input `x` (batch, in_dim).
    pub input: Matrix,
    /// Pre-activation `z = x·W + b` (batch, out_dim).
    pub pre_activation: Matrix,
}

/// Gradients for one layer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseGrad {
    /// `∂L/∂W`, same shape as the weights.
    pub dw: Matrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
}

impl DenseGrad {
    /// A zero gradient matching a layer's shapes.
    pub fn zeros_like(layer: &Dense) -> Self {
        DenseGrad {
            dw: Matrix::zeros(layer.weights.rows(), layer.weights.cols()),
            db: vec![0.0; layer.bias.len()],
        }
    }

    /// Accumulate another gradient (`self += other`).
    ///
    /// # Errors
    /// Shape mismatch between the gradients.
    pub fn accumulate(&mut self, other: &DenseGrad) -> Result<()> {
        self.dw.add_scaled_inplace(&other.dw, 1.0)?;
        for (a, b) in self.db.iter_mut().zip(other.db.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Scale the gradient in place.
    pub fn scale(&mut self, s: f32) {
        self.dw.scale_inplace(s);
        for v in &mut self.db {
            *v *= s;
        }
    }

    /// Largest absolute entry across weights and bias.
    pub fn max_abs(&self) -> f32 {
        self.dw
            .max_abs()
            .max(self.db.iter().fold(0.0f32, |m, v| m.max(v.abs())))
    }
}

impl Dense {
    /// Create a layer with He-initialised weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut SeededRng) -> Self {
        let init = match activation {
            Activation::Relu | Activation::LeakyRelu => Initializer::HeNormal,
            _ => Initializer::XavierUniform,
        };
        Dense {
            weights: init.init(in_dim, out_dim, rng),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    /// Forward pass, returning output and the cache for backprop.
    ///
    /// # Errors
    /// Shape mismatch if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Matrix) -> Result<(Matrix, DenseCache)> {
        let mut cache = DenseCache::default();
        let mut out = Matrix::default();
        self.forward_into(x, &mut cache, &mut out)?;
        Ok((out, cache))
    }

    /// Forward pass writing the output into `out` and the backprop state
    /// into `cache`, reusing both allocations across calls. Batched
    /// inputs automatically hit the register-tiled matmul kernel.
    ///
    /// # Errors
    /// Shape mismatch if `x.cols() != in_dim`.
    pub fn forward_into(&self, x: &Matrix, cache: &mut DenseCache, out: &mut Matrix) -> Result<()> {
        self.forward_into_exec(x, cache, out, &Exec::inline())
    }

    /// [`Dense::forward_into`] on an explicit compute context: the
    /// matmul + bias run as one fused, row-panel-parallel kernel (the
    /// pre-activation must be materialised for backprop, so only the
    /// activation stays a separate pass). Bit-identical to the
    /// sequential path at any thread count.
    ///
    /// # Errors
    /// Shape mismatch if `x.cols() != in_dim`.
    pub fn forward_into_exec(
        &self,
        x: &Matrix,
        cache: &mut DenseCache,
        out: &mut Matrix,
        exec: &Exec,
    ) -> Result<()> {
        cache.input.copy_from(x);
        x.matmul_bias_act_into_exec(
            &self.weights,
            &self.bias,
            |v| v,
            &mut cache.pre_activation,
            exec,
        )?;
        let act = self.activation;
        out.copy_from(&cache.pre_activation);
        out.map_inplace(|v| act.apply(v));
        Ok(())
    }

    /// Forward pass without caching (inference).
    ///
    /// # Errors
    /// Shape mismatch if `x.cols() != in_dim`.
    pub fn infer(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::default();
        self.infer_into(x, &mut out)?;
        Ok(out)
    }

    /// Inference forward pass writing into a caller-owned output. Batched
    /// inputs automatically hit the register-tiled matmul kernel.
    ///
    /// # Errors
    /// Shape mismatch if `x.cols() != in_dim`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        self.infer_into_exec(x, out, &Exec::inline())
    }

    /// [`Dense::infer_into`] on an explicit compute context: matmul,
    /// bias broadcast and activation fused into one row-panel-parallel
    /// pass over the output. Bit-identical to the sequential path at
    /// any thread count.
    ///
    /// # Errors
    /// Shape mismatch if `x.cols() != in_dim`.
    pub fn infer_into_exec(&self, x: &Matrix, out: &mut Matrix, exec: &Exec) -> Result<()> {
        let act = self.activation;
        x.matmul_bias_act_into_exec(&self.weights, &self.bias, |v| act.apply(v), out, exec)?;
        Ok(())
    }

    /// Backward pass: given `∂L/∂out`, produce this layer's gradients and
    /// `∂L/∂input` for the previous layer.
    ///
    /// # Errors
    /// Shape mismatch between cache and upstream gradient.
    pub fn backward(&self, cache: &DenseCache, grad_out: &Matrix) -> Result<(DenseGrad, Matrix)> {
        let mut grad = DenseGrad::default();
        let mut dx = Matrix::default();
        let mut ws = Workspace::new();
        self.backward_into(cache, grad_out, &mut grad, &mut dx, &mut ws)?;
        Ok((grad, dx))
    }

    /// Backward pass writing the layer gradients into `grad` and the input
    /// gradient into `dx`, drawing the δ scratch matrix from `ws`. No
    /// transpose is materialised: `dW = xᵀ·δ` and `dX = δ·Wᵀ` use the
    /// transpose-aware kernels directly.
    ///
    /// # Errors
    /// Shape mismatch between cache and upstream gradient.
    pub fn backward_into(
        &self,
        cache: &DenseCache,
        grad_out: &Matrix,
        grad: &mut DenseGrad,
        dx: &mut Matrix,
        ws: &mut Workspace,
    ) -> Result<()> {
        if grad_out.shape() != cache.pre_activation.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "dense_backward",
                lhs: grad_out.shape(),
                rhs: cache.pre_activation.shape(),
            }
            .into());
        }
        // δ = grad_out ⊙ act'(z)
        let act = self.activation;
        let exec = ws.exec().clone();
        let mut delta = ws.take(grad_out.rows(), grad_out.cols());
        for (d, (&g, &z)) in delta.as_mut_slice().iter_mut().zip(
            grad_out
                .as_slice()
                .iter()
                .zip(cache.pre_activation.as_slice().iter()),
        ) {
            *d = g * act.derivative(z);
        }
        // dW = xᵀ · δ ; db = column sums of δ ; dX = δ · Wᵀ — both GEMMs
        // split over the workspace's compute pool.
        cache
            .input
            .transpose_matmul_into_exec(&delta, &mut grad.dw, &exec)?;
        grad.db.clear();
        grad.db.resize(delta.cols(), 0.0);
        for r in 0..delta.rows() {
            for (acc, &v) in grad.db.iter_mut().zip(delta.row(r).iter()) {
                *acc += v;
            }
        }
        delta.matmul_transpose_into_exec(&self.weights, dx, &exec)?;
        ws.give(delta);
        Ok(())
    }

    /// Make `self` an element-for-element copy of `src`, reusing
    /// `self`'s allocations — the allocation-free path behind
    /// [`crate::Mlp::copy_from`] (distillation-teacher snapshots).
    pub fn copy_from(&mut self, src: &Dense) {
        self.weights.copy_from(&src.weights);
        self.bias.clear();
        self.bias.extend_from_slice(&src.bias);
        self.activation = src.activation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(in_dim: usize, out_dim: usize, act: Activation) -> Dense {
        let mut rng = SeededRng::new(42);
        Dense::new(in_dim, out_dim, act, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let l = layer(4, 3, Activation::Relu);
        let x = Matrix::filled(5, 4, 0.5);
        let (out, cache) = l.forward(&x).unwrap();
        assert_eq!(out.shape(), (5, 3));
        assert_eq!(cache.input.shape(), (5, 4));
        assert_eq!(cache.pre_activation.shape(), (5, 3));
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 3);
        assert_eq!(l.param_count(), 15);
        // infer == forward output
        assert_eq!(l.infer(&x).unwrap(), out);
    }

    #[test]
    fn identity_layer_computes_affine() {
        let mut l = layer(2, 2, Activation::Identity);
        l.weights = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        l.bias = vec![10.0, 20.0];
        let x = Matrix::from_row(&[1.0, 1.0]);
        let (out, _) = l.forward(&x).unwrap();
        assert_eq!(out.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut l = layer(1, 2, Activation::Relu);
        l.weights = Matrix::from_vec(1, 2, vec![1.0, -1.0]).unwrap();
        l.bias = vec![0.0, 0.0];
        let (out, _) = l.forward(&Matrix::from_row(&[2.0])).unwrap();
        assert_eq!(out.as_slice(), &[2.0, 0.0]);
    }

    /// The canonical gradient check: analytic vs central finite
    /// differences on a tiny layer with a scalar loss `L = sum(out)`.
    #[test]
    fn gradient_check_weights_and_bias() {
        for act in [
            Activation::Identity,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::LeakyRelu,
        ] {
            let mut l = layer(3, 2, act);
            let x = Matrix::from_vec(2, 3, vec![0.5, -0.3, 0.8, -0.1, 0.9, 0.4]).unwrap();
            let (out, cache) = l.forward(&x).unwrap();
            // L = sum(out) -> grad_out = ones
            let grad_out = Matrix::filled(out.rows(), out.cols(), 1.0);
            let (grads, dx) = l.backward(&cache, &grad_out).unwrap();

            let eps = 1e-3f32;
            // Check a few weight entries.
            for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
                let orig = l.weights.get(r, c);
                l.weights.set(r, c, orig + eps);
                let up = l.infer(&x).unwrap().sum();
                l.weights.set(r, c, orig - eps);
                let down = l.infer(&x).unwrap().sum();
                l.weights.set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grads.dw.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "{act:?} dW[{r},{c}]: numeric {numeric}, analytic {analytic}"
                );
            }
            // Bias entries.
            for c in 0..2 {
                let orig = l.bias[c];
                l.bias[c] = orig + eps;
                let up = l.infer(&x).unwrap().sum();
                l.bias[c] = orig - eps;
                let down = l.infer(&x).unwrap().sum();
                l.bias[c] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - grads.db[c]).abs() < 2e-2,
                    "{act:?} db[{c}]"
                );
            }
            // Input gradient.
            let mut x2 = x.clone();
            let orig = x2.get(0, 1);
            x2.set(0, 1, orig + eps);
            let up = l.infer(&x2).unwrap().sum();
            x2.set(0, 1, orig - eps);
            let down = l.infer(&x2).unwrap().sum();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - dx.get(0, 1)).abs() < 2e-2,
                "{act:?} dX[0,1]"
            );
        }
    }

    #[test]
    fn grad_accumulate_and_scale() {
        let l = layer(2, 2, Activation::Identity);
        let mut g = DenseGrad::zeros_like(&l);
        let mut other = DenseGrad::zeros_like(&l);
        other.dw.set(0, 0, 2.0);
        other.db[1] = 4.0;
        g.accumulate(&other).unwrap();
        g.accumulate(&other).unwrap();
        assert_eq!(g.dw.get(0, 0), 4.0);
        assert_eq!(g.db[1], 8.0);
        g.scale(0.5);
        assert_eq!(g.dw.get(0, 0), 2.0);
        assert_eq!(g.db[1], 4.0);
        assert_eq!(g.max_abs(), 4.0);
    }

    #[test]
    fn forward_rejects_bad_input() {
        let l = layer(3, 2, Activation::Relu);
        assert!(l.forward(&Matrix::zeros(1, 4)).is_err());
        assert!(l.infer(&Matrix::zeros(1, 4)).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let l = layer(3, 2, Activation::Tanh);
        let json = serde_json::to_string(&l).unwrap();
        let back: Dense = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
