//! Activation functions with exact derivatives.

use serde::{Deserialize, Serialize};

/// Supported activations. The paper's backbone uses ReLU between hidden
/// layers and a linear (identity) embedding output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// `max(0, x)`.
    #[default]
    Relu,
    /// `x` for `x > 0`, else `0.01·x`.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear output layers).
    Identity,
}

impl Activation {
    /// Apply the activation to a scalar.
    #[inline]
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative with respect to the *pre-activation* `x`.
    #[inline]
    pub fn derivative(&self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Identity,
    ];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!((Activation::LeakyRelu.apply(-2.0) + 0.02).abs() < 1e-7);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-7);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-7);
        assert_eq!(Activation::Identity.apply(-7.5), -7.5);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-3f32;
        for act in ALL {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {x}: numeric {numeric}, analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_at_kink() {
        // We define the subgradient at 0 as 0 (standard choice).
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
        assert_eq!(Activation::LeakyRelu.derivative(0.0), 0.01);
    }

    #[test]
    fn sigmoid_saturates_without_nan() {
        assert!((Activation::Sigmoid.apply(100.0) - 1.0).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(-100.0) < 1e-6);
        assert!(Activation::Sigmoid.apply(-100.0).is_finite());
        assert!(Activation::Sigmoid.derivative(100.0).abs() < 1e-6);
    }

    #[test]
    fn default_is_relu() {
        assert_eq!(Activation::default(), Activation::Relu);
    }
}
