//! First-order optimisers: SGD with momentum, and Adam.
//!
//! On-device re-training works with tiny batches (a handful of support-set
//! exemplars plus the freshly recorded windows), where Adam's per-parameter
//! scaling is markedly more stable than plain SGD; both are provided so
//! the ablation benches can compare.

use crate::network::{Gradients, Mlp};
use crate::Result;
use magneto_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A stateful optimiser applying [`Gradients`] to an [`Mlp`].
pub trait Optimizer {
    /// Apply one update step. The optimiser may keep per-parameter state;
    /// it is keyed positionally, so always pass the same network.
    ///
    /// # Errors
    /// Shape mismatch between network and gradients.
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Option<Vec<(Matrix, Vec<f32>)>>,
}

impl Sgd {
    /// Create with a learning rate and momentum coefficient (0 disables).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) -> Result<()> {
        let velocity = self.velocity.get_or_insert_with(|| {
            net.layers()
                .iter()
                .map(|l| {
                    (
                        Matrix::zeros(l.weights.rows(), l.weights.cols()),
                        vec![0.0; l.bias.len()],
                    )
                })
                .collect()
        });
        for ((layer, grad), (vw, vb)) in net
            .layers_mut()
            .iter_mut()
            .zip(grads.layers.iter())
            .zip(velocity.iter_mut())
        {
            // v = µ·v − lr·g ; w += v
            vw.scale_inplace(self.momentum);
            vw.add_scaled_inplace(&grad.dw, -self.lr)?;
            layer.weights.add_scaled_inplace(vw, 1.0)?;
            for ((b, vb), g) in layer.bias.iter_mut().zip(vb.iter_mut()).zip(grad.db.iter()) {
                *vb = self.momentum * *vb - self.lr * g;
                *b += *vb;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    t: u64,
    state: Option<Vec<AdamLayerState>>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct AdamLayerState {
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

impl Adam {
    /// Create with the standard hyper-parameters (β₁=0.9, β₂=0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            state: None,
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) -> Result<()> {
        self.t += 1;
        let state = self.state.get_or_insert_with(|| {
            net.layers()
                .iter()
                .map(|l| AdamLayerState {
                    mw: Matrix::zeros(l.weights.rows(), l.weights.cols()),
                    vw: Matrix::zeros(l.weights.rows(), l.weights.cols()),
                    mb: vec![0.0; l.bias.len()],
                    vb: vec![0.0; l.bias.len()],
                })
                .collect()
        });
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for ((layer, grad), st) in net
            .layers_mut()
            .iter_mut()
            .zip(grads.layers.iter())
            .zip(state.iter_mut())
        {
            // Weights.
            let w = layer.weights.as_mut_slice();
            let g = grad.dw.as_slice();
            let mw = st.mw.as_mut_slice();
            let vw = st.vw.as_mut_slice();
            for i in 0..w.len() {
                mw[i] = b1 * mw[i] + (1.0 - b1) * g[i];
                vw[i] = b2 * vw[i] + (1.0 - b2) * g[i] * g[i];
                let m_hat = mw[i] / bc1;
                let v_hat = vw[i] / bc2;
                w[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            // Bias.
            for i in 0..layer.bias.len() {
                let gb = grad.db[i];
                st.mb[i] = b1 * st.mb[i] + (1.0 - b1) * gb;
                st.vb[i] = b2 * st.vb[i] + (1.0 - b2) * gb * gb;
                let m_hat = st.mb[i] / bc1;
                let v_hat = st.vb[i] / bc2;
                layer.bias[i] -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::SeededRng;

    /// Quadratic bowl: minimise ‖W·x − y‖² over a 1-layer linear net by
    /// looping forward/backward/step; both optimisers must converge.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut rng = SeededRng::new(1);
        let mut net = Mlp::new(&[2, 1], &mut rng).unwrap();
        let x = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5]).unwrap();
        let y = Matrix::from_vec(4, 1, vec![2.0, -1.0, 1.0, 1.5]).unwrap();
        let mut final_loss = f32::MAX;
        for _ in 0..500 {
            let cache = net.forward_cached(&x).unwrap();
            let diff = cache.output.sub(&y).unwrap();
            final_loss =
                diff.as_slice().iter().map(|v| v * v).sum::<f32>() / diff.rows() as f32;
            let grad = diff.scale(2.0 / diff.rows() as f32);
            let grads = net.backward(&cache, &grad).unwrap();
            opt.step(&mut net, &grads).unwrap();
        }
        final_loss
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.9);
        let loss = converges(&mut opt);
        assert!(loss < 1e-3, "SGD final loss {loss}");
    }

    #[test]
    fn sgd_without_momentum_also_converges() {
        let mut opt = Sgd::new(0.1, 0.0);
        let loss = converges(&mut opt);
        assert!(loss < 1e-2, "plain SGD final loss {loss}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let loss = converges(&mut opt);
        assert!(loss < 1e-3, "Adam final loss {loss}");
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut sgd = Sgd::new(0.1, 0.9);
        assert_eq!(sgd.learning_rate(), 0.1);
        sgd.set_learning_rate(0.01);
        assert_eq!(sgd.learning_rate(), 0.01);
        let mut adam = Adam::new(0.001);
        adam.set_learning_rate(0.002);
        assert_eq!(adam.learning_rate(), 0.002);
    }

    #[test]
    fn zero_gradient_is_noop_for_sgd() {
        let mut rng = SeededRng::new(2);
        let mut net = Mlp::new(&[3, 2], &mut rng).unwrap();
        let before = net.clone();
        let grads = Gradients::zeros_like(&net);
        let mut opt = Sgd::new(0.5, 0.0);
        opt.step(&mut net, &grads).unwrap();
        assert_eq!(net, before);
    }

    #[test]
    fn adam_step_magnitude_bounded_by_lr() {
        // Adam's per-parameter step is ≈ lr regardless of gradient scale.
        let mut rng = SeededRng::new(3);
        let mut net = Mlp::new(&[2, 2], &mut rng).unwrap();
        let before = net.layers()[0].weights.clone();
        let mut grads = Gradients::zeros_like(&net);
        grads.layers[0].dw = Matrix::filled(2, 2, 1e6); // enormous gradient
        let mut opt = Adam::new(0.01);
        opt.step(&mut net, &grads).unwrap();
        let after = &net.layers()[0].weights;
        for i in 0..4 {
            let delta = (after.as_slice()[i] - before.as_slice()[i]).abs();
            assert!(delta <= 0.011, "step {delta} exceeds lr bound");
        }
    }

    #[test]
    fn momentum_accelerates_along_consistent_gradient() {
        let mut rng = SeededRng::new(4);
        let mut net = Mlp::new(&[1, 1], &mut rng).unwrap();
        let mut grads = Gradients::zeros_like(&net);
        grads.layers[0].dw = Matrix::filled(1, 1, 1.0);
        let mut opt = Sgd::new(0.1, 0.9);
        let w0 = net.layers()[0].weights.get(0, 0);
        opt.step(&mut net, &grads).unwrap();
        let step1 = w0 - net.layers()[0].weights.get(0, 0);
        let w1 = net.layers()[0].weights.get(0, 0);
        opt.step(&mut net, &grads).unwrap();
        let step2 = w1 - net.layers()[0].weights.get(0, 0);
        assert!(step2 > step1 * 1.5, "momentum should grow steps");
    }
}
