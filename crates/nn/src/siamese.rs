//! The Siamese wrapper: one shared backbone, two-view batches, optional
//! frozen teacher.
//!
//! "For learning new data on the Edge … we adopt the same base model as
//! the Cloud Initialization, i.e., Siamese Network with contrastive loss
//! … To handle the Catastrophic Forgetting issue, we jointly optimize the
//! model with contrastive loss and distillation loss." (§3.3)

use crate::error::NnError;
use crate::loss::{contrastive_loss_into, distillation_loss_into};
use crate::network::{ForwardCache, Gradients, Mlp};
use crate::optimizer::Optimizer;
use crate::pairs::PairSample;
use crate::Result;
use magneto_tensor::{Exec, Matrix, SeededRng, Workspace};
use serde::{Deserialize, Serialize};

/// A Siamese network: a single backbone applied to both views of each
/// pair (weight sharing is implicit — there is only one set of weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiameseNetwork {
    backbone: Mlp,
    /// Contrastive margin `m`: dissimilar pairs are pushed at least this
    /// far apart in the embedding space.
    pub margin: f32,
}

/// Loss breakdown for one training step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepLoss {
    /// Contrastive component.
    pub contrastive: f32,
    /// Distillation component (already weighted).
    pub distillation: f32,
}

impl StepLoss {
    /// Total optimised loss.
    pub fn total(&self) -> f32 {
        self.contrastive + self.distillation
    }
}

/// Reusable scratch memory for training steps.
///
/// Owns every temporary a train step needs — the stacked input batch, the
/// forward cache, gradient storage and a [`Workspace`] for the kernels —
/// so that a trainer creating one `TrainScratch` before its epoch loop
/// performs no per-step heap allocation once shapes have stabilised.
#[derive(Debug, Default)]
pub struct TrainScratch {
    ws: Workspace,
    cache: ForwardCache,
    grads: Gradients,
    stacked: Matrix,
    emb_a: Matrix,
    emb_b: Matrix,
    grad_a: Matrix,
    grad_b: Matrix,
    grad_out: Matrix,
    teacher_emb: Matrix,
    distill_grad: Matrix,
}

impl TrainScratch {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        TrainScratch::default()
    }

    /// Scratch whose kernels run on the given execution context (thread
    /// pool + kernel plan). Training steps drawing from this scratch
    /// dispatch their GEMMs across the context's pool; results are
    /// bit-identical to the sequential path at any thread count.
    pub fn with_exec(exec: Exec) -> Self {
        let mut scratch = TrainScratch::default();
        scratch.ws.set_exec(exec);
        scratch
    }

    /// The execution context train steps using this scratch run on.
    pub fn exec(&self) -> &Exec {
        self.ws.exec()
    }

    /// The micro-kernel backend train-step GEMMs dispatch to (scalar /
    /// avx2 / neon) — surfaced for banners and telemetry.
    pub fn backend(&self) -> magneto_tensor::Backend {
        self.ws.backend()
    }

    /// Swap the execution context (e.g. after installing an autotuned
    /// global plan).
    pub fn set_exec(&mut self, exec: Exec) {
        self.ws.set_exec(exec);
    }
}

impl SiameseNetwork {
    /// Wrap a backbone with the given contrastive margin.
    pub fn new(backbone: Mlp, margin: f32) -> Self {
        SiameseNetwork { backbone, margin }
    }

    /// Build the paper's backbone (`80→1024→512→128→64→128`) with margin
    /// 1.0.
    ///
    /// # Errors
    /// Never for the fixed dims; fallible for uniformity.
    pub fn paper_default(rng: &mut SeededRng) -> Result<Self> {
        Ok(SiameseNetwork::new(Mlp::paper_backbone(rng)?, 1.0))
    }

    /// The shared backbone.
    pub fn backbone(&self) -> &Mlp {
        &self.backbone
    }

    /// Consume, returning the backbone.
    pub fn into_backbone(self) -> Mlp {
        self.backbone
    }

    /// Embed a batch of feature rows.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed(&self, features: &Matrix) -> Result<Matrix> {
        self.backbone.forward(features)
    }

    /// Embed a batch of feature rows into a caller-owned output matrix,
    /// drawing hidden-layer scratch from `ws` — the allocation-free path
    /// batch embedding and streaming inference run on.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_into(&self, features: &Matrix, out: &mut Matrix, ws: &mut Workspace) -> Result<()> {
        self.backbone.forward_into(features, out, ws)
    }

    /// Embed one feature vector.
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn embed_one(&self, features: &[f32]) -> Result<Vec<f32>> {
        self.backbone.embed_one(features)
    }

    /// One optimisation step on a batch of pairs.
    ///
    /// `features` holds all samples (one per row); `pairs` indexes into
    /// it. When `teacher` is provided, an embedding-distillation term with
    /// weight `distill_weight` is added over the rows referenced by the
    /// batch, anchoring the new embedding space to the pre-update one.
    ///
    /// Returns the loss breakdown at the sampled batch.
    ///
    /// # Errors
    /// [`NnError::InvalidBatch`] on empty pairs or out-of-range indices.
    pub fn train_step(
        &mut self,
        features: &Matrix,
        pairs: &[PairSample],
        optimizer: &mut dyn Optimizer,
        teacher: Option<(&Mlp, f32)>,
        grad_clip: f32,
    ) -> Result<StepLoss> {
        self.train_step_masked(features, pairs, optimizer, teacher, None, grad_clip)
    }

    /// [`train_step`](Self::train_step) with a per-sample distillation
    /// mask.
    ///
    /// `distill_mask[r]` says whether feature row `r` should be anchored
    /// to the teacher. During incremental learning the mask selects
    /// *old-class* rows only (Learning-without-Forgetting style): the
    /// teacher knows nothing useful about the brand-new class, and
    /// anchoring its rows would fight the contrastive term that is trying
    /// to carve out space for it.
    ///
    /// # Errors
    /// [`NnError::InvalidBatch`] on empty pairs, out-of-range indices or a
    /// mask of the wrong length.
    pub fn train_step_masked(
        &mut self,
        features: &Matrix,
        pairs: &[PairSample],
        optimizer: &mut dyn Optimizer,
        teacher: Option<(&Mlp, f32)>,
        distill_mask: Option<&[bool]>,
        grad_clip: f32,
    ) -> Result<StepLoss> {
        let mut scratch = TrainScratch::new();
        self.train_step_masked_with(
            features,
            pairs,
            optimizer,
            teacher,
            distill_mask,
            grad_clip,
            &mut scratch,
        )
    }

    /// [`train_step_masked`](Self::train_step_masked) drawing every
    /// temporary from a caller-owned [`TrainScratch`]. The pair batch is
    /// assembled by copying feature rows straight into the scratch's
    /// stacked `(2n, dim)` matrix and run through the backbone as a single
    /// batched matmul chain per layer.
    ///
    /// # Errors
    /// [`NnError::InvalidBatch`] on empty pairs, out-of-range indices or a
    /// mask of the wrong length.
    #[allow(clippy::too_many_arguments)] // mirrors train_step_masked
    pub fn train_step_masked_with(
        &mut self,
        features: &Matrix,
        pairs: &[PairSample],
        optimizer: &mut dyn Optimizer,
        teacher: Option<(&Mlp, f32)>,
        distill_mask: Option<&[bool]>,
        grad_clip: f32,
        scratch: &mut TrainScratch,
    ) -> Result<StepLoss> {
        if pairs.is_empty() {
            return Err(NnError::InvalidBatch("empty pair batch".into()));
        }
        if let Some(mask) = distill_mask {
            if mask.len() != features.rows() {
                return Err(NnError::InvalidBatch(format!(
                    "distill mask length {} != {} feature rows",
                    mask.len(),
                    features.rows()
                )));
            }
        }
        let n = pairs.len();
        for p in pairs {
            if p.i >= features.rows() || p.j >= features.rows() {
                return Err(NnError::InvalidBatch(format!(
                    "pair index ({}, {}) out of range for {} rows",
                    p.i,
                    p.j,
                    features.rows()
                )));
            }
        }
        let same: Vec<bool> = pairs.iter().map(|p| p.same).collect();

        // One forward pass over the stacked views; the backbone is shared,
        // so gradients from both views accumulate naturally. Rows are
        // copied directly into the reusable stacked batch — no
        // select_rows/vstack intermediates.
        scratch.stacked.resize(2 * n, features.cols());
        for (r, p) in pairs.iter().enumerate() {
            scratch.stacked.row_mut(r).copy_from_slice(features.row(p.i));
            scratch
                .stacked
                .row_mut(n + r)
                .copy_from_slice(features.row(p.j));
        }
        self.backbone
            .forward_cached_into(&scratch.stacked, &mut scratch.cache, &mut scratch.ws)?;

        let emb_dim = self.backbone.output_dim();
        scratch.emb_a.resize(n, emb_dim);
        scratch.emb_b.resize(n, emb_dim);
        for r in 0..n {
            scratch
                .emb_a
                .row_mut(r)
                .copy_from_slice(scratch.cache.output.row(r));
            scratch
                .emb_b
                .row_mut(r)
                .copy_from_slice(scratch.cache.output.row(n + r));
        }

        let c_loss = contrastive_loss_into(
            &scratch.emb_a,
            &scratch.emb_b,
            &same,
            self.margin,
            &mut scratch.grad_a,
            &mut scratch.grad_b,
        )?;
        scratch.grad_out.resize(2 * n, emb_dim);
        for r in 0..n {
            scratch
                .grad_out
                .row_mut(r)
                .copy_from_slice(scratch.grad_a.row(r));
            scratch
                .grad_out
                .row_mut(n + r)
                .copy_from_slice(scratch.grad_b.row(r));
        }

        let mut d_loss = 0.0f32;
        if let Some((teacher, weight)) = teacher {
            if weight > 0.0 {
                teacher.forward_into(&scratch.stacked, &mut scratch.teacher_emb, &mut scratch.ws)?;
                let dl = distillation_loss_into(
                    &scratch.cache.output,
                    &scratch.teacher_emb,
                    &mut scratch.distill_grad,
                )?;
                let mut effective = dl;
                if let Some(mask) = distill_mask {
                    // Zero the gradient (and discount the reported loss)
                    // for rows whose source sample is unmasked.
                    let mut kept = 0usize;
                    let sources = pairs.iter().map(|p| p.i).chain(pairs.iter().map(|p| p.j));
                    for (row, src) in sources.enumerate() {
                        if mask[src] {
                            kept += 1;
                        } else {
                            for v in scratch.distill_grad.row_mut(row) {
                                *v = 0.0;
                            }
                        }
                    }
                    effective = dl * kept as f32 / (2 * n) as f32;
                }
                d_loss = weight * effective;
                scratch
                    .grad_out
                    .add_scaled_inplace(&scratch.distill_grad, weight)?;
            }
        }

        self.backbone.backward_into(
            &scratch.cache,
            &scratch.grad_out,
            &mut scratch.grads,
            &mut scratch.ws,
        )?;
        if grad_clip > 0.0 {
            scratch.grads.clip(grad_clip);
        }
        optimizer.step(&mut self.backbone, &scratch.grads)?;
        Ok(StepLoss {
            contrastive: c_loss,
            distillation: d_loss,
        })
    }

    /// One optimisation step with the supervised contrastive objective
    /// (Khosla et al. \[9\]) on a class-balanced batch of row indices, with
    /// optional masked embedding distillation (same semantics as
    /// [`train_step_masked`](Self::train_step_masked)).
    ///
    /// # Errors
    /// [`NnError::InvalidBatch`] on an empty batch, out-of-range indices,
    /// or a wrong-length mask.
    #[allow(clippy::too_many_arguments)] // mirrors train_step_masked
    pub fn train_step_supcon(
        &mut self,
        features: &Matrix,
        labels: &[usize],
        batch: &[usize],
        optimizer: &mut dyn Optimizer,
        teacher: Option<(&Mlp, f32)>,
        distill_mask: Option<&[bool]>,
        temperature: f32,
        grad_clip: f32,
    ) -> Result<StepLoss> {
        let mut scratch = TrainScratch::new();
        self.train_step_supcon_with(
            features,
            labels,
            batch,
            optimizer,
            teacher,
            distill_mask,
            temperature,
            grad_clip,
            &mut scratch,
        )
    }

    /// [`train_step_supcon`](Self::train_step_supcon) drawing every
    /// temporary from a caller-owned [`TrainScratch`].
    ///
    /// # Errors
    /// [`NnError::InvalidBatch`] on an empty batch, out-of-range indices,
    /// or a wrong-length mask.
    #[allow(clippy::too_many_arguments)] // mirrors train_step_supcon
    pub fn train_step_supcon_with(
        &mut self,
        features: &Matrix,
        labels: &[usize],
        batch: &[usize],
        optimizer: &mut dyn Optimizer,
        teacher: Option<(&Mlp, f32)>,
        distill_mask: Option<&[bool]>,
        temperature: f32,
        grad_clip: f32,
        scratch: &mut TrainScratch,
    ) -> Result<StepLoss> {
        if batch.is_empty() {
            return Err(NnError::InvalidBatch("empty supcon batch".into()));
        }
        if let Some(mask) = distill_mask {
            if mask.len() != features.rows() {
                return Err(NnError::InvalidBatch(format!(
                    "distill mask length {} != {} feature rows",
                    mask.len(),
                    features.rows()
                )));
            }
        }
        for &i in batch {
            if i >= features.rows() || i >= labels.len() {
                return Err(NnError::InvalidBatch(format!(
                    "batch index {i} out of range"
                )));
            }
        }
        scratch.stacked.resize(batch.len(), features.cols());
        for (r, &i) in batch.iter().enumerate() {
            scratch.stacked.row_mut(r).copy_from_slice(features.row(i));
        }
        let batch_labels: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
        self.backbone
            .forward_cached_into(&scratch.stacked, &mut scratch.cache, &mut scratch.ws)?;
        // The supcon gradient is O(batch²) pairwise structure; it still
        // allocates internally, which is fine — the matmuls dominate.
        let (c_loss, grad_out) = crate::loss::supervised_contrastive_loss(
            &scratch.cache.output,
            &batch_labels,
            temperature,
        )?;
        scratch.grad_out.copy_from(&grad_out);
        let mut d_loss = 0.0f32;
        if let Some((teacher, weight)) = teacher {
            if weight > 0.0 {
                teacher.forward_into(&scratch.stacked, &mut scratch.teacher_emb, &mut scratch.ws)?;
                let dl = distillation_loss_into(
                    &scratch.cache.output,
                    &scratch.teacher_emb,
                    &mut scratch.distill_grad,
                )?;
                let mut effective = dl;
                if let Some(mask) = distill_mask {
                    let mut kept = 0usize;
                    for (row, &src) in batch.iter().enumerate() {
                        if mask[src] {
                            kept += 1;
                        } else {
                            for v in scratch.distill_grad.row_mut(row) {
                                *v = 0.0;
                            }
                        }
                    }
                    effective = dl * kept as f32 / batch.len() as f32;
                }
                d_loss = weight * effective;
                scratch
                    .grad_out
                    .add_scaled_inplace(&scratch.distill_grad, weight)?;
            }
        }
        self.backbone.backward_into(
            &scratch.cache,
            &scratch.grad_out,
            &mut scratch.grads,
            &mut scratch.ws,
        )?;
        if grad_clip > 0.0 {
            scratch.grads.clip(grad_clip);
        }
        optimizer.step(&mut self.backbone, &scratch.grads)?;
        Ok(StepLoss {
            contrastive: c_loss,
            distillation: d_loss,
        })
    }

    /// Mean embedding-space distance between two slices of row vectors
    /// (diagnostics for class separation).
    ///
    /// # Errors
    /// Shape mismatch on malformed input.
    pub fn mean_pair_distance(&self, a: &Matrix, b: &Matrix) -> Result<f32> {
        let ea = self.embed(a)?;
        let eb = self.embed(b)?;
        if ea.rows() != eb.rows() || ea.rows() == 0 {
            return Err(NnError::InvalidBatch("mismatched diagnostic batches".into()));
        }
        let mut total = 0.0f32;
        for i in 0..ea.rows() {
            total += magneto_tensor::vector::euclidean(ea.row(i), eb.row(i));
        }
        Ok(total / ea.rows() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use crate::pairs::sample_pairs;

    /// Two Gaussian blobs in feature space, labels 0/1.
    fn blobs(n_per_class: usize, dim: usize, sep: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for _ in 0..n_per_class {
                let center = if c == 0 { -sep / 2.0 } else { sep / 2.0 };
                let row: Vec<f32> = (0..dim).map(|_| rng.normal_with(center, 1.0)).collect();
                rows.push(row);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn small_siamese(seed: u64) -> SiameseNetwork {
        let mut rng = SeededRng::new(seed);
        SiameseNetwork::new(Mlp::new(&[4, 16, 8], &mut rng).unwrap(), 1.0)
    }

    #[test]
    fn training_reduces_contrastive_loss() {
        let (features, labels) = blobs(30, 4, 2.0, 1);
        let mut net = small_siamese(2);
        let mut opt = Adam::new(0.005);
        let mut rng = SeededRng::new(3);
        let first = net
            .train_step(
                &features,
                &sample_pairs(&labels, 64, &mut rng),
                &mut opt,
                None,
                5.0,
            )
            .unwrap()
            .total();
        let mut last = first;
        for _ in 0..60 {
            last = net
                .train_step(
                    &features,
                    &sample_pairs(&labels, 64, &mut rng),
                    &mut opt,
                    None,
                    5.0,
                )
                .unwrap()
                .total();
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn training_separates_classes_in_embedding_space() {
        let (features, labels) = blobs(30, 4, 3.0, 4);
        let mut net = small_siamese(5);
        let mut opt = Adam::new(0.005);
        let mut rng = SeededRng::new(6);
        for _ in 0..100 {
            let pairs = sample_pairs(&labels, 64, &mut rng);
            net.train_step(&features, &pairs, &mut opt, None, 5.0)
                .unwrap();
        }
        // Same-class mean distance must be well below cross-class.
        let class0: Vec<usize> = (0..30).collect();
        let class1: Vec<usize> = (30..60).collect();
        let a0 = features.select_rows(&class0[..15]).unwrap();
        let a0b = features.select_rows(&class0[15..]).unwrap();
        let a1 = features.select_rows(&class1[..15]).unwrap();
        let within = net.mean_pair_distance(&a0, &a0b).unwrap();
        let across = net.mean_pair_distance(&a0, &a1).unwrap();
        assert!(
            across > within * 1.5,
            "within {within}, across {across}"
        );
    }

    #[test]
    fn distillation_anchors_to_teacher() {
        let (features, labels) = blobs(20, 4, 2.0, 7);
        // Train a "teacher" first.
        let mut teacher_net = small_siamese(8);
        let mut opt = Adam::new(0.005);
        let mut rng = SeededRng::new(9);
        for _ in 0..50 {
            let pairs = sample_pairs(&labels, 48, &mut rng);
            teacher_net
                .train_step(&features, &pairs, &mut opt, None, 5.0)
                .unwrap();
        }
        let teacher = teacher_net.backbone().clone();

        // Continue training two students on *shuffled* labels (a
        // disruptive update): one with distillation, one without.
        let disruptive: Vec<usize> = labels.iter().map(|&l| 1 - l).collect();
        let mut with = SiameseNetwork::new(teacher.clone(), 1.0);
        let mut without = SiameseNetwork::new(teacher.clone(), 1.0);
        let mut opt_w = Adam::new(0.005);
        let mut opt_wo = Adam::new(0.005);
        let mut rng2 = SeededRng::new(10);
        for _ in 0..40 {
            let pairs = sample_pairs(&disruptive, 48, &mut rng2);
            with.train_step(&features, &pairs, &mut opt_w, Some((&teacher, 10.0)), 5.0)
                .unwrap();
            without
                .train_step(&features, &pairs, &mut opt_wo, None, 5.0)
                .unwrap();
        }
        // Drift from the teacher's embeddings.
        let t_emb = teacher.forward(&features).unwrap();
        let w_emb = with.embed(&features).unwrap();
        let wo_emb = without.embed(&features).unwrap();
        let drift_with = w_emb.sub(&t_emb).unwrap().frobenius_norm();
        let drift_without = wo_emb.sub(&t_emb).unwrap().frobenius_norm();
        assert!(
            drift_with < drift_without * 0.8,
            "distilled drift {drift_with} vs undistilled {drift_without}"
        );
    }

    #[test]
    fn rejects_bad_batches() {
        let (features, _) = blobs(5, 4, 1.0, 11);
        let mut net = small_siamese(12);
        let mut opt = Adam::new(0.01);
        assert!(matches!(
            net.train_step(&features, &[], &mut opt, None, 1.0),
            Err(NnError::InvalidBatch(_))
        ));
        let bad = [PairSample {
            i: 0,
            j: 999,
            same: true,
        }];
        assert!(net.train_step(&features, &bad, &mut opt, None, 1.0).is_err());
    }

    #[test]
    fn embed_shapes() {
        let net = small_siamese(13);
        let x = Matrix::filled(3, 4, 0.1);
        let e = net.embed(&x).unwrap();
        assert_eq!(e.shape(), (3, 8));
        assert_eq!(net.embed_one(&[0.1; 4]).unwrap().len(), 8);
        assert_eq!(net.backbone().input_dim(), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let net = small_siamese(14);
        let json = serde_json::to_string(&net).unwrap();
        let back: SiameseNetwork = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
