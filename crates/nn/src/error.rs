//! Error type for the neural-network substrate.

use magneto_tensor::TensorError;
use std::fmt;

/// Errors produced by network construction, training and serialisation.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Underlying tensor operation failed (usually a shape mismatch).
    Tensor(TensorError),
    /// A network needs at least an input and an output layer.
    InvalidArchitecture(String),
    /// Batch inputs/labels disagree in length, or a batch is empty.
    InvalidBatch(String),
    /// Training diverged (non-finite loss or weights).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// Model decoding failed.
    Decode(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidArchitecture(msg) => write!(f, "invalid architecture: {msg}"),
            NnError::InvalidBatch(msg) => write!(f, "invalid batch: {msg}"),
            NnError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
            NnError::Decode(msg) => write!(f, "model decode error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: NnError = TensorError::EmptyInput("mean").into();
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(NnError::Diverged { epoch: 3 }.to_string().contains('3'));
        assert!(std::error::Error::source(&NnError::Decode("x".into())).is_none());
    }
}
