//! Property-based tests for the neural-network substrate.

use magneto_nn::loss::{contrastive_loss, distillation_loss, softmax_cross_entropy};
use magneto_nn::quantize::QuantizedMlp;
use magneto_nn::serialize::{decode_mlp, encode_mlp};
use magneto_nn::Mlp;
use magneto_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-40i32..=40).prop_map(|v| v as f32 / 8.0)
}

fn embedding_batch(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_f32(), rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d).unwrap())
}

proptest! {
    /// Contrastive loss is non-negative; its gradients vanish exactly when
    /// the loss does.
    #[test]
    fn contrastive_nonnegative(
        a in embedding_batch(4, 3),
        b in embedding_batch(4, 3),
        mask in prop::collection::vec(any::<bool>(), 4),
        margin in 0.1f32..3.0,
    ) {
        let (loss, ga, gb) = contrastive_loss(&a, &b, &mask, margin).unwrap();
        prop_assert!(loss >= 0.0);
        prop_assert!(loss.is_finite());
        if loss == 0.0 {
            prop_assert!(ga.as_slice().iter().all(|&v| v == 0.0));
            prop_assert!(gb.as_slice().iter().all(|&v| v == 0.0));
        }
        // Gradients of the two sides are exact opposites (the loss
        // depends only on a - b).
        for (x, y) in ga.as_slice().iter().zip(gb.as_slice().iter()) {
            prop_assert!((x + y).abs() < 1e-5);
        }
    }

    /// Distillation loss is symmetric in value and antisymmetric in
    /// gradient.
    #[test]
    fn distillation_symmetry(
        s in embedding_batch(3, 4),
        t in embedding_batch(3, 4),
    ) {
        let (l1, g1) = distillation_loss(&s, &t).unwrap();
        let (l2, g2) = distillation_loss(&t, &s).unwrap();
        prop_assert!((l1 - l2).abs() < 1e-4 * (1.0 + l1.abs()));
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice().iter()) {
            prop_assert!((a + b).abs() < 1e-5);
        }
        prop_assert!(l1 >= 0.0);
    }

    /// Cross-entropy gradient rows sum to ~0 (softmax minus one-hot).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        logits in embedding_batch(3, 5),
        targets in prop::collection::vec(0usize..5, 3),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        prop_assert!(loss >= 0.0);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    /// Model binary codec round-trips exactly for arbitrary architectures.
    #[test]
    fn model_codec_roundtrip(
        dims in prop::collection::vec(1usize..24, 2..5),
        seed in 0u64..1000,
    ) {
        let net = Mlp::new(&dims, &mut SeededRng::new(seed)).unwrap();
        let back = decode_mlp(&encode_mlp(&net)).unwrap();
        prop_assert_eq!(net, back);
    }

    /// Quantisation error per weight is bounded by half an int8 step.
    #[test]
    fn quantization_error_bounded(
        dims in prop::collection::vec(1usize..16, 2..4),
        seed in 0u64..1000,
    ) {
        let net = Mlp::new(&dims, &mut SeededRng::new(seed)).unwrap();
        let q = QuantizedMlp::quantize(&net);
        let back = q.dequantize().unwrap();
        for (orig, rest) in net.layers().iter().zip(back.layers().iter()) {
            let step = orig.weights.max_abs() / 127.0;
            for (a, b) in orig
                .weights
                .as_slice()
                .iter()
                .zip(rest.weights.as_slice().iter())
            {
                prop_assert!((a - b).abs() <= step * 0.5 + 1e-7);
            }
        }
        // And the binary codec round-trips the quantised form exactly.
        let bytes = q.to_bytes();
        prop_assert_eq!(QuantizedMlp::from_bytes(&bytes).unwrap(), q);
    }

    /// Forward passes are finite for bounded inputs and weights.
    #[test]
    fn forward_finite(
        dims in prop::collection::vec(1usize..16, 2..5),
        seed in 0u64..100,
        batch in 1usize..6,
    ) {
        let net = Mlp::new(&dims, &mut SeededRng::new(seed)).unwrap();
        let x = Matrix::filled(batch, dims[0], 0.5);
        let out = net.forward(&x).unwrap();
        prop_assert_eq!(out.shape(), (batch, *dims.last().unwrap()));
        prop_assert!(out.all_finite());
    }
}
