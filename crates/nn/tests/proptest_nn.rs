//! Property-based tests for the neural-network substrate.

use magneto_nn::loss::{contrastive_loss, distillation_loss, softmax_cross_entropy};
use magneto_nn::quantize::QuantizedMlp;
use magneto_nn::serialize::{decode_mlp, encode_mlp};
use magneto_nn::siamese::TrainScratch;
use magneto_nn::trainer::train_siamese_masked_with;
use magneto_nn::{Mlp, SiameseNetwork, TrainerConfig};
use magneto_tensor::{Exec, KernelPlan, Matrix, SeededRng, Workspace};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-40i32..=40).prop_map(|v| v as f32 / 8.0)
}

fn embedding_batch(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_f32(), rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d).unwrap())
}

proptest! {
    /// Contrastive loss is non-negative; its gradients vanish exactly when
    /// the loss does.
    #[test]
    fn contrastive_nonnegative(
        a in embedding_batch(4, 3),
        b in embedding_batch(4, 3),
        mask in prop::collection::vec(any::<bool>(), 4),
        margin in 0.1f32..3.0,
    ) {
        let (loss, ga, gb) = contrastive_loss(&a, &b, &mask, margin).unwrap();
        prop_assert!(loss >= 0.0);
        prop_assert!(loss.is_finite());
        if loss == 0.0 {
            prop_assert!(ga.as_slice().iter().all(|&v| v == 0.0));
            prop_assert!(gb.as_slice().iter().all(|&v| v == 0.0));
        }
        // Gradients of the two sides are exact opposites (the loss
        // depends only on a - b).
        for (x, y) in ga.as_slice().iter().zip(gb.as_slice().iter()) {
            prop_assert!((x + y).abs() < 1e-5);
        }
    }

    /// Distillation loss is symmetric in value and antisymmetric in
    /// gradient.
    #[test]
    fn distillation_symmetry(
        s in embedding_batch(3, 4),
        t in embedding_batch(3, 4),
    ) {
        let (l1, g1) = distillation_loss(&s, &t).unwrap();
        let (l2, g2) = distillation_loss(&t, &s).unwrap();
        prop_assert!((l1 - l2).abs() < 1e-4 * (1.0 + l1.abs()));
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice().iter()) {
            prop_assert!((a + b).abs() < 1e-5);
        }
        prop_assert!(l1 >= 0.0);
    }

    /// Cross-entropy gradient rows sum to ~0 (softmax minus one-hot).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        logits in embedding_batch(3, 5),
        targets in prop::collection::vec(0usize..5, 3),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        prop_assert!(loss >= 0.0);
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    /// Model binary codec round-trips exactly for arbitrary architectures.
    #[test]
    fn model_codec_roundtrip(
        dims in prop::collection::vec(1usize..24, 2..5),
        seed in 0u64..1000,
    ) {
        let net = Mlp::new(&dims, &mut SeededRng::new(seed)).unwrap();
        let back = decode_mlp(&encode_mlp(&net)).unwrap();
        prop_assert_eq!(net, back);
    }

    /// Quantisation error per weight is bounded by half an int8 step.
    #[test]
    fn quantization_error_bounded(
        dims in prop::collection::vec(1usize..16, 2..4),
        seed in 0u64..1000,
    ) {
        let net = Mlp::new(&dims, &mut SeededRng::new(seed)).unwrap();
        let q = QuantizedMlp::quantize(&net).unwrap();
        let back = q.dequantize().unwrap();
        for (orig, rest) in net.layers().iter().zip(back.layers().iter()) {
            let step = orig.weights.max_abs() / 127.0;
            for (a, b) in orig
                .weights
                .as_slice()
                .iter()
                .zip(rest.weights.as_slice().iter())
            {
                prop_assert!((a - b).abs() <= step * 0.5 + 1e-7);
            }
        }
        // And the binary codec round-trips the quantised form exactly.
        let bytes = q.to_bytes();
        prop_assert_eq!(QuantizedMlp::from_bytes(&bytes).unwrap(), q);
    }

    /// Forward passes are finite for bounded inputs and weights.
    #[test]
    fn forward_finite(
        dims in prop::collection::vec(1usize..16, 2..5),
        seed in 0u64..100,
        batch in 1usize..6,
    ) {
        let net = Mlp::new(&dims, &mut SeededRng::new(seed)).unwrap();
        let x = Matrix::filled(batch, dims[0], 0.5);
        let out = net.forward(&x).unwrap();
        prop_assert_eq!(out.shape(), (batch, *dims.last().unwrap()));
        prop_assert!(out.all_finite());
    }
}

/// Execution contexts at pool sizes 0 (inline), 1, 2 and 8, built once so
/// pool threads are reused across proptest cases.
fn execs() -> &'static [Exec] {
    static EXECS: std::sync::OnceLock<Vec<Exec>> = std::sync::OnceLock::new();
    EXECS.get_or_init(|| {
        let mut execs = vec![Exec::inline()];
        for t in [1usize, 2, 8] {
            let mut plan = KernelPlan::inline().with_threads(t);
            plan.par_min_rows = 8;
            execs.push(Exec::from_plan(plan));
        }
        execs
    })
}

fn blob_features(classes: usize, per_class: usize, dim: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        for _ in 0..per_class {
            rows.push(
                (0..dim)
                    .map(|d| rng.normal_with(if d % classes == c { 2.0 } else { 0.0 }, 1.0))
                    .collect::<Vec<f32>>(),
            );
            labels.push(c);
        }
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full `train_siamese` runs are bit-identical at every pool size:
    /// identical loss histories AND identical trained weights. This is
    /// the end-to-end form of the panel-aligned determinism argument.
    #[test]
    fn train_siamese_bit_identical_at_any_pool_size(
        seed in 0u64..200,
        hidden in 8usize..24,
    ) {
        let (features, labels) = blob_features(3, 8, 10, seed);
        let config = TrainerConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            batch_pairs: 16,
            seed,
            ..TrainerConfig::default()
        };
        let init = SiameseNetwork::new(
            Mlp::new(&[10, hidden, 6], &mut SeededRng::new(seed ^ 0xA5)).unwrap(),
            1.0,
        );
        let mut reference_net = init.clone();
        let mut scratch = TrainScratch::with_exec(Exec::inline());
        let reference = train_siamese_masked_with(
            &mut reference_net, &features, &labels, None, None, &config, &mut scratch,
        ).unwrap();
        for exec in execs() {
            let mut net = init.clone();
            let mut scratch = TrainScratch::with_exec(exec.clone());
            let report = train_siamese_masked_with(
                &mut net, &features, &labels, None, None, &config, &mut scratch,
            ).unwrap();
            prop_assert_eq!(&report.epoch_losses, &reference.epoch_losses, "threads={}", exec.threads());
            prop_assert_eq!(&net, &reference_net, "threads={}", exec.threads());
        }
    }

    /// The masked/distilled variant (the on-device update path) is
    /// equally deterministic: teacher forward, masked distillation
    /// gradients and all backward GEMMs included.
    #[test]
    fn train_siamese_masked_bit_identical_at_any_pool_size(seed in 0u64..200) {
        let (features, labels) = blob_features(2, 8, 10, seed);
        let teacher = Mlp::new(&[10, 12, 6], &mut SeededRng::new(seed ^ 0x3C)).unwrap();
        let mask: Vec<bool> = labels.iter().map(|&l| l == 0).collect();
        let config = TrainerConfig {
            epochs: 2,
            pairs_per_epoch: 32,
            batch_pairs: 16,
            distill_weight: 2.0,
            seed,
            ..TrainerConfig::default()
        };
        let init = SiameseNetwork::new(
            Mlp::new(&[10, 16, 6], &mut SeededRng::new(seed ^ 0x5A)).unwrap(),
            1.0,
        );
        let mut reference_net = init.clone();
        let mut scratch = TrainScratch::with_exec(Exec::inline());
        let reference = train_siamese_masked_with(
            &mut reference_net, &features, &labels, Some(&teacher), Some(&mask), &config, &mut scratch,
        ).unwrap();
        for exec in execs() {
            let mut net = init.clone();
            let mut scratch = TrainScratch::with_exec(exec.clone());
            let report = train_siamese_masked_with(
                &mut net, &features, &labels, Some(&teacher), Some(&mask), &config, &mut scratch,
            ).unwrap();
            prop_assert_eq!(&report.epoch_losses, &reference.epoch_losses, "threads={}", exec.threads());
            prop_assert_eq!(&net, &reference_net, "threads={}", exec.threads());
        }
    }

    /// Batched inference embeds bit-identically at every pool size.
    #[test]
    fn batched_inference_bit_identical_at_any_pool_size(
        seed in 0u64..200,
        rows in 1usize..40,
    ) {
        let net = SiameseNetwork::new(
            Mlp::new(&[10, 20, 6], &mut SeededRng::new(seed)).unwrap(),
            1.0,
        );
        let mut rng = SeededRng::new(seed ^ 0x77);
        let data: Vec<Vec<f32>> = (0..rows)
            .map(|_| (0..10).map(|_| rng.normal_with(0.0, 1.0)).collect())
            .collect();
        let features = Matrix::from_rows(&data).unwrap();
        let mut ws = Workspace::with_exec(Exec::inline());
        let mut reference = Matrix::default();
        net.embed_into(&features, &mut reference, &mut ws).unwrap();
        for exec in execs() {
            let mut ws = Workspace::with_exec(exec.clone());
            let mut out = Matrix::default();
            net.embed_into(&features, &mut out, &mut ws).unwrap();
            prop_assert_eq!(&out, &reference, "threads={}", exec.threads());
        }
    }
}
