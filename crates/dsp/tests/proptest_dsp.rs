//! Property-based tests for the pre-processing substrate.

use magneto_dsp::features::{FeatureExtractor, NUM_FEATURES};
use magneto_dsp::filter::{median_filter, moving_average, Biquad};
use magneto_dsp::normalize::{Normalizer, NormalizerKind};
use magneto_dsp::segment::segment_series;
use magneto_dsp::spectral::{band_energy_ratio, dft_magnitudes, spectral_entropy};
use proptest::prelude::*;

fn signal(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((-50i32..=50).prop_map(|v| v as f32 / 5.0), 2..max_len)
}

proptest! {
    /// Filters never extend the signal's range (they are averages/medians
    /// of window values).
    #[test]
    fn smoothing_filters_stay_in_range(xs in signal(64), k in 1usize..9) {
        let lo = xs.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for out in [moving_average(&xs, k), median_filter(&xs, k)] {
            prop_assert_eq!(out.len(), xs.len());
            for v in out {
                prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
            }
        }
    }

    /// The low-pass filter is total and finite on any input.
    #[test]
    fn biquad_always_finite(xs in signal(128), cutoff in 1.0f64..80.0) {
        let bq = Biquad::lowpass(cutoff, 120.0);
        for v in bq.filtfilt(&xs) {
            prop_assert!(v.is_finite());
        }
    }

    /// Window count follows the arithmetic `1 + (n - w) / hop`.
    #[test]
    fn segment_count_formula(n in 1usize..100, w in 1usize..20, hop in 1usize..10) {
        let ch = vec![(0..n).map(|i| i as f32).collect::<Vec<_>>()];
        let windows = segment_series(&ch, w, hop);
        let expected = if n >= w { 1 + (n - w) / hop } else { 0 };
        prop_assert_eq!(windows.len(), expected);
        for win in &windows {
            prop_assert_eq!(win[0].len(), w);
        }
    }

    /// Normalise → inverse is the identity (all three schemes).
    #[test]
    fn normalizer_inverse_roundtrip(
        rows in prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 5), 2..20),
        kind in prop::sample::select(vec![
            NormalizerKind::ZScore,
            NormalizerKind::MinMax,
            NormalizerKind::Robust,
        ]),
    ) {
        let norm = Normalizer::fit(kind, &rows).unwrap();
        let v = &rows[0];
        let back = norm.inverse(&norm.transform(v).unwrap()).unwrap();
        for (a, b) in v.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-2 * (1.0 + a.abs()), "{kind:?}: {a} vs {b}");
        }
    }

    /// DFT magnitudes are non-negative and finite.
    #[test]
    fn dft_magnitudes_nonnegative(xs in signal(128)) {
        for m in dft_magnitudes(&xs) {
            prop_assert!(m >= 0.0 && m.is_finite());
        }
        prop_assert!(spectral_entropy(&xs) >= 0.0);
    }

    /// Band-energy ratio is a fraction, and the full band captures all.
    #[test]
    fn band_energy_is_fraction(xs in signal(128)) {
        let r = band_energy_ratio(&xs, 120.0, 10.0, 30.0);
        prop_assert!((0.0..=1.0 + 1e-4).contains(&r));
        let full = band_energy_ratio(&xs, 120.0, 0.0, 60.0);
        let has_energy = dft_magnitudes(&xs).iter().any(|&m| m > 1e-9);
        if has_energy {
            prop_assert!((full - 1.0).abs() < 1e-3, "full band {full}");
        }
    }

    /// The 80 features are produced for any plausible 22-channel window
    /// and are always finite.
    #[test]
    fn features_total_and_finite(
        seedish in 0u32..1000,
        len in 8usize..200,
    ) {
        let channels: Vec<Vec<f32>> = (0..22)
            .map(|c| {
                (0..len)
                    .map(|i| ((c as f32 + 1.3) * (i as f32 + seedish as f32)).sin() * 3.0)
                    .collect()
            })
            .collect();
        let out = FeatureExtractor::default().extract(&channels).unwrap();
        prop_assert_eq!(out.len(), NUM_FEATURES);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    /// Feature extraction is invariant to trailing extra samples in
    /// channels beyond the shortest one (the extractor clips to the
    /// shortest channel).
    #[test]
    fn features_clip_to_shortest_channel(len in 16usize..64, extra in 1usize..16) {
        let base: Vec<Vec<f32>> = (0..22)
            .map(|c| (0..len).map(|i| ((c + i) as f32).sin()).collect())
            .collect();
        let mut padded = base.clone();
        // Pad every channel except one with junk.
        for ch in padded.iter_mut().skip(1) {
            ch.extend(std::iter::repeat_n(999.0, extra));
        }
        let fx = FeatureExtractor::default();
        let a = fx.extract(&base).unwrap();
        let b = fx.extract(&padded).unwrap();
        // Channel 0 is the shortest in `padded`, so both see `len` samples.
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
