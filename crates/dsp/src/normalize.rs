//! Per-dimension feature normalisation with serialisable fitted state.
//!
//! The normaliser is fitted on the Cloud (over the pre-training corpus's
//! feature vectors) and shipped to the Edge inside the bundle, where it is
//! applied unchanged to every window — the Edge never re-fits it, because
//! refitting on a user's narrow activity mix would shift the embedding
//! space under the support set.

use crate::error::DspError;
use crate::Result;
use magneto_tensor::stats;
use serde::{Deserialize, Serialize};

/// Which normalisation scheme to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NormalizerKind {
    /// `(x - mean) / std` per dimension — the default.
    #[default]
    ZScore,
    /// `(x - min) / (max - min)` per dimension, into `[0, 1]`.
    MinMax,
    /// `(x - median) / IQR` per dimension — robust to outliers.
    Robust,
}

/// A fitted per-dimension normaliser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    kind: NormalizerKind,
    /// Per-dimension offset (mean / min / median).
    offset: Vec<f32>,
    /// Per-dimension scale (std / range / IQR), floored to avoid division
    /// blow-ups on constant dimensions.
    scale: Vec<f32>,
}

/// Scale floor: a dimension whose spread is below this is left unscaled
/// (after centring) rather than exploded.
const SCALE_FLOOR: f32 = 1e-6;

impl Normalizer {
    /// Fit a normaliser of the given kind over `rows` (each an equal-length
    /// feature vector).
    ///
    /// # Errors
    /// [`DspError::NotFitted`] if `rows` is empty,
    /// [`DspError::DimensionMismatch`] if rows have differing lengths.
    pub fn fit(kind: NormalizerKind, rows: &[Vec<f32>]) -> Result<Self> {
        let first = rows.first().ok_or(DspError::NotFitted)?;
        let dim = first.len();
        for r in rows {
            if r.len() != dim {
                return Err(DspError::DimensionMismatch {
                    expected: dim,
                    found: r.len(),
                });
            }
        }
        let mut offset = Vec::with_capacity(dim);
        let mut scale = Vec::with_capacity(dim);
        let mut column = Vec::with_capacity(rows.len());
        for d in 0..dim {
            column.clear();
            column.extend(rows.iter().map(|r| r[d]));
            let (o, s) = match kind {
                NormalizerKind::ZScore => (stats::mean(&column), stats::std_dev(&column)),
                NormalizerKind::MinMax => {
                    let lo = stats::min(&column);
                    (lo, stats::max(&column) - lo)
                }
                NormalizerKind::Robust => (stats::median(&column), stats::iqr(&column)),
            };
            offset.push(o);
            scale.push(if s.abs() < SCALE_FLOOR { 1.0 } else { s });
        }
        Ok(Normalizer {
            kind,
            offset,
            scale,
        })
    }

    /// The scheme this normaliser was fitted with.
    pub fn kind(&self) -> NormalizerKind {
        self.kind
    }

    /// Dimensionality this normaliser was fitted for.
    pub fn dim(&self) -> usize {
        self.offset.len()
    }

    /// Normalise a vector in place.
    ///
    /// # Errors
    /// [`DspError::DimensionMismatch`] on wrong input dimension.
    pub fn apply(&self, v: &mut [f32]) -> Result<()> {
        if v.len() != self.dim() {
            return Err(DspError::DimensionMismatch {
                expected: self.dim(),
                found: v.len(),
            });
        }
        for ((x, &o), &s) in v.iter_mut().zip(&self.offset).zip(&self.scale) {
            *x = (*x - o) / s;
        }
        Ok(())
    }

    /// Normalise a vector, returning a new allocation.
    ///
    /// # Errors
    /// [`DspError::DimensionMismatch`] on wrong input dimension.
    pub fn transform(&self, v: &[f32]) -> Result<Vec<f32>> {
        let mut out = v.to_vec();
        self.apply(&mut out)?;
        Ok(out)
    }

    /// Invert the normalisation (diagnostics, report readability).
    ///
    /// # Errors
    /// [`DspError::DimensionMismatch`] on wrong input dimension.
    pub fn inverse(&self, v: &[f32]) -> Result<Vec<f32>> {
        if v.len() != self.dim() {
            return Err(DspError::DimensionMismatch {
                expected: self.dim(),
                found: v.len(),
            });
        }
        Ok(v.iter()
            .zip(&self.offset)
            .zip(&self.scale)
            .map(|((&x, &o), &s)| x * s + o)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::SeededRng;

    fn sample_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SeededRng::new(seed);
        (0..n)
            .map(|_| {
                (0..dim)
                    .map(|d| rng.normal_with(d as f32 * 10.0, (d + 1) as f32))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn zscore_standardizes() {
        let rows = sample_rows(2000, 3, 1);
        let norm = Normalizer::fit(NormalizerKind::ZScore, &rows).unwrap();
        let transformed: Vec<Vec<f32>> =
            rows.iter().map(|r| norm.transform(r).unwrap()).collect();
        for d in 0..3 {
            let col: Vec<f32> = transformed.iter().map(|r| r[d]).collect();
            assert!(stats::mean(&col).abs() < 0.05, "dim {d} mean");
            assert!((stats::std_dev(&col) - 1.0).abs() < 0.05, "dim {d} std");
        }
    }

    #[test]
    fn minmax_bounds() {
        let rows = sample_rows(500, 4, 2);
        let norm = Normalizer::fit(NormalizerKind::MinMax, &rows).unwrap();
        for r in &rows {
            for &v in &norm.transform(r).unwrap() {
                assert!((-1e-5..=1.0 + 1e-5).contains(&v));
            }
        }
    }

    #[test]
    fn robust_centers_on_median() {
        let mut rows = sample_rows(501, 2, 3);
        // Inject gross outliers that would wreck a z-score fit.
        rows.push(vec![1e6, -1e6]);
        let norm = Normalizer::fit(NormalizerKind::Robust, &rows).unwrap();
        let transformed: Vec<Vec<f32>> =
            rows.iter().map(|r| norm.transform(r).unwrap()).collect();
        let col0: Vec<f32> = transformed.iter().map(|r| r[0]).collect();
        assert!(stats::median(&col0).abs() < 0.05);
    }

    #[test]
    fn constant_dimension_does_not_blow_up() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        for kind in [
            NormalizerKind::ZScore,
            NormalizerKind::MinMax,
            NormalizerKind::Robust,
        ] {
            let norm = Normalizer::fit(kind, &rows).unwrap();
            let out = norm.transform(&[5.0, 2.0]).unwrap();
            assert!(out.iter().all(|v| v.is_finite()), "{kind:?}");
            assert_eq!(out[0], 0.0, "{kind:?} constant dim should centre to 0");
        }
    }

    #[test]
    fn fit_errors() {
        assert!(matches!(
            Normalizer::fit(NormalizerKind::ZScore, &[]),
            Err(DspError::NotFitted)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            Normalizer::fit(NormalizerKind::ZScore, &ragged),
            Err(DspError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn apply_dimension_checked() {
        let rows = sample_rows(10, 3, 4);
        let norm = Normalizer::fit(NormalizerKind::ZScore, &rows).unwrap();
        assert_eq!(norm.dim(), 3);
        assert_eq!(norm.kind(), NormalizerKind::ZScore);
        let mut wrong = vec![1.0, 2.0];
        assert!(norm.apply(&mut wrong).is_err());
        assert!(norm.inverse(&wrong).is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let rows = sample_rows(100, 5, 5);
        for kind in [
            NormalizerKind::ZScore,
            NormalizerKind::MinMax,
            NormalizerKind::Robust,
        ] {
            let norm = Normalizer::fit(kind, &rows).unwrap();
            let v = &rows[7];
            let t = norm.transform(v).unwrap();
            let back = norm.inverse(&t).unwrap();
            for (a, b) in v.iter().zip(back.iter()) {
                assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{kind:?}");
            }
        }
    }

    #[test]
    fn serde_roundtrip() {
        let rows = sample_rows(20, 3, 6);
        let norm = Normalizer::fit(NormalizerKind::Robust, &rows).unwrap();
        let json = serde_json::to_string(&norm).unwrap();
        let back: Normalizer = serde_json::from_str(&json).unwrap();
        assert_eq!(norm.dim(), back.dim());
        assert_eq!(norm.kind(), back.kind());
        let v = vec![1.0, 2.0, 3.0];
        let a = norm.transform(&v).unwrap();
        let b = back.transform(&v).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
