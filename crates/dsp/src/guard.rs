//! Entry-point signal guard: finite-value sanitisation and per-channel
//! health tracking.
//!
//! Everything downstream of the pipeline entry — denoise kernels,
//! feature extraction, normalisation, the embedding MLP — assumes finite
//! inputs. A single NaN from a glitched I²C read would otherwise
//! propagate through every statistic of the window and poison the
//! embedding silently. The guard repairs such values *at the boundary*
//! (last-good-value hold, the standard treatment for stuck/invalid
//! samples in embedded DSP) and reports what it did, so callers can
//! flag the result [`SignalQuality::Degraded`] instead of shipping
//! garbage with a confident face.

use serde::{Deserialize, Serialize};

/// Whether the signal feeding a result was clean or repaired.
///
/// `Degraded` does not mean *wrong* — it means at least one sample in
/// the window was non-finite or out of range and was repaired before
/// processing, so the caller should weigh the output accordingly
/// (e.g. skip it for on-device training, or require more smoothing
/// before acting on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SignalQuality {
    /// Every sample in the window was finite and in range.
    #[default]
    Nominal,
    /// At least one sample was repaired at pipeline entry.
    Degraded,
}

impl SignalQuality {
    /// `true` for [`SignalQuality::Degraded`].
    pub fn is_degraded(self) -> bool {
        matches!(self, SignalQuality::Degraded)
    }

    /// Worst of the two (`Degraded` absorbs).
    pub fn merge(self, other: SignalQuality) -> SignalQuality {
        if self.is_degraded() || other.is_degraded() {
            SignalQuality::Degraded
        } else {
            SignalQuality::Nominal
        }
    }
}

/// What counts as a repairable sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Absolute-value ceiling; anything above it (or non-finite) is
    /// treated as a sensor fault and repaired. Physical channels top out
    /// around 10³ (pressure in hPa, light in lux), so the default leaves
    /// two orders of magnitude of headroom while still catching railed
    /// ADC reads and float garbage.
    pub max_abs: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { max_abs: 1.0e6 }
    }
}

impl GuardConfig {
    /// `true` when `v` needs repair under this config.
    #[inline]
    pub fn is_faulty(&self, v: f32) -> bool {
        !v.is_finite() || v.abs() > self.max_abs
    }
}

/// Repair a whole channel-major window in place: each faulty sample is
/// replaced by the previous good sample of the *same* channel; faulty
/// samples before the first good one take the first good value (or 0.0
/// when the entire channel is faulty). Returns the number of samples
/// repaired.
pub fn scrub_window(channels: &mut [Vec<f32>], cfg: &GuardConfig) -> usize {
    let mut repaired = 0;
    for ch in channels.iter_mut() {
        // Seed for leading faults: the first good sample, else 0.0.
        let seed = ch.iter().copied().find(|&v| !cfg.is_faulty(v)).unwrap_or(0.0);
        let mut last_good = seed;
        for v in ch.iter_mut() {
            if cfg.is_faulty(*v) {
                *v = last_good;
                repaired += 1;
            } else {
                last_good = *v;
            }
        }
    }
    repaired
}

/// `true` when every sample of every channel is clean under `cfg`.
pub fn window_is_clean(channels: &[Vec<f32>], cfg: &GuardConfig) -> bool {
    channels
        .iter()
        .all(|ch| ch.iter().all(|&v| !cfg.is_faulty(v)))
}

/// Streaming sample guard with per-channel health counters.
///
/// Sits at the front of a real-time session: every incoming frame's
/// values pass through [`scrub`](FrameGuard::scrub), which holds the
/// last good value per channel across frames (unlike [`scrub_window`],
/// whose hold is confined to one window).
#[derive(Debug, Clone)]
pub struct FrameGuard {
    cfg: GuardConfig,
    /// Last good value per channel; `None` until the channel has
    /// produced one (repairs before then write 0.0).
    last: Vec<Option<f32>>,
    /// Repairs per channel since construction (the health signal).
    repaired_per_channel: Vec<u64>,
    frames: u64,
    repaired_total: u64,
}

impl FrameGuard {
    /// Guard for frames of `channels` values.
    pub fn new(channels: usize, cfg: GuardConfig) -> Self {
        FrameGuard {
            cfg,
            last: vec![None; channels],
            repaired_per_channel: vec![0; channels],
            frames: 0,
            repaired_total: 0,
        }
    }

    /// The active config.
    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// Repair one frame's values in place; returns how many samples were
    /// repaired. Frames of the wrong arity are left untouched (the
    /// segmenter rejects them downstream).
    pub fn scrub(&mut self, values: &mut [f32]) -> usize {
        if values.len() != self.last.len() {
            return 0;
        }
        self.frames += 1;
        let mut repaired = 0;
        for (c, v) in values.iter_mut().enumerate() {
            if self.cfg.is_faulty(*v) {
                *v = self.last[c].unwrap_or(0.0);
                self.repaired_per_channel[c] += 1;
                repaired += 1;
            } else {
                self.last[c] = Some(*v);
            }
        }
        self.repaired_total += repaired as u64;
        repaired
    }

    /// Frames scrubbed so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Total samples repaired so far.
    pub fn repaired_total(&self) -> u64 {
        self.repaired_total
    }

    /// Repairs per channel since construction.
    pub fn repaired_per_channel(&self) -> &[u64] {
        &self.repaired_per_channel
    }

    /// Index and repair count of the least healthy channel, if any
    /// repairs happened at all.
    pub fn worst_channel(&self) -> Option<(usize, u64)> {
        self.repaired_per_channel
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }

    /// Forget the held values (new session) but keep the health counters.
    pub fn reset_hold(&mut self) {
        for v in &mut self.last {
            *v = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_merge_and_default() {
        assert_eq!(SignalQuality::default(), SignalQuality::Nominal);
        assert!(!SignalQuality::Nominal.is_degraded());
        assert!(SignalQuality::Degraded.is_degraded());
        assert_eq!(
            SignalQuality::Nominal.merge(SignalQuality::Degraded),
            SignalQuality::Degraded
        );
        assert_eq!(
            SignalQuality::Nominal.merge(SignalQuality::Nominal),
            SignalQuality::Nominal
        );
    }

    #[test]
    fn faulty_detection() {
        let cfg = GuardConfig::default();
        assert!(cfg.is_faulty(f32::NAN));
        assert!(cfg.is_faulty(f32::INFINITY));
        assert!(cfg.is_faulty(f32::NEG_INFINITY));
        assert!(cfg.is_faulty(2.0e6));
        assert!(!cfg.is_faulty(0.0));
        assert!(!cfg.is_faulty(-9.81));
    }

    #[test]
    fn scrub_window_holds_last_good() {
        let cfg = GuardConfig::default();
        let mut w = vec![vec![1.0, f32::NAN, f32::NAN, 4.0, f32::INFINITY]];
        let n = scrub_window(&mut w, &cfg);
        assert_eq!(n, 3);
        assert_eq!(w[0], vec![1.0, 1.0, 1.0, 4.0, 4.0]);
    }

    #[test]
    fn scrub_window_leading_faults_take_first_good() {
        let cfg = GuardConfig::default();
        let mut w = vec![vec![f32::NAN, f32::NAN, 3.0, 4.0]];
        scrub_window(&mut w, &cfg);
        assert_eq!(w[0], vec![3.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn scrub_window_all_faulty_channel_zeroes() {
        let cfg = GuardConfig::default();
        let mut w = vec![vec![f32::NAN, f32::INFINITY, 2.0e7]];
        let n = scrub_window(&mut w, &cfg);
        assert_eq!(n, 3);
        assert_eq!(w[0], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn window_is_clean_detects_faults() {
        let cfg = GuardConfig::default();
        assert!(window_is_clean(&[vec![1.0, 2.0]], &cfg));
        assert!(!window_is_clean(&[vec![1.0, f32::NAN]], &cfg));
        assert!(!window_is_clean(&[vec![1.0], vec![3.0e6]], &cfg));
    }

    #[test]
    fn frame_guard_holds_across_frames() {
        let mut g = FrameGuard::new(2, GuardConfig::default());
        let mut a = [1.0, 10.0];
        assert_eq!(g.scrub(&mut a), 0);
        let mut b = [f32::NAN, 20.0];
        assert_eq!(g.scrub(&mut b), 1);
        assert_eq!(b, [1.0, 20.0]);
        let mut c = [f32::INFINITY, f32::NAN];
        assert_eq!(g.scrub(&mut c), 2);
        assert_eq!(c, [1.0, 20.0]);
        assert_eq!(g.frames(), 3);
        assert_eq!(g.repaired_total(), 3);
        assert_eq!(g.repaired_per_channel(), &[2, 1]);
        assert_eq!(g.worst_channel(), Some((0, 2)));
    }

    #[test]
    fn frame_guard_before_first_good_writes_zero() {
        let mut g = FrameGuard::new(1, GuardConfig::default());
        let mut a = [f32::NAN];
        g.scrub(&mut a);
        assert_eq!(a, [0.0]);
    }

    #[test]
    fn frame_guard_ignores_wrong_arity() {
        let mut g = FrameGuard::new(3, GuardConfig::default());
        let mut short = [f32::NAN];
        assert_eq!(g.scrub(&mut short), 0);
        assert!(short[0].is_nan());
        assert_eq!(g.frames(), 0);
    }

    #[test]
    fn frame_guard_reset_hold_keeps_counters() {
        let mut g = FrameGuard::new(1, GuardConfig::default());
        let mut a = [5.0];
        g.scrub(&mut a);
        let mut b = [f32::NAN];
        g.scrub(&mut b);
        assert_eq!(b, [5.0]);
        g.reset_hold();
        let mut c = [f32::NAN];
        g.scrub(&mut c);
        assert_eq!(c, [0.0]);
        assert_eq!(g.repaired_total(), 2);
    }
}
