//! Small real-DFT spectral summaries.
//!
//! Cadence (Walk ≈ 1.9 Hz vs Run ≈ 2.8 Hz) and vibration bands
//! (E-scooter ≈ 9–19 Hz vs Drive ≈ 22–38 Hz) are fundamentally spectral
//! signatures, so a handful of the 80 features are frequency-domain. The
//! spectrum is evaluated by a bank of Goertzel resonators updated
//! lane-parallel across bins — `O(n·k)` like the naive DFT but with one
//! fused multiply-add per (sample, bin) instead of a `sin_cos` call, so
//! LLVM vectorises the bin loop the same way it does the dense kernels in
//! `magneto-tensor`. Several summaries of the same series should share one
//! [`dft_magnitudes`] call via the `*_of` variants.

use std::f32::consts::TAU;

/// Magnitude spectrum at bins `1..=n/2` (DC excluded). Bin `i` corresponds
/// to frequency `i * sample_rate / n`.
pub fn dft_magnitudes(xs: &[f32]) -> Vec<f32> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f32>() / n as f32;
    let half = n / 2;
    // Goertzel bank: bin k resonates at w_k = TAU*k/n under
    //   s0 = v + 2cos(w_k)*s1 - s2,
    // and after the full pass X_k = s1 - e^{-j w_k} s2, i.e.
    //   re = s1 - cos(w_k)*s2,  im = -sin(w_k)*s2
    // (conjugate convention; magnitudes are identical either way).
    let mut coeff = vec![0.0f32; half];
    let mut s1 = vec![0.0f32; half];
    let mut s2 = vec![0.0f32; half];
    for (k, c) in coeff.iter_mut().enumerate() {
        *c = 2.0 * (TAU * (k + 1) as f32 / n as f32).cos();
    }
    for &x in xs {
        let v = x - mean; // remove DC so bin 0 leakage doesn't dominate
        for k in 0..half {
            let s0 = v + coeff[k] * s1[k] - s2[k];
            s2[k] = s1[k];
            s1[k] = s0;
        }
    }
    let mut mags = Vec::with_capacity(half);
    for k in 0..half {
        let w = TAU * (k + 1) as f32 / n as f32;
        let re = s1[k] - w.cos() * s2[k];
        let im = -(w.sin() * s2[k]);
        mags.push((re * re + im * im).sqrt() * 2.0 / n as f32);
    }
    mags
}

/// [`dominant_frequency`] over a precomputed spectrum of a length-`n`
/// series (as returned by [`dft_magnitudes`]).
pub fn dominant_frequency_of(mags: &[f32], n: usize, sample_rate_hz: f32) -> f32 {
    match magneto_tensor::vector::argmax(mags) {
        Some(i) if mags[i] > 1e-9 && n > 0 => (i + 1) as f32 * sample_rate_hz / n as f32,
        _ => 0.0,
    }
}

/// Frequency (Hz) of the strongest non-DC bin; `0.0` for degenerate input.
pub fn dominant_frequency(xs: &[f32], sample_rate_hz: f32) -> f32 {
    dominant_frequency_of(&dft_magnitudes(xs), xs.len(), sample_rate_hz)
}

/// [`spectral_entropy`] over a precomputed spectrum.
pub fn spectral_entropy_of(mags: &[f32]) -> f32 {
    let total: f32 = mags.iter().sum();
    if total < 1e-12 {
        return 0.0;
    }
    mags.iter()
        .filter(|&&m| m > 1e-12)
        .map(|&m| {
            let p = m / total;
            -p * p.ln()
        })
        .sum()
}

/// Shannon entropy (nats) of the normalised magnitude spectrum. Low for a
/// pure tone (Walk cadence), high for broadband vibration (Drive).
pub fn spectral_entropy(xs: &[f32]) -> f32 {
    spectral_entropy_of(&dft_magnitudes(xs))
}

/// Magnitude-weighted mean frequency (Hz); the spectrum's centre of mass.
pub fn spectral_centroid(xs: &[f32], sample_rate_hz: f32) -> f32 {
    let mags = dft_magnitudes(xs);
    let total: f32 = mags.iter().sum();
    if total < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f32;
    mags.iter()
        .enumerate()
        .map(|(i, &m)| ((i + 1) as f32 * sample_rate_hz / n) * m)
        .sum::<f32>()
        / total
}

/// [`band_energy_ratio`] over a precomputed spectrum of a length-`n`
/// series.
pub fn band_energy_ratio_of(mags: &[f32], n: usize, sample_rate_hz: f32, lo_hz: f32, hi_hz: f32) -> f32 {
    let total: f32 = mags.iter().map(|m| m * m).sum();
    if total < 1e-12 || n == 0 {
        return 0.0;
    }
    let n = n as f32;
    let band: f32 = mags
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let f = (*i + 1) as f32 * sample_rate_hz / n;
            f >= lo_hz && f <= hi_hz
        })
        .map(|(_, &m)| m * m)
        .sum();
    band / total
}

/// Fraction of spectral energy inside `[lo_hz, hi_hz]` (inclusive),
/// in `[0, 1]`.
pub fn band_energy_ratio(xs: &[f32], sample_rate_hz: f32, lo_hz: f32, hi_hz: f32) -> f32 {
    band_energy_ratio_of(&dft_magnitudes(xs), xs.len(), sample_rate_hz, lo_hz, hi_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f32, rate: f32, n: usize, amp: f32) -> Vec<f32> {
        (0..n)
            .map(|i| amp * (TAU * freq * i as f32 / rate).sin())
            .collect()
    }

    #[test]
    fn dft_finds_pure_tone() {
        // 10 Hz tone at 120 Hz rate over 120 samples -> bin 10 (index 9).
        let xs = sine(10.0, 120.0, 120, 1.0);
        let mags = dft_magnitudes(&xs);
        assert_eq!(mags.len(), 60);
        let peak = magneto_tensor::vector::argmax(&mags).unwrap();
        assert_eq!(peak, 9);
        assert!((mags[9] - 1.0).abs() < 0.05, "peak mag {}", mags[9]);
        // Other bins are near zero.
        assert!(mags[30] < 0.05);
    }

    #[test]
    fn dft_degenerate_inputs() {
        assert!(dft_magnitudes(&[]).is_empty());
        assert!(dft_magnitudes(&[1.0]).is_empty());
        assert_eq!(dominant_frequency(&[], 120.0), 0.0);
        assert_eq!(dominant_frequency(&[0.0; 120], 120.0), 0.0);
        assert_eq!(spectral_entropy(&[0.0; 32]), 0.0);
        assert_eq!(spectral_centroid(&[0.0; 32], 120.0), 0.0);
        assert_eq!(band_energy_ratio(&[0.0; 32], 120.0, 0.0, 60.0), 0.0);
    }

    #[test]
    fn dominant_frequency_recovers_cadence() {
        // Walking cadence 2 Hz over 1 s at 120 Hz.
        let xs = sine(2.0, 120.0, 120, 1.5);
        let f = dominant_frequency(&xs, 120.0);
        assert!((f - 2.0).abs() < 0.6, "found {f}");
        // Running cadence 3 Hz resolves above walking.
        let run = sine(3.0, 120.0, 120, 1.5);
        assert!(dominant_frequency(&run, 120.0) > f);
    }

    #[test]
    fn dc_is_ignored() {
        let mut xs = sine(5.0, 120.0, 120, 1.0);
        for v in &mut xs {
            *v += 100.0; // big DC offset (gravity)
        }
        let f = dominant_frequency(&xs, 120.0);
        assert!((f - 5.0).abs() < 0.6, "DC leaked: found {f}");
    }

    #[test]
    fn entropy_tone_vs_broadband() {
        let tone = sine(4.0, 120.0, 120, 1.0);
        let mut rng = magneto_tensor::SeededRng::new(1);
        let noise: Vec<f32> = (0..120).map(|_| rng.normal()).collect();
        let he = spectral_entropy(&noise);
        let te = spectral_entropy(&tone);
        assert!(he > te * 2.0, "tone {te}, noise {he}");
    }

    #[test]
    fn centroid_tracks_frequency() {
        let low = sine(3.0, 120.0, 120, 1.0);
        let high = sine(30.0, 120.0, 120, 1.0);
        let cl = spectral_centroid(&low, 120.0);
        let ch = spectral_centroid(&high, 120.0);
        assert!((cl - 3.0).abs() < 1.5, "low centroid {cl}");
        assert!((ch - 30.0).abs() < 3.0, "high centroid {ch}");
    }

    #[test]
    fn band_energy_separates_vehicle_bands() {
        // E-scooter buzz at 14 Hz vs car engine at 30 Hz.
        let scooter = sine(14.0, 120.0, 120, 1.0);
        let car = sine(30.0, 120.0, 120, 1.0);
        assert!(band_energy_ratio(&scooter, 120.0, 9.0, 19.0) > 0.9);
        assert!(band_energy_ratio(&scooter, 120.0, 22.0, 38.0) < 0.1);
        assert!(band_energy_ratio(&car, 120.0, 22.0, 38.0) > 0.9);
        assert!(band_energy_ratio(&car, 120.0, 9.0, 19.0) < 0.1);
    }

    #[test]
    fn band_ratios_partition() {
        let mut rng = magneto_tensor::SeededRng::new(2);
        let xs: Vec<f32> = (0..120).map(|_| rng.normal()).collect();
        let lo = band_energy_ratio(&xs, 120.0, 0.0, 20.0);
        let mid = band_energy_ratio(&xs, 120.0, 20.0001, 40.0);
        let hi = band_energy_ratio(&xs, 120.0, 40.0001, 60.0);
        assert!((lo + mid + hi - 1.0).abs() < 1e-4, "{lo}+{mid}+{hi}");
    }
}
