//! Small real-DFT spectral summaries.
//!
//! Cadence (Walk ≈ 1.9 Hz vs Run ≈ 2.8 Hz) and vibration bands
//! (E-scooter ≈ 9–19 Hz vs Drive ≈ 22–38 Hz) are fundamentally spectral
//! signatures, so a handful of the 80 features are frequency-domain. For
//! 120-sample windows a naive `O(n·k)` DFT over `k = n/2` bins is a few
//! thousand multiply-adds — cheaper than setting up an FFT and trivially
//! allocation-free per bin.

use std::f32::consts::TAU;

/// Magnitude spectrum at bins `1..=n/2` (DC excluded). Bin `i` corresponds
/// to frequency `i * sample_rate / n`.
pub fn dft_magnitudes(xs: &[f32]) -> Vec<f32> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f32>() / n as f32;
    let half = n / 2;
    let mut mags = Vec::with_capacity(half);
    for k in 1..=half {
        let mut re = 0.0f32;
        let mut im = 0.0f32;
        let w = TAU * k as f32 / n as f32;
        for (i, &x) in xs.iter().enumerate() {
            let (s, c) = (w * i as f32).sin_cos();
            let v = x - mean; // remove DC so bin 0 leakage doesn't dominate
            re += v * c;
            im -= v * s;
        }
        mags.push((re * re + im * im).sqrt() * 2.0 / n as f32);
    }
    mags
}

/// Frequency (Hz) of the strongest non-DC bin; `0.0` for degenerate input.
pub fn dominant_frequency(xs: &[f32], sample_rate_hz: f32) -> f32 {
    let mags = dft_magnitudes(xs);
    match magneto_tensor::vector::argmax(&mags) {
        Some(i) if mags[i] > 1e-9 => (i + 1) as f32 * sample_rate_hz / xs.len() as f32,
        _ => 0.0,
    }
}

/// Shannon entropy (nats) of the normalised magnitude spectrum. Low for a
/// pure tone (Walk cadence), high for broadband vibration (Drive).
pub fn spectral_entropy(xs: &[f32]) -> f32 {
    let mags = dft_magnitudes(xs);
    let total: f32 = mags.iter().sum();
    if total < 1e-12 {
        return 0.0;
    }
    mags.iter()
        .filter(|&&m| m > 1e-12)
        .map(|&m| {
            let p = m / total;
            -p * p.ln()
        })
        .sum()
}

/// Magnitude-weighted mean frequency (Hz); the spectrum's centre of mass.
pub fn spectral_centroid(xs: &[f32], sample_rate_hz: f32) -> f32 {
    let mags = dft_magnitudes(xs);
    let total: f32 = mags.iter().sum();
    if total < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f32;
    mags.iter()
        .enumerate()
        .map(|(i, &m)| ((i + 1) as f32 * sample_rate_hz / n) * m)
        .sum::<f32>()
        / total
}

/// Fraction of spectral energy inside `[lo_hz, hi_hz]` (inclusive),
/// in `[0, 1]`.
pub fn band_energy_ratio(xs: &[f32], sample_rate_hz: f32, lo_hz: f32, hi_hz: f32) -> f32 {
    let mags = dft_magnitudes(xs);
    let total: f32 = mags.iter().map(|m| m * m).sum();
    if total < 1e-12 {
        return 0.0;
    }
    let n = xs.len() as f32;
    let band: f32 = mags
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let f = (*i + 1) as f32 * sample_rate_hz / n;
            f >= lo_hz && f <= hi_hz
        })
        .map(|(_, &m)| m * m)
        .sum();
    band / total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f32, rate: f32, n: usize, amp: f32) -> Vec<f32> {
        (0..n)
            .map(|i| amp * (TAU * freq * i as f32 / rate).sin())
            .collect()
    }

    #[test]
    fn dft_finds_pure_tone() {
        // 10 Hz tone at 120 Hz rate over 120 samples -> bin 10 (index 9).
        let xs = sine(10.0, 120.0, 120, 1.0);
        let mags = dft_magnitudes(&xs);
        assert_eq!(mags.len(), 60);
        let peak = magneto_tensor::vector::argmax(&mags).unwrap();
        assert_eq!(peak, 9);
        assert!((mags[9] - 1.0).abs() < 0.05, "peak mag {}", mags[9]);
        // Other bins are near zero.
        assert!(mags[30] < 0.05);
    }

    #[test]
    fn dft_degenerate_inputs() {
        assert!(dft_magnitudes(&[]).is_empty());
        assert!(dft_magnitudes(&[1.0]).is_empty());
        assert_eq!(dominant_frequency(&[], 120.0), 0.0);
        assert_eq!(dominant_frequency(&[0.0; 120], 120.0), 0.0);
        assert_eq!(spectral_entropy(&[0.0; 32]), 0.0);
        assert_eq!(spectral_centroid(&[0.0; 32], 120.0), 0.0);
        assert_eq!(band_energy_ratio(&[0.0; 32], 120.0, 0.0, 60.0), 0.0);
    }

    #[test]
    fn dominant_frequency_recovers_cadence() {
        // Walking cadence 2 Hz over 1 s at 120 Hz.
        let xs = sine(2.0, 120.0, 120, 1.5);
        let f = dominant_frequency(&xs, 120.0);
        assert!((f - 2.0).abs() < 0.6, "found {f}");
        // Running cadence 3 Hz resolves above walking.
        let run = sine(3.0, 120.0, 120, 1.5);
        assert!(dominant_frequency(&run, 120.0) > f);
    }

    #[test]
    fn dc_is_ignored() {
        let mut xs = sine(5.0, 120.0, 120, 1.0);
        for v in &mut xs {
            *v += 100.0; // big DC offset (gravity)
        }
        let f = dominant_frequency(&xs, 120.0);
        assert!((f - 5.0).abs() < 0.6, "DC leaked: found {f}");
    }

    #[test]
    fn entropy_tone_vs_broadband() {
        let tone = sine(4.0, 120.0, 120, 1.0);
        let mut rng = magneto_tensor::SeededRng::new(1);
        let noise: Vec<f32> = (0..120).map(|_| rng.normal()).collect();
        let he = spectral_entropy(&noise);
        let te = spectral_entropy(&tone);
        assert!(he > te * 2.0, "tone {te}, noise {he}");
    }

    #[test]
    fn centroid_tracks_frequency() {
        let low = sine(3.0, 120.0, 120, 1.0);
        let high = sine(30.0, 120.0, 120, 1.0);
        let cl = spectral_centroid(&low, 120.0);
        let ch = spectral_centroid(&high, 120.0);
        assert!((cl - 3.0).abs() < 1.5, "low centroid {cl}");
        assert!((ch - 30.0).abs() < 3.0, "high centroid {ch}");
    }

    #[test]
    fn band_energy_separates_vehicle_bands() {
        // E-scooter buzz at 14 Hz vs car engine at 30 Hz.
        let scooter = sine(14.0, 120.0, 120, 1.0);
        let car = sine(30.0, 120.0, 120, 1.0);
        assert!(band_energy_ratio(&scooter, 120.0, 9.0, 19.0) > 0.9);
        assert!(band_energy_ratio(&scooter, 120.0, 22.0, 38.0) < 0.1);
        assert!(band_energy_ratio(&car, 120.0, 22.0, 38.0) > 0.9);
        assert!(band_energy_ratio(&car, 120.0, 9.0, 19.0) < 0.1);
    }

    #[test]
    fn band_ratios_partition() {
        let mut rng = magneto_tensor::SeededRng::new(2);
        let xs: Vec<f32> = (0..120).map(|_| rng.normal()).collect();
        let lo = band_energy_ratio(&xs, 120.0, 0.0, 20.0);
        let mid = band_energy_ratio(&xs, 120.0, 20.0001, 40.0);
        let hi = band_energy_ratio(&xs, 120.0, 40.0001, 60.0);
        assert!((lo + mid + hi - 1.0).abs() < 1e-4, "{lo}+{mid}+{hi}");
    }
}
