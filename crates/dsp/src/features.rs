//! The 80-feature statistical extractor.
//!
//! §4.1.2: "We extract 80 statistical features." The paper does not
//! enumerate them; this reproduction fixes a concrete, conventional HAR
//! feature table with exactly 80 entries, stable in count and order (the
//! network input layer, the normaliser and the support set all depend on
//! that stability):
//!
//! * 8 derived series — `accel_x/y/z`, `|accel|`, `|gyro|`, `|linacc|`,
//!   `|mag|`, `pressure` — × 9 time-domain statistics each
//!   (mean, std, min, max, median, IQR, RMS, skewness, kurtosis) = **72**;
//! * 8 extended features: `|accel|` mean-crossing rate, dominant
//!   frequency, spectral entropy and 8–45 Hz band-energy ratio; `|gyro|`
//!   mean-crossing rate and spectral entropy; Pearson correlations
//!   `accel_x·accel_y` and `accel_y·accel_z` = **8**.
//!
//! All time-domain statistics are `O(n)` except the order statistics
//! (`O(n log n)`), matching the paper's "linear processing time" claim in
//! spirit; the spectral features probe `n/2` DFT bins.

use crate::error::DspError;
use crate::Result;
use magneto_tensor::stats;
use serde::{Deserialize, Serialize};

/// Number of features produced by [`FeatureExtractor::extract`]. The paper
/// specifies 80.
pub const NUM_FEATURES: usize = 80;

/// Channel-layout assumptions (indices into the 22-channel window).
mod layout {
    pub const ACCEL: [usize; 3] = [0, 1, 2];
    pub const GYRO: [usize; 3] = [3, 4, 5];
    pub const MAG: [usize; 3] = [6, 7, 8];
    pub const LINACC: [usize; 3] = [9, 10, 11];
    pub const PRESSURE: usize = 19;
    pub const MIN_CHANNELS: usize = 20;
}

const BASE_STATS: [&str; 9] = [
    "mean", "std", "min", "max", "median", "iqr", "rms", "skew", "kurt",
];

const SERIES_NAMES: [&str; 8] = [
    "accel_x",
    "accel_y",
    "accel_z",
    "accel_mag",
    "gyro_mag",
    "linacc_mag",
    "mag_mag",
    "pressure",
];

/// The spec-table-driven feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Sample rate of incoming windows (Hz); needed by spectral features.
    pub sample_rate_hz: f32,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor {
            sample_rate_hz: 120.0,
        }
    }
}

impl FeatureExtractor {
    /// Create an extractor for windows sampled at `sample_rate_hz`.
    pub fn new(sample_rate_hz: f32) -> Self {
        FeatureExtractor { sample_rate_hz }
    }

    /// Names of the 80 features, in output order.
    pub fn feature_names() -> Vec<String> {
        let mut names = Vec::with_capacity(NUM_FEATURES);
        for series in SERIES_NAMES {
            for stat in BASE_STATS {
                names.push(format!("{series}.{stat}"));
            }
        }
        names.extend(
            [
                "accel_mag.mcr",
                "accel_mag.dom_freq",
                "accel_mag.spec_entropy",
                "accel_mag.band_8_45",
                "gyro_mag.mcr",
                "gyro_mag.spec_entropy",
                "corr.accel_xy",
                "corr.accel_yz",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        debug_assert_eq!(names.len(), NUM_FEATURES);
        names
    }

    /// Extract the 80-dimensional feature vector from a channel-major
    /// window (≥ 20 channels in the standard sensor layout, any length
    /// ≥ 8 samples).
    ///
    /// # Errors
    /// [`DspError::ChannelMismatch`] / [`DspError::WindowTooShort`] on
    /// malformed input.
    pub fn extract(&self, channels: &[Vec<f32>]) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; NUM_FEATURES];
        self.extract_into(channels, &mut out)?;
        Ok(out)
    }

    /// [`extract`](Self::extract) writing the 80 features directly into a
    /// caller-provided slice — typically one row of a preallocated
    /// feature matrix, so batch featurisation allocates no per-window
    /// output vectors.
    ///
    /// # Errors
    /// [`DspError::DimensionMismatch`] unless `out.len() == NUM_FEATURES`,
    /// plus the malformed-window errors of [`extract`](Self::extract).
    pub fn extract_into(&self, channels: &[Vec<f32>], out: &mut [f32]) -> Result<()> {
        if out.len() != NUM_FEATURES {
            return Err(DspError::DimensionMismatch {
                expected: NUM_FEATURES,
                found: out.len(),
            });
        }
        if channels.len() < layout::MIN_CHANNELS {
            return Err(DspError::ChannelMismatch {
                expected: layout::MIN_CHANNELS,
                found: channels.len(),
            });
        }
        let n = channels.iter().map(Vec::len).min().unwrap_or(0);
        if n < 8 {
            return Err(DspError::WindowTooShort {
                required: 8,
                found: n,
            });
        }

        let accel_x = &channels[layout::ACCEL[0]];
        let accel_y = &channels[layout::ACCEL[1]];
        let accel_z = &channels[layout::ACCEL[2]];
        let accel_mag = magnitude_series(channels, layout::ACCEL, n);
        let gyro_mag = magnitude_series(channels, layout::GYRO, n);
        let linacc_mag = magnitude_series(channels, layout::LINACC, n);
        let mag_mag = magnitude_series(channels, layout::MAG, n);
        let pressure = &channels[layout::PRESSURE];

        let series: [&[f32]; 8] = [
            &accel_x[..n],
            &accel_y[..n],
            &accel_z[..n],
            &accel_mag,
            &gyro_mag,
            &linacc_mag,
            &mag_mag,
            &pressure[..n],
        ];

        let mut slots = out.iter_mut();
        let mut emit = |v: f32| {
            *slots.next().expect("feature table matches NUM_FEATURES") = v;
        };
        // The order statistics of each series share one sorted copy
        // (median and IQR probe the same ranks), reusing a single scratch
        // buffer across all eight series.
        let mut sorted: Vec<f32> = Vec::with_capacity(n);
        for s in series {
            sorted.clear();
            sorted.extend_from_slice(s);
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            // The nine statistics need three passes: raw sums (mean, RMS,
            // min, max), centred second moment (std), and standardised
            // third/fourth moments (skew, kurtosis) — each accumulator
            // matches its single-purpose `stats` counterpart.
            let len = s.len() as f32;
            let (mut sum, mut sum_sq) = (0.0f32, 0.0f32);
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &x in s {
                sum += x;
                sum_sq += x * x;
                lo = lo.min(x);
                hi = hi.max(x);
            }
            let mean = sum / len;
            let std = stats::variance_with(s, mean).sqrt();
            let (mut m3, mut m4) = (0.0f32, 0.0f32);
            if std >= 1e-12 {
                for &x in s {
                    let d = (x - mean) / std;
                    let d2 = d * d;
                    m3 += d2 * d;
                    m4 += d2 * d2;
                }
            }
            emit(mean);
            emit(std);
            emit(lo);
            emit(hi);
            emit(stats::percentile_of_sorted(&sorted, 50.0));
            emit(
                stats::percentile_of_sorted(&sorted, 75.0)
                    - stats::percentile_of_sorted(&sorted, 25.0),
            );
            emit((sum_sq / len).sqrt());
            emit(if s.len() < 3 || std < 1e-12 { 0.0 } else { m3 / len });
            emit(if s.len() < 4 || std < 1e-12 {
                0.0
            } else {
                m4 / len - 3.0
            });
        }
        // Each magnitude series contributes several spectral summaries;
        // evaluate its Goertzel spectrum once and share it.
        let accel_spectrum = crate::spectral::dft_magnitudes(&accel_mag);
        emit(stats::mean_crossing_rate(&accel_mag));
        emit(crate::spectral::dominant_frequency_of(
            &accel_spectrum,
            accel_mag.len(),
            self.sample_rate_hz,
        ));
        emit(crate::spectral::spectral_entropy_of(&accel_spectrum));
        emit(crate::spectral::band_energy_ratio_of(
            &accel_spectrum,
            accel_mag.len(),
            self.sample_rate_hz,
            8.0,
            45.0,
        ));
        emit(stats::mean_crossing_rate(&gyro_mag));
        emit(crate::spectral::spectral_entropy(&gyro_mag));
        emit(stats::pearson(&accel_x[..n], &accel_y[..n]));
        emit(stats::pearson(&accel_y[..n], &accel_z[..n]));
        debug_assert!(slots.next().is_none(), "feature table short of NUM_FEATURES");

        // A malformed sample must never poison downstream training.
        for v in out.iter_mut() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        Ok(())
    }
}

/// Per-sample Euclidean magnitude of a 3-axis group.
fn magnitude_series(channels: &[Vec<f32>], axes: [usize; 3], n: usize) -> Vec<f32> {
    let (xs, ys, zs) = (&channels[axes[0]], &channels[axes[1]], &channels[axes[2]]);
    (0..n)
        .map(|i| (xs[i] * xs[i] + ys[i] * ys[i] + zs[i] * zs[i]).sqrt())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 22-channel window: channel c holds a sinusoid with
    /// channel-dependent frequency/offset so features are nontrivial.
    fn test_window(n: usize) -> Vec<Vec<f32>> {
        (0..22)
            .map(|c| {
                (0..n)
                    .map(|i| {
                        let t = i as f32 / 120.0;
                        (c as f32 + 1.0) * 0.1
                            + ((c as f32 + 1.0) * t * std::f32::consts::TAU).sin()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exactly_80_features() {
        assert_eq!(NUM_FEATURES, 80);
        assert_eq!(FeatureExtractor::feature_names().len(), 80);
        let fx = FeatureExtractor::default();
        let out = fx.extract(&test_window(120)).unwrap();
        assert_eq!(out.len(), 80);
    }

    #[test]
    fn feature_names_unique() {
        let mut names = FeatureExtractor::feature_names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn rejects_malformed_windows() {
        let fx = FeatureExtractor::default();
        assert!(matches!(
            fx.extract(&test_window(120)[..5]),
            Err(DspError::ChannelMismatch { .. })
        ));
        assert!(matches!(
            fx.extract(&test_window(4)),
            Err(DspError::WindowTooShort { .. })
        ));
    }

    #[test]
    fn all_features_finite_even_for_constant_window() {
        let fx = FeatureExtractor::default();
        let constant: Vec<Vec<f32>> = vec![vec![1.0; 120]; 22];
        let out = fx.extract(&constant).unwrap();
        assert!(out.iter().all(|v| v.is_finite()));
        // std/iqr/skew of a constant are zero.
        let names = FeatureExtractor::feature_names();
        let idx = |name: &str| names.iter().position(|n| n == name).unwrap();
        assert_eq!(out[idx("accel_x.std")], 0.0);
        assert_eq!(out[idx("accel_x.iqr")], 0.0);
        assert_eq!(out[idx("accel_x.skew")], 0.0);
    }

    #[test]
    fn deterministic() {
        let fx = FeatureExtractor::default();
        let w = test_window(120);
        assert_eq!(fx.extract(&w).unwrap(), fx.extract(&w).unwrap());
    }

    #[test]
    fn mean_feature_matches_stats() {
        let fx = FeatureExtractor::default();
        let w = test_window(120);
        let out = fx.extract(&w).unwrap();
        let names = FeatureExtractor::feature_names();
        let idx = names.iter().position(|n| n == "accel_x.mean").unwrap();
        assert!((out[idx] - stats::mean(&w[0])).abs() < 1e-6);
        let pidx = names.iter().position(|n| n == "pressure.mean").unwrap();
        assert!((out[pidx] - stats::mean(&w[19])).abs() < 1e-6);
    }

    #[test]
    fn accel_mag_features_use_magnitude() {
        let fx = FeatureExtractor::default();
        let mut w: Vec<Vec<f32>> = vec![vec![0.0; 120]; 22];
        w[0] = vec![3.0; 120];
        w[1] = vec![4.0; 120];
        let out = fx.extract(&w).unwrap();
        let names = FeatureExtractor::feature_names();
        let idx = names.iter().position(|n| n == "accel_mag.mean").unwrap();
        assert!((out[idx] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn dominant_frequency_feature_sees_cadence() {
        let fx = FeatureExtractor::default();
        let mut w: Vec<Vec<f32>> = vec![vec![0.0; 120]; 22];
        // 3 Hz oscillation on accel_z, constant elsewhere.
        w[2] = (0..120)
            .map(|i| 9.8 + (std::f32::consts::TAU * 3.0 * i as f32 / 120.0).sin())
            .collect();
        let out = fx.extract(&w).unwrap();
        let names = FeatureExtractor::feature_names();
        let idx = names
            .iter()
            .position(|n| n == "accel_mag.dom_freq")
            .unwrap();
        assert!((out[idx] - 3.0).abs() < 1.1, "dom freq {}", out[idx]);
    }

    #[test]
    fn correlation_features_detect_coupled_axes() {
        let fx = FeatureExtractor::default();
        let mut w: Vec<Vec<f32>> = vec![vec![0.0; 120]; 22];
        let sig: Vec<f32> = (0..120)
            .map(|i| (std::f32::consts::TAU * 2.0 * i as f32 / 120.0).sin())
            .collect();
        w[0] = sig.clone();
        w[1] = sig.clone(); // x and y perfectly correlated
        w[2] = sig.iter().map(|v| -v).collect(); // z anti-correlated to y
        let out = fx.extract(&w).unwrap();
        let names = FeatureExtractor::feature_names();
        let xy = names.iter().position(|n| n == "corr.accel_xy").unwrap();
        let yz = names.iter().position(|n| n == "corr.accel_yz").unwrap();
        assert!(out[xy] > 0.99);
        assert!(out[yz] < -0.99);
    }

    #[test]
    fn works_with_short_and_long_windows() {
        let fx = FeatureExtractor::default();
        for n in [8, 60, 120, 240] {
            assert_eq!(fx.extract(&test_window(n)).unwrap().len(), 80);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let fx = FeatureExtractor::new(100.0);
        let json = serde_json::to_string(&fx).unwrap();
        let back: FeatureExtractor = serde_json::from_str(&json).unwrap();
        assert_eq!(fx, back);
    }
}
