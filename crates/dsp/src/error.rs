//! Error type for the pre-processing pipeline.

use std::fmt;

/// Errors produced by DSP components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input window does not have the expected channel count.
    ChannelMismatch {
        /// Channels expected by the pipeline.
        expected: usize,
        /// Channels found in the input.
        found: usize,
    },
    /// The input window is shorter than a component requires.
    WindowTooShort {
        /// Minimum samples required.
        required: usize,
        /// Samples found.
        found: usize,
    },
    /// A normaliser was applied to a vector of the wrong dimension.
    DimensionMismatch {
        /// Dimension the normaliser was fitted for.
        expected: usize,
        /// Dimension of the input.
        found: usize,
    },
    /// A normaliser was used before being fitted.
    NotFitted,
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::ChannelMismatch { expected, found } => {
                write!(f, "expected {expected} channels, found {found}")
            }
            DspError::WindowTooShort { required, found } => {
                write!(f, "window too short: need {required} samples, found {found}")
            }
            DspError::DimensionMismatch { expected, found } => {
                write!(f, "normaliser fitted for {expected} dims, input has {found}")
            }
            DspError::NotFitted => write!(f, "normaliser used before fit()"),
            DspError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(DspError::ChannelMismatch {
            expected: 22,
            found: 3
        }
        .to_string()
        .contains("22"));
        assert!(DspError::WindowTooShort {
            required: 8,
            found: 2
        }
        .to_string()
        .contains("8"));
        assert!(DspError::NotFitted.to_string().contains("fit"));
        assert!(DspError::InvalidConfig("x".into()).to_string().contains("x"));
        assert!(DspError::DimensionMismatch {
            expected: 80,
            found: 79
        }
        .to_string()
        .contains("80"));
    }
}
