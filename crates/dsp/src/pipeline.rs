//! The composed, versioned pre-processing pipeline.
//!
//! This is "the pre-processing function" of Figure 2 — the first of the
//! three artefacts the Cloud ships to the Edge (§3.2). It composes
//! denoise → feature extraction → normalisation into one serialisable
//! object so both sides run byte-identical pre-processing.

use crate::error::DspError;
use crate::features::{FeatureExtractor, NUM_FEATURES};
use crate::filter::DenoiseConfig;
use crate::guard::{self, GuardConfig, SignalQuality};
use crate::normalize::{Normalizer, NormalizerKind};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Format version embedded in serialised pipelines; the Edge refuses
/// bundles whose version it does not understand.
pub const PIPELINE_VERSION: u32 = 1;

/// Pipeline construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Denoising applied per channel before feature extraction.
    pub denoise: DenoiseConfig,
    /// Normalisation scheme fitted during Cloud initialisation.
    pub normalizer_kind: NormalizerKind,
    /// Sample rate of incoming windows (Hz).
    pub sample_rate_hz: f32,
    /// Entry-point signal guard (non-finite / out-of-range repair).
    /// Defaults keep bundles serialised before this field existed
    /// loadable.
    #[serde(default)]
    pub guard: GuardConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            denoise: DenoiseConfig::default(),
            normalizer_kind: NormalizerKind::ZScore,
            sample_rate_hz: 120.0,
            guard: GuardConfig::default(),
        }
    }
}

/// Denoise → 80 features → normalise, as one serialisable unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocessingPipeline {
    version: u32,
    config: PipelineConfig,
    extractor: FeatureExtractor,
    normalizer: Option<Normalizer>,
}

impl PreprocessingPipeline {
    /// Create an unfitted pipeline (features flow through unnormalised
    /// until [`fit_normalizer`](Self::fit_normalizer) runs on the Cloud).
    pub fn new(config: PipelineConfig) -> Self {
        PreprocessingPipeline {
            version: PIPELINE_VERSION,
            extractor: FeatureExtractor::new(config.sample_rate_hz),
            normalizer: None,
            config,
        }
    }

    /// Format version of this pipeline.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The construction parameters.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Whether the normaliser has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.normalizer.is_some()
    }

    /// Number of output features (always [`NUM_FEATURES`]).
    pub fn output_dim(&self) -> usize {
        NUM_FEATURES
    }

    /// Raw (denoised, unnormalised) features for one channel-major window.
    ///
    /// # Errors
    /// Propagates extractor errors on malformed windows.
    pub fn raw_features(&self, channels: &[Vec<f32>]) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; NUM_FEATURES];
        self.raw_features_into(channels, &mut out)?;
        Ok(out)
    }

    /// [`raw_features`](Self::raw_features) writing into a caller-provided
    /// slice of length [`NUM_FEATURES`].
    ///
    /// # Errors
    /// Propagates extractor errors on malformed windows or a wrong-length
    /// output slice.
    pub fn raw_features_into(&self, channels: &[Vec<f32>], out: &mut [f32]) -> Result<()> {
        // One compiled kernel denoises the whole window lane-parallel
        // across channels; only the denoised per-channel outputs are
        // allocated.
        let kernel = self.config.denoise.kernel();
        let mut scratch = crate::filter::WindowDenoiseScratch::default();
        let mut denoised: Vec<Vec<f32>> = Vec::new();
        kernel.apply_window_into(channels, &mut denoised, &mut scratch);
        self.extractor.extract_into(&denoised, out)
    }

    /// Fit the normaliser over a corpus of windows (Cloud side).
    ///
    /// # Errors
    /// Fails when `windows` is empty or any window is malformed.
    pub fn fit_normalizer(&mut self, windows: &[&[Vec<f32>]]) -> Result<()> {
        let mut rows = Vec::with_capacity(windows.len());
        for w in windows {
            rows.push(self.raw_features(w)?);
        }
        self.normalizer = Some(Normalizer::fit(self.config.normalizer_kind, &rows)?);
        Ok(())
    }

    /// Full pipeline: denoise → features → normalise (if fitted).
    ///
    /// # Errors
    /// Propagates extractor/normaliser errors.
    pub fn process(&self, channels: &[Vec<f32>]) -> Result<Vec<f32>> {
        let mut feats = vec![0.0f32; NUM_FEATURES];
        self.process_into(channels, &mut feats)?;
        Ok(feats)
    }

    /// Full pipeline emitting the normalised features directly into a
    /// caller-provided slice — typically one row of a preallocated
    /// `(batch, 80)` feature matrix, so batch featurisation performs no
    /// per-window output allocation.
    ///
    /// # Errors
    /// Propagates extractor/normaliser errors.
    pub fn process_into(&self, channels: &[Vec<f32>], out: &mut [f32]) -> Result<()> {
        self.raw_features_into(channels, out)?;
        if let Some(norm) = &self.normalizer {
            norm.apply(out)?;
        }
        Ok(())
    }

    /// Guarded full pipeline: scan the window at entry, repair any
    /// non-finite / out-of-range samples (last-good-value hold within the
    /// window), then run denoise → features → normalise. Returns whether
    /// the window was [`SignalQuality::Nominal`] or had to be repaired.
    ///
    /// Clean windows take the exact same path as
    /// [`process_into`](Self::process_into) — no copy, no extra work
    /// beyond the scan — so the guard is free on the healthy fast path.
    ///
    /// # Errors
    /// Structural faults (empty channel, wrong channel count, too-short
    /// window) are *not* repairable and still error; only value faults
    /// are scrubbed.
    pub fn process_checked_into(
        &self,
        channels: &[Vec<f32>],
        out: &mut [f32],
    ) -> Result<SignalQuality> {
        if guard::window_is_clean(channels, &self.config.guard) {
            self.process_into(channels, out)?;
            return Ok(SignalQuality::Nominal);
        }
        let mut scrubbed = channels.to_vec();
        guard::scrub_window(&mut scrubbed, &self.config.guard);
        self.process_into(&scrubbed, out)?;
        Ok(SignalQuality::Degraded)
    }

    /// Allocating convenience wrapper around
    /// [`process_checked_into`](Self::process_checked_into).
    ///
    /// # Errors
    /// Same as `process_checked_into`.
    pub fn process_checked(&self, channels: &[Vec<f32>]) -> Result<(Vec<f32>, SignalQuality)> {
        let mut feats = vec![0.0f32; NUM_FEATURES];
        let quality = self.process_checked_into(channels, &mut feats)?;
        Ok((feats, quality))
    }

    /// Serialise to JSON bytes (the bundle embeds this).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("pipeline serialisation cannot fail")
    }

    /// Deserialise from bytes produced by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    /// [`DspError::InvalidConfig`] on malformed bytes or an unsupported
    /// version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let p: PreprocessingPipeline = serde_json::from_slice(bytes)
            .map_err(|e| DspError::InvalidConfig(format!("pipeline decode: {e}")))?;
        if p.version != PIPELINE_VERSION {
            return Err(DspError::InvalidConfig(format!(
                "unsupported pipeline version {} (expected {})",
                p.version, PIPELINE_VERSION
            )));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magneto_tensor::SeededRng;

    fn noisy_window(seed: u64) -> Vec<Vec<f32>> {
        let mut rng = SeededRng::new(seed);
        (0..22)
            .map(|c| {
                (0..120)
                    .map(|i| {
                        let t = i as f32 / 120.0;
                        (c as f32 * 0.3)
                            + (std::f32::consts::TAU * 2.0 * t).sin()
                            + rng.normal_with(0.0, 0.1)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn unfitted_pipeline_passes_raw_features() {
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        assert!(!p.is_fitted());
        assert_eq!(p.output_dim(), 80);
        let w = noisy_window(1);
        let raw = p.raw_features(&w).unwrap();
        let processed = p.process(&w).unwrap();
        assert_eq!(raw, processed);
    }

    #[test]
    fn fitted_pipeline_normalizes() {
        let mut p = PreprocessingPipeline::new(PipelineConfig::default());
        let windows: Vec<Vec<Vec<f32>>> = (0..20).map(noisy_window).collect();
        let refs: Vec<&[Vec<f32>]> = windows.iter().map(|w| w.as_slice()).collect();
        p.fit_normalizer(&refs).unwrap();
        assert!(p.is_fitted());
        // Features of the fitted corpus are roughly standardised.
        let processed: Vec<Vec<f32>> =
            windows.iter().map(|w| p.process(w).unwrap()).collect();
        let col: Vec<f32> = processed.iter().map(|r| r[0]).collect();
        assert!(magneto_tensor::stats::mean(&col).abs() < 0.5);
    }

    #[test]
    fn fit_on_empty_fails() {
        let mut p = PreprocessingPipeline::new(PipelineConfig::default());
        assert!(p.fit_normalizer(&[]).is_err());
    }

    #[test]
    fn denoising_changes_features_of_noisy_window() {
        let p_on = PreprocessingPipeline::new(PipelineConfig::default());
        let p_off = PreprocessingPipeline::new(PipelineConfig {
            denoise: DenoiseConfig::disabled(),
            ..PipelineConfig::default()
        });
        let w = noisy_window(2);
        let a = p_on.raw_features(&w).unwrap();
        let b = p_off.raw_features(&w).unwrap();
        assert_ne!(a, b);
        // Denoising reduces the std features of a noisy constant-ish
        // channel group (magnitudes shrink once HF noise is removed).
        let names = crate::features::FeatureExtractor::feature_names();
        let std_idx = names.iter().position(|n| n == "accel_x.std").unwrap();
        assert!(a[std_idx] <= b[std_idx] + 1e-4);
    }

    #[test]
    fn bytes_roundtrip_preserves_behaviour() {
        let mut p = PreprocessingPipeline::new(PipelineConfig::default());
        let windows: Vec<Vec<Vec<f32>>> = (0..10).map(noisy_window).collect();
        let refs: Vec<&[Vec<f32>]> = windows.iter().map(|w| w.as_slice()).collect();
        p.fit_normalizer(&refs).unwrap();
        let bytes = p.to_bytes();
        let q = PreprocessingPipeline::from_bytes(&bytes).unwrap();
        let w = noisy_window(99);
        assert_eq!(p.process(&w).unwrap(), q.process(&w).unwrap());
        assert_eq!(q.version(), PIPELINE_VERSION);
    }

    #[test]
    fn version_gate_rejects_future_formats() {
        let mut p = PreprocessingPipeline::new(PipelineConfig::default());
        p.version = 99;
        let bytes = serde_json::to_vec(&p).unwrap();
        assert!(matches!(
            PreprocessingPipeline::from_bytes(&bytes),
            Err(DspError::InvalidConfig(_))
        ));
        assert!(PreprocessingPipeline::from_bytes(b"not json").is_err());
    }

    #[test]
    fn config_accessor() {
        let cfg = PipelineConfig::default();
        let p = PreprocessingPipeline::new(cfg);
        assert_eq!(p.config(), &cfg);
    }

    #[test]
    fn pre_guard_configs_deserialize_with_default_guard() {
        // Bundles serialised before the guard field existed must load:
        // round-trip the default config with its "guard" key spliced out.
        let json = serde_json::to_string(&PipelineConfig::default()).unwrap();
        assert!(json.contains("\"guard\""));
        let start = json.find(",\"guard\"").unwrap();
        let end = json[start + 1..].find("}").unwrap() + start + 2;
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        let cfg: PipelineConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(cfg.guard, crate::guard::GuardConfig::default());
    }

    // Entry-point guard: one test per injected fault class.

    fn checked(p: &PreprocessingPipeline, w: &[Vec<f32>]) -> (Vec<f32>, SignalQuality) {
        let (feats, q) = p.process_checked(w).unwrap();
        assert!(feats.iter().all(|v| v.is_finite()), "non-finite features");
        (feats, q)
    }

    #[test]
    fn guard_clean_window_is_nominal_and_matches_unchecked() {
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        let w = noisy_window(10);
        let (feats, q) = checked(&p, &w);
        assert_eq!(q, SignalQuality::Nominal);
        assert_eq!(feats, p.process(&w).unwrap());
    }

    #[test]
    fn guard_repairs_nan_samples() {
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        let mut w = noisy_window(11);
        w[3][40] = f32::NAN;
        w[3][41] = f32::NAN;
        let (_, q) = checked(&p, &w);
        assert_eq!(q, SignalQuality::Degraded);
    }

    #[test]
    fn guard_repairs_infinite_samples() {
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        let mut w = noisy_window(12);
        w[0][0] = f32::INFINITY;
        w[21][119] = f32::NEG_INFINITY;
        let (_, q) = checked(&p, &w);
        assert_eq!(q, SignalQuality::Degraded);
    }

    #[test]
    fn guard_repairs_saturated_samples() {
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        let mut w = noisy_window(13);
        for i in 20..30 {
            w[5][i] = 1.0e7; // above GuardConfig::default().max_abs
        }
        let (_, q) = checked(&p, &w);
        assert_eq!(q, SignalQuality::Degraded);
    }

    #[test]
    fn guard_empty_channel_still_errors() {
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        let mut w = noisy_window(14);
        w[7].clear();
        let mut out = vec![0.0f32; NUM_FEATURES];
        assert!(p.process_checked_into(&w, &mut out).is_err());
    }

    #[test]
    fn guard_all_nan_window_still_produces_finite_features() {
        // Worst case: every sample of every channel is garbage. The
        // scrub holds 0.0 everywhere; features must still be finite
        // (and the quality flag tells the caller not to trust them).
        let p = PreprocessingPipeline::new(PipelineConfig::default());
        let w: Vec<Vec<f32>> = (0..22).map(|_| vec![f32::NAN; 120]).collect();
        let (_, q) = checked(&p, &w);
        assert_eq!(q, SignalQuality::Degraded);
    }
}
