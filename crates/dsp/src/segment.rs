//! Segmentation of sample streams into fixed-length windows.
//!
//! The paper segments sensor streams into one-second windows of ~120
//! samples (§4.1.2). [`Segmenter`] is the streaming form used on the Edge
//! (push samples, windows pop out); [`segment_series`] is the offline form
//! used during Cloud initialisation.

use serde::{Deserialize, Serialize};

/// Offline segmentation of a multi-channel series into `(window_len, hop)`
/// windows. Each output window is channel-major like the input. Trailing
/// samples that do not fill a window are discarded.
pub fn segment_series(
    channels: &[Vec<f32>],
    window_len: usize,
    hop: usize,
) -> Vec<Vec<Vec<f32>>> {
    if window_len == 0 || hop == 0 || channels.is_empty() {
        return Vec::new();
    }
    let n = channels.iter().map(Vec::len).min().unwrap_or(0);
    if n < window_len {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut start = 0;
    while start + window_len <= n {
        let window: Vec<Vec<f32>> = channels
            .iter()
            .map(|c| c[start..start + window_len].to_vec())
            .collect();
        out.push(window);
        start += hop;
    }
    out
}

/// Streaming segmenter: accepts one multi-channel sample at a time and
/// yields a full window every `hop` samples once warm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segmenter {
    window_len: usize,
    hop: usize,
    channels: usize,
    buffer: Vec<Vec<f32>>,
    since_last: usize,
    emitted: u64,
}

impl Segmenter {
    /// Create a segmenter for `channels`-channel input.
    ///
    /// `hop == window_len` gives non-overlapping windows (the paper's
    /// configuration); smaller hops give overlap.
    pub fn new(channels: usize, window_len: usize, hop: usize) -> Self {
        Segmenter {
            window_len: window_len.max(1),
            hop: hop.max(1),
            channels,
            buffer: vec![Vec::new(); channels],
            since_last: 0,
            emitted: 0,
        }
    }

    /// Push one sample (one value per channel). Returns a channel-major
    /// window when one completes.
    ///
    /// Samples with the wrong channel count are ignored (a real sensor
    /// service occasionally delivers partial batches; dropping them is the
    /// robust choice for a 1-second window).
    pub fn push(&mut self, sample: &[f32]) -> Option<Vec<Vec<f32>>> {
        if sample.len() != self.channels {
            return None;
        }
        for (buf, &v) in self.buffer.iter_mut().zip(sample.iter()) {
            buf.push(v);
        }
        if self.buffer[0].len() < self.window_len {
            return None;
        }
        // Buffer holds exactly window_len samples now or more; emit when
        // the hop boundary is reached.
        if self.buffer[0].len() > self.window_len {
            // Keep the buffer at window_len by dropping the oldest sample.
            for buf in &mut self.buffer {
                buf.remove(0);
            }
        }
        self.since_last += 1;
        let due = if self.emitted == 0 {
            self.buffer[0].len() == self.window_len
        } else {
            self.since_last >= self.hop
        };
        if due {
            self.since_last = 0;
            self.emitted += 1;
            Some(self.buffer.clone())
        } else {
            None
        }
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Discard buffered samples (e.g. on activity-recording restart).
    pub fn reset(&mut self) {
        for buf in &mut self.buffer {
            buf.clear();
        }
        self.since_last = 0;
        self.emitted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_channels(channels: usize, n: usize) -> Vec<Vec<f32>> {
        (0..channels)
            .map(|c| (0..n).map(|i| (c * 1000 + i) as f32).collect())
            .collect()
    }

    #[test]
    fn offline_non_overlapping() {
        let ch = ramp_channels(2, 10);
        let ws = segment_series(&ch, 4, 4);
        assert_eq!(ws.len(), 2); // samples 0..4, 4..8; 8..10 discarded
        assert_eq!(ws[0][0], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(ws[1][1], vec![1004.0, 1005.0, 1006.0, 1007.0]);
    }

    #[test]
    fn offline_overlapping() {
        let ch = ramp_channels(1, 8);
        let ws = segment_series(&ch, 4, 2);
        assert_eq!(ws.len(), 3); // starts 0, 2, 4
        assert_eq!(ws[1][0], vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn offline_degenerate_inputs() {
        assert!(segment_series(&[], 4, 4).is_empty());
        assert!(segment_series(&ramp_channels(1, 3), 4, 4).is_empty());
        assert!(segment_series(&ramp_channels(1, 8), 0, 4).is_empty());
        assert!(segment_series(&ramp_channels(1, 8), 4, 0).is_empty());
    }

    #[test]
    fn offline_uses_shortest_channel() {
        let mut ch = ramp_channels(2, 10);
        ch[1].truncate(6);
        let ws = segment_series(&ch, 4, 4);
        assert_eq!(ws.len(), 1);
    }

    #[test]
    fn streaming_non_overlapping_matches_offline() {
        let ch = ramp_channels(3, 12);
        let offline = segment_series(&ch, 4, 4);
        let mut seg = Segmenter::new(3, 4, 4);
        let mut streamed = Vec::new();
        for i in 0..12 {
            let sample: Vec<f32> = ch.iter().map(|c| c[i]).collect();
            if let Some(w) = seg.push(&sample) {
                streamed.push(w);
            }
        }
        assert_eq!(offline, streamed);
        assert_eq!(seg.emitted(), 3);
    }

    #[test]
    fn streaming_overlapping_hops() {
        let mut seg = Segmenter::new(1, 4, 2);
        let mut windows = Vec::new();
        for i in 0..10 {
            if let Some(w) = seg.push(&[i as f32]) {
                windows.push(w[0].clone());
            }
        }
        assert_eq!(windows.len(), 4); // at samples 4, 6, 8, 10
        assert_eq!(windows[0], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(windows[1], vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn streaming_ignores_malformed_samples() {
        let mut seg = Segmenter::new(2, 3, 3);
        assert!(seg.push(&[1.0]).is_none()); // wrong arity, ignored
        for i in 0..3 {
            let out = seg.push(&[i as f32, i as f32]);
            if i == 2 {
                assert!(out.is_some());
            } else {
                assert!(out.is_none());
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut seg = Segmenter::new(1, 3, 3);
        seg.push(&[1.0]);
        seg.push(&[2.0]);
        seg.reset();
        assert!(seg.push(&[3.0]).is_none());
        assert!(seg.push(&[4.0]).is_none());
        assert!(seg.push(&[5.0]).is_some());
        assert_eq!(seg.emitted(), 1);
    }
}
