//! Denoising filters.
//!
//! The denoising stage runs on the Edge for every incoming window, so all
//! filters here are single-pass and allocation-light. The composition the
//! pipeline uses by default is median (kills spike artefacts) followed by
//! a Butterworth low-pass (tames broadband noise above the motion band).

use serde::{Deserialize, Serialize};

/// Centered moving average with window `k` (odd; clamped to the signal at
/// the edges). `k <= 1` returns the input unchanged.
pub fn moving_average(xs: &[f32], k: usize) -> Vec<f32> {
    if k <= 1 || xs.is_empty() {
        return xs.to_vec();
    }
    let half = k / 2;
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    // Prefix sums for O(n) evaluation.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    for &x in xs {
        prefix.push(prefix.last().unwrap() + f64::from(x));
    }
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let sum = prefix[hi] - prefix[lo];
        out.push((sum / (hi - lo) as f64) as f32);
    }
    out
}

/// Centered median filter with window `k` (odd; clamped at the edges).
/// `k <= 1` returns the input unchanged. Removes isolated spikes without
/// smearing step edges the way a mean filter does.
pub fn median_filter(xs: &[f32], k: usize) -> Vec<f32> {
    let mut out = Vec::new();
    median_filter_into(xs, k, &mut out);
    out
}

/// [`median_filter`] writing into a caller-provided buffer (cleared
/// first), so per-window denoising allocates nothing after warm-up.
pub fn median_filter_into(xs: &[f32], k: usize, out: &mut Vec<f32>) {
    out.clear();
    if k <= 1 || xs.is_empty() {
        out.extend_from_slice(xs);
        return;
    }
    let n = xs.len();
    out.reserve(n);
    if k == 3 {
        // The pipeline default: a branchless median-of-three over the
        // interior, max-of-two at the clamped edges (the sorted middle of
        // a two-sample window is its larger element).
        if n == 1 {
            out.push(xs[0]);
            return;
        }
        out.push(xs[0].max(xs[1]));
        for w in xs.windows(3) {
            let (a, b, c) = (w[0], w[1], w[2]);
            out.push(a.max(b).min(a.min(b).max(c)));
        }
        out.push(xs[n - 2].max(xs[n - 1]));
        return;
    }
    let half = k / 2;
    let mut buf: Vec<f32> = Vec::with_capacity(k);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        buf.clear();
        buf.extend_from_slice(&xs[lo..hi]);
        buf.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        out.push(buf[buf.len() / 2]);
    }
}

/// Exponential moving average with smoothing factor `alpha` in `(0, 1]`;
/// `alpha = 1` is the identity.
pub fn exponential_smoothing(xs: &[f32], alpha: f32) -> Vec<f32> {
    let alpha = alpha.clamp(1e-6, 1.0);
    let mut out = Vec::with_capacity(xs.len());
    let mut state = match xs.first() {
        Some(&x) => x,
        None => return Vec::new(),
    };
    for &x in xs {
        state = alpha * x + (1.0 - alpha) * state;
        out.push(state);
    }
    out
}

/// Second-order (biquad) Butterworth low-pass filter.
///
/// Coefficients follow the RBJ audio-EQ cookbook with Butterworth Q
/// (`1/sqrt(2)`). Processed with zero initial state; for offline windows
/// use [`Biquad::filtfilt`] for zero phase distortion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    b0: f32,
    b1: f32,
    b2: f32,
    a1: f32,
    a2: f32,
}

impl Biquad {
    /// Design a low-pass at `cutoff_hz` for signals sampled at
    /// `sample_rate_hz`. The cutoff is clamped just below Nyquist.
    pub fn lowpass(cutoff_hz: f64, sample_rate_hz: f64) -> Self {
        let nyquist = sample_rate_hz / 2.0;
        let fc = cutoff_hz.clamp(0.01, nyquist * 0.99);
        let w0 = std::f64::consts::PI * 2.0 * fc / sample_rate_hz;
        let cos_w0 = w0.cos();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let alpha = w0.sin() / (2.0 * q);
        let b0 = (1.0 - cos_w0) / 2.0;
        let b1 = 1.0 - cos_w0;
        let b2 = (1.0 - cos_w0) / 2.0;
        let a0 = 1.0 + alpha;
        let a1 = -2.0 * cos_w0;
        let a2 = 1.0 - alpha;
        Biquad {
            b0: (b0 / a0) as f32,
            b1: (b1 / a0) as f32,
            b2: (b2 / a0) as f32,
            a1: (a1 / a0) as f32,
            a2: (a2 / a0) as f32,
        }
    }

    /// Single forward pass (causal, introduces phase lag).
    pub fn filter(&self, xs: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.filter_into(xs, &mut out);
        out
    }

    /// [`filter`](Self::filter) into a caller-provided buffer (cleared
    /// first).
    pub fn filter_into(&self, xs: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(xs.len());
        let (mut x1, mut x2, mut y1, mut y2) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        // Initialise state to the first sample to avoid a start-up
        // transient from an implicit zero history.
        if let Some(&x0) = xs.first() {
            x1 = x0;
            x2 = x0;
            y1 = x0;
            y2 = x0;
        }
        for &x in xs {
            let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            out.push(y);
        }
    }

    /// Forward-backward pass: zero phase, squared magnitude response.
    pub fn filtfilt(&self, xs: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.filtfilt_into(xs, &mut out, &mut scratch);
        out
    }

    /// [`filtfilt`](Self::filtfilt) into a caller-provided buffer, using
    /// `scratch` for the intermediate forward pass; allocates nothing once
    /// both buffers have grown to the window length.
    pub fn filtfilt_into(&self, xs: &[f32], out: &mut Vec<f32>, scratch: &mut Vec<f32>) {
        self.filter_into(xs, scratch);
        scratch.reverse();
        self.filter_into(scratch, out);
        out.reverse();
    }

    /// Zero-phase forward-backward filtering of a time-major strip of
    /// `lanes` interleaved channels, in place: row `t` is
    /// `data[t*lanes..(t+1)*lanes]` and every lane is filtered exactly as
    /// [`filtfilt`](Self::filtfilt) would filter it alone — the lanes only
    /// share loop iterations, which lets the recurrence vectorise across
    /// channels. `state` is a reusable scratch buffer.
    pub fn filtfilt_strip(&self, data: &mut [f32], state: &mut Vec<f32>, lanes: usize) {
        if lanes == 0 || data.len() < lanes {
            return;
        }
        let n = data.len() / lanes;
        state.clear();
        state.resize(4 * lanes, 0.0);
        let (x1, rest) = state.split_at_mut(lanes);
        let (x2, rest) = rest.split_at_mut(lanes);
        let (y1, y2) = rest.split_at_mut(lanes);
        for pass in 0..2 {
            // Pass 0 runs forward in time, pass 1 backward (identical to
            // reversing, filtering and reversing again). Each pass seeds
            // its state from its own first row, like `filter`.
            let first = if pass == 0 { 0 } else { n - 1 };
            for c in 0..lanes {
                let x0 = data[first * lanes + c];
                x1[c] = x0;
                x2[c] = x0;
                y1[c] = x0;
                y2[c] = x0;
            }
            let mut step = |t: usize, x1: &mut [f32], x2: &mut [f32], y1: &mut [f32], y2: &mut [f32]| {
                let row = &mut data[t * lanes..(t + 1) * lanes];
                for c in 0..lanes {
                    let x = row[c];
                    let y = self.b0 * x + self.b1 * x1[c] + self.b2 * x2[c]
                        - self.a1 * y1[c]
                        - self.a2 * y2[c];
                    x2[c] = x1[c];
                    x1[c] = x;
                    y2[c] = y1[c];
                    y1[c] = y;
                    row[c] = y;
                }
            };
            if pass == 0 {
                for t in 0..n {
                    step(t, x1, x2, y1, y2);
                }
            } else {
                for t in (0..n).rev() {
                    step(t, x1, x2, y1, y2);
                }
            }
        }
    }
}

/// Serialisable denoising configuration applied per channel by the
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenoiseConfig {
    /// Median filter window (odd; `1` disables).
    pub median_window: usize,
    /// Low-pass cutoff in Hz (`None` disables).
    pub lowpass_cutoff_hz: Option<f64>,
    /// Sample rate the cutoff refers to.
    pub sample_rate_hz: f64,
}

impl Default for DenoiseConfig {
    fn default() -> Self {
        DenoiseConfig {
            median_window: 3,
            // Human motion + vehicle vibration live below ~45 Hz at a
            // 120 Hz rate; clip broadband sensor noise above that.
            lowpass_cutoff_hz: Some(45.0),
            sample_rate_hz: 120.0,
        }
    }
}

impl DenoiseConfig {
    /// Pass-through configuration (ablations).
    pub fn disabled() -> Self {
        DenoiseConfig {
            median_window: 1,
            lowpass_cutoff_hz: None,
            sample_rate_hz: 120.0,
        }
    }

    /// Apply the configured denoising chain to one channel.
    pub fn apply(&self, xs: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.kernel().apply_into(xs, &mut out, &mut DenoiseScratch::default());
        out
    }

    /// Compile the configuration into a reusable kernel — the Biquad
    /// design (a handful of `f64` trig evaluations) runs once instead of
    /// once per channel per window.
    pub fn kernel(&self) -> DenoiseKernel {
        DenoiseKernel {
            median_window: self.median_window,
            lowpass: self
                .lowpass_cutoff_hz
                .map(|fc| Biquad::lowpass(fc, self.sample_rate_hz)),
        }
    }
}

/// Reusable intermediate buffers for [`DenoiseKernel::apply_into`].
#[derive(Debug, Default)]
pub struct DenoiseScratch {
    median: Vec<f32>,
    filt: Vec<f32>,
}

/// A [`DenoiseConfig`] with its filter designs precomputed; apply it to
/// many channels/windows without re-deriving coefficients or allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenoiseKernel {
    median_window: usize,
    lowpass: Option<Biquad>,
}

impl DenoiseKernel {
    /// Run median + low-pass denoising of one channel into `out`
    /// (cleared first), reusing `scratch` across calls.
    pub fn apply_into(&self, xs: &[f32], out: &mut Vec<f32>, scratch: &mut DenoiseScratch) {
        match self.lowpass {
            Some(bq) if self.median_window > 1 => {
                median_filter_into(xs, self.median_window, &mut scratch.median);
                bq.filtfilt_into(&scratch.median, out, &mut scratch.filt);
            }
            Some(bq) => bq.filtfilt_into(xs, out, &mut scratch.filt),
            None => median_filter_into(xs, self.median_window, out),
        }
    }

    /// Denoise a whole channel-major window at once.
    ///
    /// Channels are mutually independent, so for the common case (all
    /// channels equal length, default median window 3) the work runs over
    /// a time-major interleave where every time step updates all channels
    /// as one lane-parallel strip — the median network and the biquad
    /// recurrences vectorise across channels instead of crawling one
    /// serial dependency chain per channel. Falls back to the per-channel
    /// kernel for ragged windows or non-default median widths.
    ///
    /// `out` is resized to match `channels`; `scratch` is reused across
    /// calls.
    pub fn apply_window_into(
        &self,
        channels: &[Vec<f32>],
        out: &mut Vec<Vec<f32>>,
        scratch: &mut WindowDenoiseScratch,
    ) {
        out.resize(channels.len(), Vec::new());
        let n = channels.first().map(Vec::len).unwrap_or(0);
        let uniform = channels.iter().all(|c| c.len() == n);
        if !uniform || (self.median_window > 1 && self.median_window != 3) || n < 2 {
            for (c, d) in channels.iter().zip(out.iter_mut()) {
                self.apply_into(c, d, &mut scratch.channel);
            }
            return;
        }
        let lanes = channels.len();
        // Interleave: row t of `cur` holds sample t of every channel.
        let cur = &mut scratch.a;
        cur.clear();
        cur.reserve(n * lanes);
        for t in 0..n {
            for ch in channels {
                cur.push(ch[t]);
            }
        }
        if self.median_window == 3 {
            let med = &mut scratch.b;
            med.clear();
            med.reserve(n * lanes);
            // Clamped edges: the sorted middle of a two-sample window is
            // its larger element; interior rows take a median-of-three.
            for c in 0..lanes {
                med.push(cur[c].max(cur[lanes + c]));
            }
            for t in 1..n - 1 {
                let (p, x, q) = (t - 1, t, t + 1);
                for c in 0..lanes {
                    let (a, b, d) = (cur[p * lanes + c], cur[x * lanes + c], cur[q * lanes + c]);
                    med.push(a.max(b).min(a.min(b).max(d)));
                }
            }
            for c in 0..lanes {
                med.push(cur[(n - 2) * lanes + c].max(cur[(n - 1) * lanes + c]));
            }
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        if let Some(bq) = self.lowpass {
            bq.filtfilt_strip(&mut scratch.a, &mut scratch.state, lanes);
        }
        for (c, d) in out.iter_mut().enumerate() {
            d.clear();
            d.reserve(n);
            for t in 0..n {
                d.push(scratch.a[t * lanes + c]);
            }
        }
    }
}

/// Reusable buffers for [`DenoiseKernel::apply_window_into`].
#[derive(Debug, Default)]
pub struct WindowDenoiseScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    state: Vec<f32>,
    channel: DenoiseScratch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::TAU;

    fn sine(freq: f32, rate: f32, n: usize) -> Vec<f32> {
        (0..n).map(|i| (TAU * freq * i as f32 / rate).sin()).collect()
    }

    fn rms(xs: &[f32]) -> f32 {
        (xs.iter().map(|x| x * x).sum::<f32>() / xs.len() as f32).sqrt()
    }

    #[test]
    fn moving_average_constant_is_identity() {
        let xs = vec![2.0; 16];
        assert_eq!(moving_average(&xs, 5), xs);
        assert_eq!(moving_average(&xs, 1), xs);
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let out = moving_average(&xs, 3);
        // Interior points become local means.
        assert!((out[2] - 20.0 / 3.0).abs() < 1e-5);
        // Variance is reduced.
        assert!(magneto_tensor::stats::variance(&out) < magneto_tensor::stats::variance(&xs));
    }

    #[test]
    fn median_filter_removes_spikes() {
        let mut xs = sine(2.0, 120.0, 120);
        xs[40] = 50.0;
        xs[80] = -50.0;
        let out = median_filter(&xs, 3);
        assert!(out[40].abs() < 2.0, "spike survived: {}", out[40]);
        assert!(out[80].abs() < 2.0);
        // Non-spike samples barely change.
        assert!((out[20] - xs[20]).abs() < 0.2);
    }

    #[test]
    fn median_filter_identity_cases() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(median_filter(&xs, 1), xs.to_vec());
        assert!(median_filter(&[], 3).is_empty());
    }

    #[test]
    fn exponential_smoothing_tracks_and_lags() {
        let xs = [0.0, 0.0, 10.0, 10.0, 10.0];
        let out = exponential_smoothing(&xs, 0.5);
        assert_eq!(out.len(), 5);
        assert!(out[2] > 0.0 && out[2] < 10.0);
        assert!(out[4] > out[2]);
        // alpha = 1 is identity.
        assert_eq!(exponential_smoothing(&xs, 1.0), xs.to_vec());
        assert!(exponential_smoothing(&[], 0.3).is_empty());
    }

    #[test]
    fn lowpass_passes_low_attenuates_high() {
        let rate = 120.0;
        let low = sine(2.0, rate, 480);
        let high = sine(50.0, rate, 480);
        let bq = Biquad::lowpass(10.0, f64::from(rate));
        let low_out = bq.filtfilt(&low);
        let high_out = bq.filtfilt(&high);
        assert!(
            rms(&low_out) > 0.9 * rms(&low),
            "passband attenuation {} -> {}",
            rms(&low),
            rms(&low_out)
        );
        assert!(
            rms(&high_out) < 0.1 * rms(&high),
            "stopband leak: {}",
            rms(&high_out)
        );
    }

    #[test]
    fn filtfilt_preserves_dc() {
        let xs = vec![5.0; 240];
        let bq = Biquad::lowpass(10.0, 120.0);
        let out = bq.filtfilt(&xs);
        for &v in &out[10..230] {
            assert!((v - 5.0).abs() < 0.05, "DC shifted: {v}");
        }
    }

    #[test]
    fn lowpass_cutoff_clamped_below_nyquist() {
        // A cutoff above Nyquist must not produce NaNs.
        let bq = Biquad::lowpass(500.0, 120.0);
        let out = bq.filter(&sine(5.0, 120.0, 120));
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn denoise_config_kills_spike_and_hf() {
        let rate = 120.0;
        let mut xs = sine(2.0, rate, 120);
        for (i, v) in sine(55.0, rate, 120).iter().enumerate() {
            xs[i] += 0.5 * v;
        }
        xs[60] = 30.0;
        let cfg = DenoiseConfig::default();
        let out = cfg.apply(&xs);
        assert!(out[60].abs() < 2.0, "spike survived denoise: {}", out[60]);
        // The clean 2 Hz carrier survives.
        let clean = sine(2.0, rate, 120);
        let err: f32 = out
            .iter()
            .zip(clean.iter())
            .skip(10)
            .take(100)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / 100.0;
        assert!(err < 0.25, "mean abs err {err}");
    }

    #[test]
    fn denoise_disabled_is_identity() {
        let xs = sine(7.0, 120.0, 60);
        assert_eq!(DenoiseConfig::disabled().apply(&xs), xs);
    }

    #[test]
    fn window_denoise_matches_per_channel_kernel() {
        let mut rng = magneto_tensor::SeededRng::new(7);
        let channels: Vec<Vec<f32>> = (0..22)
            .map(|c| {
                (0..120)
                    .map(|i| (TAU * (c + 1) as f32 * i as f32 / 120.0).sin() + rng.normal())
                    .collect()
            })
            .collect();
        for cfg in [
            DenoiseConfig::default(),
            DenoiseConfig::disabled(),
            DenoiseConfig {
                median_window: 5,
                ..DenoiseConfig::default()
            },
            DenoiseConfig {
                lowpass_cutoff_hz: None,
                ..DenoiseConfig::default()
            },
            DenoiseConfig {
                median_window: 1,
                ..DenoiseConfig::default()
            },
        ] {
            let kernel = cfg.kernel();
            let mut out = Vec::new();
            kernel.apply_window_into(
                &channels,
                &mut out,
                &mut WindowDenoiseScratch::default(),
            );
            assert_eq!(out.len(), channels.len());
            for (c, (got, raw)) in out.iter().zip(channels.iter()).enumerate() {
                let want = cfg.apply(raw);
                assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                    assert!(
                        (g - w).abs() <= 1e-5 * w.abs().max(1.0),
                        "cfg {cfg:?} channel {c} sample {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_denoise_handles_ragged_and_empty_windows() {
        let kernel = DenoiseConfig::default().kernel();
        let mut scratch = WindowDenoiseScratch::default();
        let mut out = Vec::new();
        // Ragged channel lengths fall back to the per-channel path.
        let ragged = vec![vec![1.0; 50], vec![2.0; 120]];
        kernel.apply_window_into(&ragged, &mut out, &mut scratch);
        assert_eq!(out[0], DenoiseConfig::default().apply(&ragged[0]));
        assert_eq!(out[1], DenoiseConfig::default().apply(&ragged[1]));
        // Empty input.
        kernel.apply_window_into(&[], &mut out, &mut scratch);
        assert!(out.is_empty());
        // Output shrinks when reused on a smaller window.
        kernel.apply_window_into(&ragged[..1], &mut out, &mut scratch);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = DenoiseConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DenoiseConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
