//! # magneto-dsp
//!
//! The pre-processing function of the MAGNETO platform.
//!
//! §3.2 item 1 of the paper: "We do popular pre-processing operations on
//! raw sensor data, including denoising, segmentation, normalization …
//! we adopt a primary feature extractor that relies on handcrafted
//! statistic features, requiring linear processing time." §4.1.2: "We
//! extract 80 statistical features."
//!
//! This crate implements that function as a serialisable object that the
//! Cloud fits (normaliser statistics) and ships to the Edge inside the
//! bundle:
//!
//! * [`filter`] — denoising: moving average, median filter (spike
//!   removal), exponential smoothing, and a 2nd-order Butterworth low-pass
//!   biquad;
//! * [`segment`] — segmentation of sample streams into fixed one-second
//!   windows (with optional overlap);
//! * [`spectral`] — a small real DFT with dominant-frequency, band-energy
//!   and spectral-entropy summaries (cadence and vibration bands are what
//!   separate Walk/Run and Drive/E-scooter);
//! * [`features`] — the exact **80-feature** statistical extractor,
//!   spec-table driven so the count and order are stable and testable;
//! * [`normalize`] — per-dimension z-score / min-max / robust
//!   normalisation with serialisable fitted state;
//! * [`pipeline`] — the composed, versioned `PreprocessingPipeline`.
//!
//! Everything is `O(n)` per window except the DFT features, which are
//! `O(n·k)` for `k` probed frequency bins — still microseconds for
//! 120-sample windows.

pub mod error;
pub mod features;
pub mod filter;
pub mod guard;
pub mod normalize;
pub mod pipeline;
pub mod segment;
pub mod spectral;

pub use error::DspError;
pub use features::{FeatureExtractor, NUM_FEATURES};
pub use guard::{FrameGuard, GuardConfig, SignalQuality};
pub use normalize::{Normalizer, NormalizerKind};
pub use pipeline::{PipelineConfig, PreprocessingPipeline};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DspError>;
