//! Fleet serving throughput (ISSUE 2 acceptance): windows/sec of the
//! micro-batching fleet runtime versus driving the same N devices
//! sequentially on one thread through the per-window API. The fleet's
//! edge is cross-session batch coalescing — every drain feeds one
//! `(batch, 80)` matmul chain instead of N per-sample forwards — so the
//! paper-scale backbone is used to reflect the deployed model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magneto_core::{CloudConfig, CloudInitializer, EdgeBundle, EdgeConfig, EdgeDevice};
use magneto_fleet::{Fleet, FleetConfig, ModelKey, SessionId};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use std::sync::mpsc::Receiver;
use std::time::Duration;

const USERS: usize = 16;
const ROUNDS: usize = 4;

fn pretrained_bundle() -> EdgeBundle {
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
    let mut cfg = CloudConfig::fast_demo();
    // Deployed-scale backbone; convergence is irrelevant to throughput,
    // so a single cheap epoch keeps bench start-up fast.
    cfg.backbone_dims = magneto_nn::PAPER_BACKBONE.to_vec();
    cfg.trainer.epochs = 1;
    cfg.trainer.pairs_per_epoch = 64;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    bundle
}

/// `ROUNDS` windows per user, user-major: `windows[u][r]`.
fn streamed_windows() -> Vec<Vec<Vec<Vec<f32>>>> {
    let mut pool = StreamPool::new(USERS, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), 3);
    let mut per_user: Vec<Vec<Vec<Vec<f32>>>> = (0..USERS).map(|_| Vec::new()).collect();
    for _ in 0..ROUNDS {
        for (u, w) in pool.next_round().into_iter().enumerate() {
            per_user[u].push(w);
        }
    }
    per_user
}

fn register_fleet(
    fleet: &Fleet,
    bundle: &EdgeBundle,
) -> Vec<(SessionId, Receiver<magneto_fleet::FleetReply>)> {
    let key = ModelKey::of_bundle(bundle);
    (0..USERS)
        .map(|_| {
            let dev = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).unwrap();
            fleet.register(dev, key)
        })
        .collect()
}

fn drive_fleet(
    fleet: &Fleet,
    sessions: &[(SessionId, Receiver<magneto_fleet::FleetReply>)],
    windows: &[Vec<Vec<Vec<f32>>>],
) -> usize {
    for r in 0..ROUNDS {
        for (u, (id, _)) in sessions.iter().enumerate() {
            fleet.submit(*id, windows[u][r].clone()).unwrap();
        }
    }
    let mut served = 0;
    assert!(fleet.wait_idle(Duration::from_secs(30)), "fleet stalled");
    for (_, rx) in sessions {
        served += rx.try_iter().filter(|r| r.outcome.is_ok()).count();
    }
    served
}

fn bench_fleet_vs_sequential(c: &mut Criterion) {
    let bundle = pretrained_bundle();
    let windows = streamed_windows();
    let mut group = c.benchmark_group("fleet_throughput_64_windows");

    // Baseline: one thread drives each device through the per-window API.
    let mut devices: Vec<EdgeDevice> = (0..USERS)
        .map(|_| EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).unwrap())
        .collect();
    group.bench_function("sequential_16_devices", |b| {
        b.iter(|| {
            let mut served = 0;
            for r in 0..ROUNDS {
                for (u, dev) in devices.iter_mut().enumerate() {
                    black_box(dev.infer_window(&windows[u][r]).unwrap());
                    served += 1;
                }
            }
            served
        })
    });

    // Deterministic caller-driven fleet: one shard, drained inline, so
    // every pump coalesces all 64 pending windows into one batch.
    let mut pump_fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let pump_sessions = register_fleet(&pump_fleet, &bundle);
    group.bench_function("fleet_pump_1_shard", |b| {
        b.iter(|| {
            for r in 0..ROUNDS {
                for (u, (id, _)) in pump_sessions.iter().enumerate() {
                    pump_fleet.submit(*id, windows[u][r].clone()).unwrap();
                }
            }
            black_box(pump_fleet.pump());
            let mut served = 0;
            for (_, rx) in &pump_sessions {
                served += rx.try_iter().filter(|r| r.outcome.is_ok()).count();
            }
            assert_eq!(served, USERS * ROUNDS);
            served
        })
    });

    // Threaded fleet: 4 worker threads over 4 shards (16 windows per
    // shard per burst), replies collected after the queues drain.
    let threaded_fleet = Fleet::new(FleetConfig {
        shards: 4,
        workers: 4,
        ..FleetConfig::default()
    })
    .unwrap();
    let threaded_sessions = register_fleet(&threaded_fleet, &bundle);
    group.bench_function("fleet_4_workers_4_shards", |b| {
        b.iter(|| {
            let served = drive_fleet(&threaded_fleet, &threaded_sessions, &windows);
            assert_eq!(served, USERS * ROUNDS);
            black_box(served)
        })
    });

    group.finish();
    threaded_fleet.shutdown();
}

criterion_group!(benches, bench_fleet_vs_sequential);
criterion_main!(benches);
