//! Serialisation benchmarks (B*): bundle encode/decode at both
//! precisions, and the raw model codec. Deployment cost is a one-time
//! Cloud → Edge transfer, but decode also runs at every app start.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magneto_core::cloud::{CloudConfig, CloudInitializer};
use magneto_core::EdgeBundle;
use magneto_nn::quantize::QuantizedMlp;
use magneto_nn::serialize::{decode_mlp, encode_mlp};
use magneto_nn::Mlp;
use magneto_sensors::{GeneratorConfig, SensorDataset};
use magneto_tensor::SeededRng;

fn bundle_fixture() -> EdgeBundle {
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 2;
    CloudInitializer::new(cfg).pretrain(&corpus).unwrap().0
}

fn bench_bundle_roundtrip(c: &mut Criterion) {
    let bundle = bundle_fixture();
    let bytes_f32 = bundle.to_bytes(false);
    let bytes_i8 = bundle.to_bytes(true);

    c.bench_function("bundle_encode_f32", |b| {
        b.iter(|| black_box(&bundle).to_bytes(false))
    });
    c.bench_function("bundle_encode_quantized", |b| {
        b.iter(|| black_box(&bundle).to_bytes(true))
    });
    c.bench_function("bundle_decode_f32", |b| {
        b.iter(|| EdgeBundle::from_bytes(black_box(&bytes_f32)).unwrap())
    });
    c.bench_function("bundle_decode_quantized", |b| {
        b.iter(|| EdgeBundle::from_bytes(black_box(&bytes_i8)).unwrap())
    });
}

fn bench_model_codec(c: &mut Criterion) {
    let net = Mlp::new(&magneto_nn::PAPER_BACKBONE, &mut SeededRng::new(2)).unwrap();
    let encoded = encode_mlp(&net);
    c.bench_function("model_encode_paper_backbone", |b| {
        b.iter(|| encode_mlp(black_box(&net)))
    });
    c.bench_function("model_decode_paper_backbone", |b| {
        b.iter(|| decode_mlp(black_box(&encoded)).unwrap())
    });
    c.bench_function("model_quantize_paper_backbone", |b| {
        b.iter(|| QuantizedMlp::quantize(black_box(&net)))
    });
}

criterion_group!(benches, bench_bundle_roundtrip, bench_model_codec);
criterion_main!(benches);
