//! Benchmarks for the data substrate and the Figure-1 protocols (B*):
//! per-frame synthesis cost, corpus generation throughput, and the
//! compute-side cost of one protocol inference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magneto_core::cloud::{CloudConfig, CloudInitializer};
use magneto_core::incremental::ModelState;
use magneto_platform::{DeviceModel, EdgeProtocol, EnergyModel, HarProtocol};
use magneto_sensors::imu::SignalSynthesizer;
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::SeededRng;

fn bench_frame_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize_frame");
    for kind in [ActivityKind::Still, ActivityKind::Run, ActivityKind::Drive] {
        let mut synth = SignalSynthesizer::new(
            kind.profile(),
            PersonProfile::nominal(),
            SeededRng::new(1),
        );
        let mut t = 0.0f64;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                t += 1.0 / 120.0;
                black_box(synth.frame(t))
            })
        });
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_corpus");
    group.sample_size(10);
    for windows in [10usize, 40] {
        group.bench_function(BenchmarkId::from_parameter(windows), |b| {
            let cfg = GeneratorConfig::base_five(windows);
            b.iter(|| SensorDataset::generate(black_box(&cfg), 7))
        });
    }
    group.finish();
}

fn bench_edge_protocol_inference(c: &mut Criterion) {
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
    let mut cfg = CloudConfig::fast_demo();
    cfg.trainer.epochs = 2;
    let (bundle, _) = CloudInitializer::new(cfg).pretrain(&corpus).unwrap();
    let state = ModelState::assemble(
        bundle.model.clone(),
        bundle.support_set.clone(),
        bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .unwrap();
    let mut edge = EdgeProtocol::new(
        bundle.pipeline.clone(),
        state.model,
        state.ncm,
        DeviceModel::budget_phone(),
        EnergyModel::lte_phone(),
        bundle.total_bytes(),
    );
    let window = corpus.windows[0].channels.clone();
    c.bench_function("edge_protocol_infer_window", |b| {
        b.iter(|| edge.infer_window(black_box(&window)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_frame_synthesis,
    bench_corpus_generation,
    bench_edge_protocol_inference
);
criterion_main!(benches);
