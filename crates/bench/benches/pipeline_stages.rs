//! Micro-benchmarks for every stage of the inference pipeline (B*):
//! denoise, 80-feature extraction, embedding forward, NCM classify, and
//! the composed end-to-end window path whose "few milliseconds" claim is
//! experiment C1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magneto_core::incremental::ModelState;
use magneto_core::ncm::NcmClassifier;
use magneto_dsp::filter::DenoiseConfig;
use magneto_dsp::{FeatureExtractor, PipelineConfig, PreprocessingPipeline};
use magneto_nn::{Mlp, SiameseNetwork};
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::SeededRng;

fn test_window() -> Vec<Vec<f32>> {
    let ds = SensorDataset::generate(
        &GeneratorConfig {
            activities: vec![ActivityKind::Run],
            windows_per_class: 1,
            ..GeneratorConfig::tiny()
        },
        42,
    );
    ds.windows[0].channels.clone()
}

fn fitted_pipeline() -> PreprocessingPipeline {
    let ds = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
    let mut p = PreprocessingPipeline::new(PipelineConfig::default());
    let refs: Vec<&[Vec<f32>]> = ds.windows.iter().map(|w| w.channels.as_slice()).collect();
    p.fit_normalizer(&refs).unwrap();
    p
}

fn bench_denoise(c: &mut Criterion) {
    let window = test_window();
    let cfg = DenoiseConfig::default();
    c.bench_function("denoise_22ch_window", |b| {
        b.iter(|| {
            for ch in &window {
                black_box(cfg.apply(black_box(ch)));
            }
        })
    });
}

fn bench_features(c: &mut Criterion) {
    let window = test_window();
    let fx = FeatureExtractor::default();
    c.bench_function("extract_80_features", |b| {
        b.iter(|| fx.extract(black_box(&window)).unwrap())
    });
}

fn bench_embedding_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedding_forward");
    let features = vec![0.1f32; 80];
    for (name, dims) in [
        ("paper_backbone", magneto_nn::PAPER_BACKBONE.to_vec()),
        ("fast_backbone", vec![80, 64, 32]),
    ] {
        let net = Mlp::new(&dims, &mut SeededRng::new(1)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| net.embed_one(black_box(&features)).unwrap())
        });
    }
    group.finish();
}

fn bench_ncm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ncm_classify");
    let embedding = vec![0.2f32; 128];
    for classes in [5usize, 10, 50] {
        let protos: Vec<(String, Vec<f32>)> = (0..classes)
            .map(|k| (format!("class_{k}"), vec![k as f32; 128]))
            .collect();
        let ncm = NcmClassifier::new(DistanceMetric::Euclidean, protos).unwrap();
        group.bench_function(BenchmarkId::from_parameter(classes), |b| {
            b.iter(|| ncm.classify(black_box(&embedding)).unwrap())
        });
    }
    group.finish();
}

fn bench_batched_vs_per_sample(c: &mut Criterion) {
    // The tentpole claim: embedding a backlog of 64 windows as one
    // (64, 80) batch through the paper backbone vs looping embed_one.
    let mut group = c.benchmark_group("batched_vs_per_sample");
    let model = magneto_core::ResidentModel::from(SiameseNetwork::new(
        Mlp::new(&magneto_nn::PAPER_BACKBONE, &mut SeededRng::new(7)).unwrap(),
        1.0,
    ));
    let mut rng = SeededRng::new(8);
    let rows: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..80).map(|_| rng.normal()).collect())
        .collect();
    group.bench_function("per_sample_embed_64", |b| {
        b.iter(|| {
            for r in &rows {
                black_box(model.embed_one(black_box(r)).unwrap());
            }
        })
    });
    let mut embedder = magneto_core::BatchEmbedder::new();
    let mut out = magneto_tensor::Matrix::default();
    group.bench_function("batched_embed_64", |b| {
        b.iter(|| {
            embedder
                .embed_rows(&model, black_box(&rows), &mut out)
                .unwrap();
            black_box(out.rows());
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Full inference path with the paper backbone — the C1 latency claim.
    let pipeline = fitted_pipeline();
    let model = SiameseNetwork::new(
        Mlp::new(&magneto_nn::PAPER_BACKBONE, &mut SeededRng::new(2)).unwrap(),
        1.0,
    );
    let protos: Vec<(String, Vec<f32>)> = (0..5)
        .map(|k| (format!("c{k}"), vec![k as f32; 128]))
        .collect();
    let ncm = NcmClassifier::new(DistanceMetric::Euclidean, protos).unwrap();
    let state = ModelState::assemble(
        model,
        {
            // Minimal support set so assemble() is happy.
            let mut ss = magneto_core::SupportSet::new(2, magneto_core::SelectionStrategy::Random);
            let mut rng = SeededRng::new(3);
            for k in 0..5 {
                ss.set_class(&format!("c{k}"), &[vec![k as f32; 80]], &mut rng)
                    .unwrap();
            }
            ss
        },
        magneto_core::LabelRegistry::from_labels(["c0", "c1", "c2", "c3", "c4"]),
        DistanceMetric::Euclidean,
    )
    .unwrap();
    drop(ncm);
    let window = test_window();
    c.bench_function("infer_window_end_to_end_paper_backbone", |b| {
        b.iter(|| {
            let feats = state
                .model
                .embed_one(&pipeline.process(black_box(&window)).unwrap())
                .unwrap();
            state.ncm.classify(&feats).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_denoise,
    bench_features,
    bench_embedding_forward,
    bench_ncm,
    bench_batched_vs_per_sample,
    bench_end_to_end
);
criterion_main!(benches);
