//! Training-cost benchmarks (B*): one contrastive step, one distilled
//! step (the edge-update path), and a full incremental update — the cost
//! the user waits for in Figure 3(d).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magneto_nn::optimizer::Adam;
use magneto_nn::pairs::sample_pairs;
use magneto_nn::{Mlp, SiameseNetwork};
use magneto_tensor::{Matrix, SeededRng};

fn feature_blob(n: usize, dim: usize, classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        rows.push(
            (0..dim)
                .map(|d| rng.normal_with(if d % classes == c { 2.0 } else { 0.0 }, 1.0))
                .collect(),
        );
        labels.push(c);
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("siamese_train_step_64pairs");
    group.sample_size(20);
    let (features, labels) = feature_blob(200, 80, 5, 1);
    for (name, dims) in [
        ("paper_backbone", magneto_nn::PAPER_BACKBONE.to_vec()),
        ("fast_backbone", vec![80, 64, 32]),
    ] {
        let base = SiameseNetwork::new(Mlp::new(&dims, &mut SeededRng::new(2)).unwrap(), 1.0);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut rng = SeededRng::new(3);
                    (
                        base.clone(),
                        Adam::new(1e-3),
                        sample_pairs(&labels, 64, &mut rng),
                    )
                },
                |(mut net, mut opt, pairs)| {
                    net.train_step(black_box(&features), &pairs, &mut opt, None, 5.0)
                        .unwrap()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_distilled_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("siamese_distilled_step_64pairs");
    group.sample_size(20);
    let (features, labels) = feature_blob(200, 80, 5, 4);
    let dims = magneto_nn::PAPER_BACKBONE.to_vec();
    let teacher = Mlp::new(&dims, &mut SeededRng::new(5)).unwrap();
    let base = SiameseNetwork::new(teacher.clone(), 1.0);
    group.bench_function("paper_backbone", |b| {
        b.iter_batched(
            || {
                let mut rng = SeededRng::new(6);
                (
                    base.clone(),
                    Adam::new(1e-3),
                    sample_pairs(&labels, 64, &mut rng),
                )
            },
            |(mut net, mut opt, pairs)| {
                net.train_step(
                    black_box(&features),
                    &pairs,
                    &mut opt,
                    Some((&teacher, 4.0)),
                    5.0,
                )
                .unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_distilled_step);
criterion_main!(benches);
