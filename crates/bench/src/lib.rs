//! # magneto-bench
//!
//! Experiment harness shared by the `eval_*` binaries (one per figure /
//! claim / ablation in DESIGN.md §5) and the Criterion micro-benchmarks.
//!
//! Every binary accepts:
//!
//! * `--windows-per-class N` — corpus size per activity (default 120);
//! * `--epochs N` — pre-training epochs (default 15);
//! * `--seed N` — master seed (default 0);
//! * `--fast` — narrow backbone + same pipeline, for smoke runs;
//! * `--seeds N` — repeat over N seeds where supported (mean ± std);
//! * `--json PATH` — also write machine-readable results.
//!
//! and prints its result rows plus a `paper-claim vs measured` footer that
//! EXPERIMENTS.md quotes verbatim.

use magneto_core::cloud::{CloudConfig, CloudInitializer};
use magneto_core::metrics::ConfusionMatrix;
use magneto_core::{EdgeBundle, EdgeConfig, EdgeDevice};
use magneto_sensors::{GeneratorConfig, SensorDataset};
use serde::Serialize;
use std::path::PathBuf;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Windows generated per class for the pre-training corpus.
    pub windows_per_class: usize,
    /// Pre-training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Use the narrow fast-demo backbone instead of the paper backbone.
    pub fast: bool,
    /// Number of seeds to repeat the experiment over (mean ± std
    /// reporting); seeds are `seed..seed+seeds`.
    pub seeds: u64,
    /// Optional JSON output path.
    pub json: Option<PathBuf>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            windows_per_class: 120,
            epochs: 15,
            seed: 0,
            fast: false,
            seeds: 1,
            json: None,
        }
    }
}

impl EvalOptions {
    /// Parse from `std::env::args()`. Unknown flags are ignored so
    /// binaries can add their own.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::parse_from(&args[1..])
    }

    /// Parse from an explicit argument list (testable).
    pub fn parse_from(args: &[String]) -> Self {
        let mut opts = EvalOptions::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--windows-per-class" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.windows_per_class = v;
                        i += 1;
                    }
                }
                "--epochs" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.epochs = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--json" => {
                    if let Some(v) = args.get(i + 1) {
                        opts.json = Some(PathBuf::from(v));
                        i += 1;
                    }
                }
                "--seeds" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seeds = v;
                        i += 1;
                    }
                }
                "--fast" => opts.fast = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Cloud configuration implied by these options.
    pub fn cloud_config(&self) -> CloudConfig {
        let mut cfg = if self.fast {
            CloudConfig::fast_demo()
        } else {
            CloudConfig::default()
        };
        cfg.trainer.epochs = self.epochs;
        cfg.seed = self.seed;
        cfg
    }

    /// Corpus configuration implied by these options.
    pub fn corpus_config(&self) -> GeneratorConfig {
        GeneratorConfig::base_five(self.windows_per_class)
    }
}

/// A trained-and-split experiment fixture.
pub struct Fixture {
    /// Deployable bundle (pipeline + model + support set).
    pub bundle: EdgeBundle,
    /// Held-out test windows (25% of the corpus, stratified).
    pub test: SensorDataset,
    /// Training windows (75%).
    pub train: SensorDataset,
}

/// Generate the corpus and run Cloud initialisation.
///
/// Evaluation is **cross-user**: the test corpus is generated with a
/// different seed, which draws a disjoint pool of simulated users (new
/// gait styles, carry orientations and noise levels). This is the
/// standard leave-users-out HAR protocol and leaves realistic headroom
/// for the ablations.
pub fn build_fixture(opts: &EvalOptions) -> Fixture {
    let train = SensorDataset::generate(&opts.corpus_config(), opts.seed);
    let test_cfg = GeneratorConfig {
        windows_per_class: (opts.windows_per_class / 3).clamp(10, 60),
        ..opts.corpus_config()
    };
    let test = SensorDataset::generate(&test_cfg, opts.seed ^ 0xDEAD_5117);
    let (bundle, _) = CloudInitializer::new(opts.cloud_config())
        .pretrain(&train)
        .expect("cloud initialisation");
    Fixture { bundle, test, train }
}

/// Run every window of `test` through the device, producing a confusion
/// matrix.
pub fn evaluate_device(device: &mut EdgeDevice, test: &SensorDataset) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new();
    for w in &test.windows {
        let pred = device.infer_window(&w.channels).expect("inference");
        cm.record(&w.label, &pred.label);
    }
    cm
}

/// Deploy a bundle with default edge settings.
pub fn deploy(bundle: EdgeBundle) -> EdgeDevice {
    EdgeDevice::deploy(bundle, EdgeConfig::default()).expect("deploy")
}

/// Print the standard experiment header.
pub fn header(id: &str, title: &str, opts: &EvalOptions) {
    println!("== {id}: {title} ==");
    println!(
        "   corpus {}x5 windows, {} epochs, seed {}, backbone {}\n",
        opts.windows_per_class,
        opts.epochs,
        opts.seed,
        if opts.fast {
            "fast-demo [80,64,32]"
        } else {
            "paper [80,1024,512,128,64,128]"
        }
    );
}

/// Mean and (population) standard deviation of a result series.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Write a JSON result document if `--json` was given.
pub fn write_json<T: Serialize>(opts: &EvalOptions, value: &T) {
    if let Some(path) = &opts.json {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if let Err(e) = std::fs::write(path, s) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("\n[json] wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: JSON serialisation failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_options() {
        let o = EvalOptions::default();
        assert_eq!(o.windows_per_class, 120);
        assert!(!o.fast);
        assert_eq!(o.cloud_config().trainer.epochs, 15);
        assert_eq!(o.corpus_config().activities.len(), 5);
    }

    #[test]
    fn mean_std_math() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn parse_seeds_flag() {
        let o = EvalOptions::parse_from(&strs(&["--seeds", "5"]));
        assert_eq!(o.seeds, 5);
        assert_eq!(EvalOptions::default().seeds, 1);
    }

    #[test]
    fn parse_flags() {
        let o = EvalOptions::parse_from(&strs(&[
            "--fast",
            "--windows-per-class",
            "40",
            "--epochs",
            "3",
            "--seed",
            "9",
            "--json",
            "/tmp/x.json",
        ]));
        assert!(o.fast);
        assert_eq!(o.windows_per_class, 40);
        assert_eq!(o.epochs, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
    }

    #[test]
    fn unknown_flags_ignored_and_missing_values_tolerated() {
        let o = EvalOptions::parse_from(&strs(&["--nonsense", "--epochs"]));
        assert_eq!(o.epochs, EvalOptions::default().epochs);
    }

    #[test]
    fn fast_config_is_narrow() {
        let o = EvalOptions {
            fast: true,
            ..EvalOptions::default()
        };
        assert_eq!(o.cloud_config().backbone_dims, vec![80, 64, 32]);
    }

    #[test]
    fn fixture_builds_at_tiny_scale() {
        let opts = EvalOptions {
            windows_per_class: 8,
            epochs: 2,
            fast: true,
            ..EvalOptions::default()
        };
        let fx = build_fixture(&opts);
        assert_eq!(fx.train.len(), 40);
        assert_eq!(fx.test.len(), 50);
        assert!(fx.bundle.validate().is_ok());
        let mut device = deploy(fx.bundle);
        let cm = evaluate_device(&mut device, &fx.test);
        assert_eq!(cm.total(), fx.test.len());
    }
}
