//! Run every experiment binary in sequence with shared options, writing
//! JSON results under `experiments/results/`.
//!
//! ```sh
//! cargo run --release -p magneto-bench --bin eval_all -- [--fast] [--windows-per-class N]
//! ```

use std::process::Command;

const EXPERIMENTS: [&str; 14] = [
    "eval_dataset_shape",
    "eval_pipeline",
    "eval_base_accuracy",
    "eval_latency",
    "eval_footprint",
    "eval_incremental",
    "eval_recording_sweep",
    "eval_support_sweep",
    "eval_calibration",
    "eval_classifier_ablation",
    "eval_open_set",
    "eval_objective_ablation",
    "eval_battery",
    "eval_feature_ablation",
];

// eval_forgetting and eval_cloud_vs_edge are heavier; they run last.
const HEAVY: [&str; 2] = ["eval_cloud_vs_edge", "eval_forgetting"];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS.iter().chain(HEAVY.iter()) {
        println!("\n################ {name} ################\n");
        let mut cmd = Command::new(exe_dir.join(name));
        cmd.args(&passthrough);
        cmd.arg("--json");
        cmd.arg(format!("experiments/results/{name}.json"));
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{name} exited with {status}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("could not launch {name}: {e} (build with `cargo build --release -p magneto-bench --bins` first)");
                failures.push(*name);
            }
        }
    }

    println!("\n================================================");
    if failures.is_empty() {
        println!("all {} experiments completed; JSON in experiments/results/", EXPERIMENTS.len() + HEAVY.len());
    } else {
        println!("experiments with failures: {failures:?}");
        std::process::exit(1);
    }
}
