//! Experiment F3ab — inference on the base activities (Figure 3a–b).
//!
//! The paper demonstrates the pre-trained model recognising the five base
//! activities in real time. This harness measures held-out accuracy and
//! prints the confusion matrix.

use magneto_bench::{
    build_fixture, deploy, evaluate_device, header, mean_std, write_json, EvalOptions,
};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    accuracy: f64,
    macro_f1: f64,
    per_class_recall: Vec<(String, f64)>,
    test_windows: usize,
    accuracy_mean: f64,
    accuracy_std: f64,
    seeds: u64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("F3ab", "inference on the five base activities", &opts);

    let fx = build_fixture(&opts);
    let mut device = deploy(fx.bundle);
    let cm = evaluate_device(&mut device, &fx.test);

    println!("{}", cm.to_table());
    let mut per_class = Vec::new();
    for label in ["drive", "e_scooter", "run", "still", "walk"] {
        let r = cm.recall(label).unwrap_or(0.0);
        println!("  recall({label:<10}) = {:>5.1}%", r * 100.0);
        per_class.push((label.to_string(), r));
    }
    println!(
        "\n  overall accuracy = {:.1}%   macro-F1 = {:.3}   ({} held-out windows)",
        cm.accuracy() * 100.0,
        cm.macro_f1(),
        cm.total()
    );

    // Multi-seed stability (--seeds N > 1 re-runs with fresh corpora and
    // weight init).
    let mut accs = vec![cm.accuracy()];
    if opts.seeds > 1 {
        for s in 1..opts.seeds {
            let mut o = opts.clone();
            o.seed = opts.seed + s;
            let fxs = build_fixture(&o);
            let mut d = deploy(fxs.bundle);
            accs.push(evaluate_device(&mut d, &fxs.test).accuracy());
        }
        let (m, sd) = mean_std(&accs);
        println!(
            "  across {} seeds: accuracy {:.1}% ± {:.1}% (per-seed: {:?})",
            opts.seeds,
            m * 100.0,
            sd * 100.0,
            accs.iter().map(|a| (a * 1000.0).round() / 10.0).collect::<Vec<_>>()
        );
    }
    let (accuracy_mean, accuracy_std) = mean_std(&accs);

    println!(
        "\npaper-claim: the initial model reliably recognises Drive, E-scooter, Run, Still, Walk"
    );
    println!(
        "measured:    {:.1}% held-out accuracy across the five classes",
        cm.accuracy() * 100.0
    );

    write_json(
        &opts,
        &Results {
            accuracy: cm.accuracy(),
            macro_f1: cm.macro_f1(),
            per_class_recall: per_class,
            test_windows: cm.total(),
            accuracy_mean,
            accuracy_std,
            seeds: opts.seeds,
        },
    );
}
