//! NCM index scaling smoke test (wired into `make check`): sweeps the
//! classifier over classes × exemplars-per-class, measuring the dense
//! exact scan against the two-stage quantized index at the default
//! search knobs, and emits machine-readable `BENCH_ncm_scale.json`.
//! Gates on three properties:
//!
//! 1. **Agreement** — at every sweep point the indexed search must
//!    predict the same label as the dense scan on ≥ 99% of probes.
//! 2. **Speedup** — at the largest point (64 classes × 256 exemplars)
//!    the indexed search must be ≥ 3× faster than the dense scan
//!    (≥ 2× on a scalar-only host — the coarse stage's int8 kernels are
//!    where SIMD pays).
//! 3. **Backend bit-identity** — decisions under every available coarse
//!    backend must be bit-identical to the scalar coarse path: the
//!    i8×i8→i32 kernels accumulate exactly, so dispatch is purely a
//!    speed choice.

use magneto_core::{NcmClassifier, NcmDecision, NcmScratch};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::{Backend, KernelPlan, Matrix, SeededRng};
use serde::Serialize;
use std::time::Instant;

const CLASSES: &[usize] = &[8, 32, 64];
const EXEMPLARS: &[usize] = &[16, 64, 256];
const DIM: usize = 64;
const PROBES: usize = 256;
/// Timing repetitions per path; the minimum over reps is the robust
/// statistic (immune to scheduler noise where a mean is not).
const REPS: usize = 3;

#[derive(Serialize)]
struct SweepPoint {
    classes: usize,
    exemplars_per_class: usize,
    total_rows: usize,
    dense_us_per_query: f64,
    indexed_us_per_query: f64,
    speedup: f64,
    agreement: f64,
    index_bytes: usize,
}

#[derive(Serialize)]
struct NcmScaleReport {
    bench: String,
    plan: String,
    coarse_backend: String,
    dim: usize,
    probes: usize,
    top_k: usize,
    coarse_min_rows: usize,
    points: Vec<SweepPoint>,
    gate_speedup_at_max: f64,
    gate_threshold: f64,
    backend_sweep: Vec<String>,
    backend_bit_identical: bool,
}

fn random_vec(rng: &mut SeededRng, dim: usize, span: f32) -> Vec<f32> {
    (0..dim).map(|_| rng.uniform(-span, span)).collect()
}

/// Clustered classifier: `classes` prototypes spread over ±4, each with
/// `exemplars` support rows within ±0.5 of its prototype.
fn build(classes: usize, exemplars: usize, seed: u64) -> NcmClassifier {
    let mut rng = SeededRng::new(seed);
    let protos: Vec<(String, Vec<f32>)> = (0..classes)
        .map(|c| (format!("class_{c}"), random_vec(&mut rng, DIM, 4.0)))
        .collect();
    let mut ncm = NcmClassifier::new(DistanceMetric::Euclidean, protos.clone()).expect("build ncm");
    for (label, proto) in &protos {
        let mut rows = Matrix::zeros(exemplars, DIM);
        for r in 0..exemplars {
            for (d, out) in rows.row_mut(r).iter_mut().enumerate() {
                *out = proto[d] + rng.uniform(-0.5, 0.5);
            }
        }
        ncm.set_class_exemplars(label, &rows).expect("exemplars");
    }
    ncm
}

/// Probes drawn near random class clusters — the serving distribution,
/// where the two-stage search has to be right, not just fast.
fn probes(ncm: &NcmClassifier, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    let labels = ncm.labels().to_vec();
    (0..PROBES)
        .map(|_| {
            let c = (rng.next_u32() as usize) % labels.len();
            let mut p = ncm.prototype(&labels[c]).expect("prototype").to_vec();
            for v in &mut p {
                *v += rng.uniform(-1.0, 1.0);
            }
            p
        })
        .collect()
}

/// Classify every probe through `f`, `REPS` times; returns best-of-reps
/// µs/query and the winning labels from the last rep.
fn run_path(
    probes: &[Vec<f32>],
    scratch: &mut NcmScratch,
    mut f: impl FnMut(&[f32], &mut NcmScratch, &mut NcmDecision),
) -> (f64, Vec<String>) {
    let mut out = NcmDecision::default();
    let mut best = f64::INFINITY;
    let mut labels = Vec::new();
    for _ in 0..REPS {
        labels.clear();
        let t0 = Instant::now();
        for p in probes {
            f(p, scratch, &mut out);
            labels.push(out.label.clone());
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / probes.len() as f64);
    }
    (best, labels)
}

fn main() {
    let plan = KernelPlan::host_default();
    let mut scratch = NcmScratch::new();
    println!("ncm_scale_smoke: host isa {}", Backend::isa_summary());
    println!(
        "ncm_scale_smoke: coarse backend {}, plan [{}]",
        scratch.backend(),
        plan.describe()
    );

    let (top_k, coarse_min_rows) = {
        let probe_ncm = build(2, 0, 1);
        let (cmr, tk) = probe_ncm.search_params();
        (tk, cmr)
    };

    let mut points = Vec::new();
    let mut max_point_speedup = 0.0f64;
    for &classes in CLASSES {
        for &exemplars in EXEMPLARS {
            let seed = (classes * 1000 + exemplars) as u64;
            let ncm = build(classes, exemplars, seed);
            let qs = probes(&ncm, seed ^ 0xBEEF);
            assert!(
                ncm.num_rows() >= coarse_min_rows,
                "sweep point {classes}x{exemplars} too small to engage the index"
            );
            let (dense_us, dense_labels) = run_path(&qs, &mut scratch, |p, s, out| {
                ncm.classify_dense_into(p, s, out).expect("dense classify")
            });
            let (indexed_us, indexed_labels) = run_path(&qs, &mut scratch, |p, s, out| {
                ncm.classify_into(p, s, out).expect("indexed classify")
            });
            let agree = dense_labels
                .iter()
                .zip(&indexed_labels)
                .filter(|(a, b)| a == b)
                .count();
            let agreement = agree as f64 / qs.len() as f64;
            let speedup = dense_us / indexed_us;
            println!(
                "ncm_scale_smoke: {classes:>2} classes x {exemplars:>3} exemplars ({:>5} rows): \
                 dense {dense_us:8.2} µs, indexed {indexed_us:7.2} µs, {speedup:5.2}x, \
                 agreement {agree}/{}",
                ncm.num_rows(),
                qs.len()
            );
            assert!(
                agreement >= 0.99,
                "{classes}x{exemplars}: agreement {agreement:.4} below the 0.99 gate"
            );
            if classes == 64 && exemplars == 256 {
                max_point_speedup = speedup;
            }
            points.push(SweepPoint {
                classes,
                exemplars_per_class: exemplars,
                total_rows: ncm.num_rows(),
                dense_us_per_query: dense_us,
                indexed_us_per_query: indexed_us,
                speedup,
                agreement,
                index_bytes: ncm.resident_bytes(),
            });
        }
    }

    // Host-aware speedup gate at the largest sweep point: the coarse
    // stage is where the int8 SIMD kernels earn the headline number, so
    // a scalar-only host gets a relaxed bar.
    let gate_threshold = if Backend::detect_simd().is_some() {
        3.0
    } else {
        2.0
    };
    println!(
        "ncm_scale_smoke: speedup at 64x256 {max_point_speedup:.2}x (gate ≥ {gate_threshold:.1}x)"
    );
    assert!(
        max_point_speedup >= gate_threshold,
        "indexed search at 64x256 regressed: {max_point_speedup:.2}x < {gate_threshold:.1}x"
    );

    // ---- forced-backend bit-identity sweep -----------------------------
    // The coarse kernels accumulate in exact integer arithmetic, so the
    // full decision — label, confidence, every distance — must be
    // bit-identical whichever backend scans. Skips non-scalar arms
    // gracefully on hosts without SIMD.
    let mut backends = vec![Backend::Scalar];
    if let Some(simd) = Backend::detect_simd() {
        backends.push(simd);
    }
    let ncm = build(32, 64, 0xA11CE);
    let qs = probes(&ncm, 0x50DA);
    let mut reference: Option<Vec<NcmDecision>> = None;
    for &backend in &backends {
        let mut s = NcmScratch::with_backend(backend);
        let mut out = NcmDecision::default();
        let decisions: Vec<NcmDecision> = qs
            .iter()
            .map(|p| {
                ncm.classify_into(p, &mut s, &mut out).expect("classify");
                out.clone()
            })
            .collect();
        match &reference {
            None => reference = Some(decisions),
            Some(r) => {
                for (i, (a, b)) in r.iter().zip(&decisions).enumerate() {
                    assert_eq!(a.label, b.label, "{backend}: probe {i} label");
                    assert_eq!(
                        a.confidence.to_bits(),
                        b.confidence.to_bits(),
                        "{backend}: probe {i} confidence"
                    );
                    for (x, y) in a.distances.iter().zip(&b.distances) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{backend}: probe {i} distance");
                    }
                }
            }
        }
    }
    println!(
        "ncm_scale_smoke: decisions bit-identical across backends {:?}",
        backends.iter().map(ToString::to_string).collect::<Vec<_>>()
    );

    let report = NcmScaleReport {
        bench: "ncm_index_scaling".into(),
        plan: plan.describe(),
        coarse_backend: scratch.backend().to_string(),
        dim: DIM,
        probes: PROBES,
        top_k,
        coarse_min_rows,
        points,
        gate_speedup_at_max: max_point_speedup,
        gate_threshold,
        backend_sweep: backends.iter().map(ToString::to_string).collect(),
        backend_bit_identical: true,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_ncm_scale.json", json).expect("write report");
    println!("ncm_scale_smoke: wrote BENCH_ncm_scale.json");
    println!(
        "ncm_scale_smoke OK: agreement ≥ 99% at all {} points, {max_point_speedup:.2}x at 64x256",
        CLASSES.len() * EXEMPLARS.len()
    );
}
