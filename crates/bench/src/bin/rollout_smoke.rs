//! Rollout lifecycle smoke test (wired into `make check`): drives the
//! versioned base-model lifecycle end-to-end over a fleet of ≥1k edge
//! sessions and gates on the rollout pipeline's core guarantees:
//!
//! 1. **Healthy upgrade** — a valid v1 → v2 successor rolls out through
//!    all three default waves (2 % canary, 18 %, 80 %), migrates every
//!    session, re-pins calibrated deltas, and ships as a section diff a
//!    fraction of the full bundle's size.
//! 2. **Canary gate** — a seeded regression (support classes rotated one
//!    label over, lineage perfectly valid) must halt at wave 0 and leave
//!    every device — canary included — serving the prior version.
//! 3. **Definition 1** — across both rollouts the privacy ledger shows
//!    zero uplink bytes and every Cloud → Edge payload within the 5 MB
//!    budget; ledger and fleet accounting agree byte-for-byte.
//!
//! Emits machine-readable `BENCH_rollout.json` in the working directory.

use magneto_core::privacy::{Direction, PrivacyLedger};
use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, Lineage, ModelVersion, Precision,
};
use magneto_fleet::{Fleet, FleetConfig, FleetReply, SessionId};
use magneto_platform::rollout::DOWNLINK_BUDGET_BYTES;
use magneto_platform::{
    EnergyModel, FleetAccounting, Rollout, RolloutConfig, RolloutReport, RolloutStatus,
};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use magneto_tensor::SeededRng;
use serde::Serialize;
use std::sync::mpsc::Receiver;

const DEFAULT_SESSIONS: usize = 1000;
const CALIBRATE_EVERY: usize = 7;

#[derive(Serialize)]
struct RolloutSmokeReport {
    bench: String,
    sessions: usize,
    healthy: RolloutReport,
    regressed: RolloutReport,
    healthy_completed: bool,
    regression_halted_at_canary: bool,
    all_on_prior_version_after_halt: bool,
    no_uplink: bool,
    downlink_within_budget: bool,
}

/// A regressed successor of `base`: every support class answers with the
/// next label's samples. The lineage chain stays valid — only the canary
/// accuracy gate can catch this.
fn regress(base: &EdgeBundle) -> EdgeBundle {
    let mut bad = base.clone();
    let labels: Vec<String> = bad.registry.labels().to_vec();
    let mut rng = SeededRng::new(99);
    let samples: Vec<Vec<Vec<f32>>> = labels
        .iter()
        .map(|l| base.support_set.samples(l).unwrap().to_vec())
        .collect();
    for (i, label) in labels.iter().enumerate() {
        let rotated = &samples[(i + 1) % samples.len()];
        bad.support_set.set_class(label, rotated, &mut rng).unwrap();
    }
    bad.with_lineage(base.child_lineage())
}

/// Cloud-owned probe windows (operator-synthesized, not user data).
fn probes(per_class: usize) -> Vec<(Vec<Vec<f32>>, String)> {
    let ds = SensorDataset::generate(
        &GeneratorConfig {
            windows_per_class: per_class,
            ..GeneratorConfig::tiny()
        },
        5,
    );
    ds.windows
        .into_iter()
        .map(|w| (w.channels, w.label))
        .collect()
}

fn calibration_windows(count: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut pool = StreamPool::new(1, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), seed);
    (0..count).map(|_| pool.next_round().remove(0)).collect()
}

fn main() {
    let sessions_target: usize = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--sessions")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--sessions takes an integer"))
            .unwrap_or(DEFAULT_SESSIONS)
    };

    println!("rollout_smoke: pre-training v1 and registering {sessions_target} sessions…");
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 1);
    let v1 = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .unwrap()
        .0
        .with_lineage(Lineage::root(1));

    let mut fleet = Fleet::new(FleetConfig::deterministic()).unwrap();
    let key1 = fleet.register_base(&v1, Precision::F32).unwrap();
    let sessions: Vec<(SessionId, Receiver<FleetReply>)> = (0..sessions_target)
        .map(|i| {
            let (id, rx) = fleet.register_from_base(key1, Precision::F32).unwrap();
            if i % CALIBRATE_EVERY == 0 {
                fleet
                    .calibrate_session(id, "user_move", &calibration_windows(2, 100 + i as u64))
                    .unwrap();
            }
            (id, rx)
        })
        .collect();

    let probe_set = probes(2);
    let mut acc = FleetAccounting::new(EnergyModel::lte_phone(), &[80, 128, 64, 32], 5, 22, 120);
    let mut ledger = PrivacyLedger::edge_only();
    let rollout = Rollout::new(RolloutConfig::default()).unwrap();

    // Gate 1: healthy v1 → v2 completes all three waves.
    let v2 = v1.clone().with_lineage(v1.child_lineage());
    println!("rollout_smoke: rolling out v1 → v2 (healthy) across 3 waves…");
    let healthy = rollout
        .run(
            &mut fleet,
            &v1,
            &v2,
            &sessions,
            &probe_set,
            Precision::F32,
            &mut acc,
            &mut ledger,
        )
        .expect("healthy rollout must not error");
    let healthy_completed = healthy.status == RolloutStatus::Completed;
    assert!(healthy_completed, "rollout_smoke: healthy rollout halted: {:?}", healthy.status);
    assert_eq!(healthy.waves.len(), 3, "rollout_smoke: expected 3 waves");
    assert_eq!(
        healthy.waves.iter().map(|w| w.sessions).sum::<usize>(),
        sessions.len(),
        "rollout_smoke: waves must cover every session"
    );
    assert!(
        healthy.diff_bytes * 10 < healthy.full_bundle_bytes,
        "rollout_smoke: diff {} not a fraction of full bundle {}",
        healthy.diff_bytes,
        healthy.full_bundle_bytes
    );
    for (id, _) in &sessions {
        assert_eq!(
            fleet.session_version(*id).unwrap(),
            ModelVersion(2),
            "rollout_smoke: session not on v2 after healthy rollout"
        );
    }
    println!(
        "rollout_smoke: v2 live on {} sessions (baseline {:.1}%, diff {} B vs full {} B)",
        sessions.len(),
        healthy.baseline_accuracy * 100.0,
        healthy.diff_bytes,
        healthy.full_bundle_bytes
    );

    // Gate 2: a seeded regression v2 → v3 halts at the canary wave and
    // every device ends up back on version N (= v2).
    let key2 = fleet.register_base(&v2, Precision::F32).unwrap();
    let before: Vec<Vec<u8>> = sessions
        .iter()
        .map(|(id, _)| fleet.session_delta(*id).unwrap().to_bytes())
        .collect();
    let v3_bad = regress(&v2);
    println!("rollout_smoke: rolling out v2 → v3 (seeded regression)…");
    let regressed = rollout
        .run(
            &mut fleet,
            &v2,
            &v3_bad,
            &sessions,
            &probe_set,
            Precision::F32,
            &mut acc,
            &mut ledger,
        )
        .expect("regressed rollout must halt, not error");
    let regression_halted_at_canary = matches!(
        regressed.status,
        RolloutStatus::Halted { wave: 0, .. }
    );
    assert!(
        regression_halted_at_canary,
        "rollout_smoke: regression was not halted at the canary wave: {:?}",
        regressed.status
    );
    assert_eq!(regressed.waves.len(), 1, "rollout_smoke: later waves must never ship");
    let mut all_on_prior = true;
    for ((id, _), snapshot) in sessions.iter().zip(&before) {
        all_on_prior &= fleet.session_version(*id).unwrap() == ModelVersion(2);
        all_on_prior &= fleet.session_key(*id).unwrap() == key2;
        all_on_prior &= &fleet.session_delta(*id).unwrap().to_bytes() == snapshot;
    }
    assert!(
        all_on_prior,
        "rollout_smoke: a device was left off version N after the halt"
    );
    println!(
        "rollout_smoke: canary gate tripped at wave 0 ({} devices restored to v2)",
        match regressed.status {
            RolloutStatus::Halted { restored, .. } => restored,
            RolloutStatus::Completed => 0,
        }
    );

    // Gate 3: Definition 1 across both rollouts.
    let no_uplink = ledger.check_no_uplink().is_ok() && ledger.uplink_bytes() == 0;
    let downlink_within_budget = ledger.check_downlink_budget(DOWNLINK_BUDGET_BYTES).is_ok()
        && ledger
            .records()
            .iter()
            .all(|r| r.direction == Direction::CloudToEdge && r.bytes <= DOWNLINK_BUDGET_BYTES);
    assert!(no_uplink, "rollout_smoke: Definition 1 violated — uplink recorded");
    assert!(downlink_within_budget, "rollout_smoke: downlink payload over the 5 MB budget");
    let shipped: u64 = healthy
        .waves
        .iter()
        .chain(regressed.waves.iter())
        .map(|w| w.downlink_bytes)
        .sum();
    assert_eq!(
        ledger.downlink_bytes() as u64,
        acc.downlink_bytes,
        "rollout_smoke: ledger and fleet accounting disagree"
    );
    assert_eq!(shipped, acc.downlink_bytes, "rollout_smoke: wave totals disagree with accounting");

    let report = RolloutSmokeReport {
        bench: "rollout_smoke".into(),
        sessions: sessions.len(),
        healthy,
        regressed,
        healthy_completed,
        regression_halted_at_canary,
        all_on_prior_version_after_halt: all_on_prior,
        no_uplink,
        downlink_within_budget,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_rollout.json", json).expect("write BENCH_rollout.json");

    fleet.shutdown();
    println!(
        "rollout_smoke OK: {} sessions upgraded v1 → v2, regression halted at canary, \
         Definition 1 held across both rollouts",
        sessions.len()
    );
}
