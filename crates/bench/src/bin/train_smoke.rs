//! On-device training smoke test (wired into `make check`): times the
//! Siamese train step and batched inference across compute-pool sizes,
//! emits machine-readable `BENCH_train.json` / `BENCH_infer.json`, and
//! gates on two properties of the parallel execution path:
//!
//! 1. **Determinism** — the trained weights (and inference embeddings)
//!    must be bit-identical at every pool size, including fully inline.
//! 2. **No regression** — running under the installed kernel plan must
//!    not be slower than the forced single-thread path (≥ 1.0× with a
//!    parallel plan; ≥ 0.9× noise floor when the host resolves to one
//!    thread and both runs are sequential).
//!
//! The per-thread-count rows are recorded in the JSON whatever they
//! measure — on a single-core host the 2/4/8-thread rows honestly show
//! dispatch overhead rather than speedup.

use magneto_nn::pairs::{sample_pairs, PairSample};
use magneto_nn::siamese::TrainScratch;
use magneto_nn::{Adam, Mlp, SiameseNetwork};
use magneto_tensor::{Backend, Exec, KernelPlan, Matrix, SeededRng, Workspace};
use serde::Serialize;
use std::time::Instant;

const DIMS: &[usize] = &[80, 512, 256, 128];
const CLASSES: usize = 4;
const ROWS_PER_CLASS: usize = 32;
const PAIRS_PER_STEP: usize = 32;
const TRAIN_STEPS: usize = 30;
const INFER_REPS: usize = 50;
const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

#[derive(Serialize)]
struct BenchEntry {
    threads: usize,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    speedup_vs_1: f64,
    bit_identical_to_sequential: bool,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    plan: String,
    backend: String,
    host_threads: usize,
    iterations: usize,
    entries: Vec<BenchEntry>,
    gate_speedup: f64,
    gate_threshold: f64,
    /// SIMD backend the host detected, if any (`None` = scalar-only).
    simd_backend: Option<String>,
    /// Forced-SIMD vs forced-scalar embed speedup on this host.
    simd_speedup_vs_scalar: Option<f64>,
    /// f32 backend a fresh autotune sweep selected on this host.
    autotuned_backend: Option<String>,
    /// int8 backend the same sweep selected (tuned independently — the
    /// widening i8 multiply often favours a different instance).
    autotuned_i8_backend: Option<String>,
}

struct Timings {
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn stats(mut ms: Vec<f64>) -> Timings {
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean_ms = ms.iter().sum::<f64>() / ms.len() as f64;
    let pct = |p: f64| ms[((ms.len() - 1) as f64 * p).round() as usize];
    Timings {
        mean_ms,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// Gaussian class blobs in the DSP feature dimension.
fn dataset() -> (Matrix, Vec<usize>) {
    let mut rng = SeededRng::new(0xBEEF);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..CLASSES {
        for _ in 0..ROWS_PER_CLASS {
            let row: Vec<f32> = (0..DIMS[0])
                .map(|d| rng.normal_with(if d % CLASSES == c { 2.0 } else { 0.0 }, 1.0))
                .collect();
            rows.push(row);
            labels.push(c);
        }
    }
    (Matrix::from_rows(&rows).expect("dataset"), labels)
}

/// Train a fresh copy of `init` for `TRAIN_STEPS` fixed pair batches on
/// the given exec; returns the trained backbone and per-step times.
fn train_run(
    init: &SiameseNetwork,
    features: &Matrix,
    batches: &[Vec<PairSample>],
    exec: Exec,
) -> (Mlp, Vec<f64>) {
    let mut net = init.clone();
    let mut opt = Adam::new(2e-3);
    let mut scratch = TrainScratch::with_exec(exec);
    let mut times = Vec::with_capacity(batches.len());
    for pairs in batches {
        let t0 = Instant::now();
        net.train_step_masked_with(features, pairs, &mut opt, None, None, 5.0, &mut scratch)
            .expect("train step");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (net.into_backbone(), times)
}

/// Embed the whole feature matrix `INFER_REPS` times on the given exec;
/// returns the last embedding batch and per-call times.
fn infer_run(net: &SiameseNetwork, features: &Matrix, exec: Exec) -> (Matrix, Vec<f64>) {
    let mut ws = Workspace::with_exec(exec);
    let mut out = Matrix::default();
    let mut times = Vec::with_capacity(INFER_REPS);
    for _ in 0..INFER_REPS {
        let t0 = Instant::now();
        net.embed_into(features, &mut out, &mut ws).expect("embed");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, times)
}

fn write_report(path: &str, report: &BenchReport) {
    let json = serde_json::to_string_pretty(report).expect("serialize report");
    std::fs::write(path, json).expect("write report");
    println!("train_smoke: wrote {path}");
}

fn main() {
    let plan = KernelPlan::host_default();
    let host_threads = plan.threads;
    println!("train_smoke: host isa {}", Backend::isa_summary());
    println!("train_smoke: kernel plan [{}]", plan.describe());

    let (features, labels) = dataset();
    let mut rng = SeededRng::new(0x5EED);
    let init = SiameseNetwork::new(Mlp::new(DIMS, &mut rng).expect("backbone"), 1.0);
    let batches: Vec<Vec<PairSample>> = (0..TRAIN_STEPS)
        .map(|_| sample_pairs(&labels, PAIRS_PER_STEP, &mut rng))
        .collect();

    // ---- training sweep -------------------------------------------------
    let (seq_weights, seq_times) = train_run(&init, &features, &batches, Exec::inline());
    let seq_mean = stats(seq_times.clone()).mean_ms;

    let mut train_entries = Vec::new();
    for &t in THREAD_SWEEP {
        let exec = Exec::from_plan(plan.with_threads(t));
        let (weights, times) = train_run(&init, &features, &batches, exec);
        let identical = weights == seq_weights;
        assert!(
            identical,
            "trained weights at {t} threads differ from the sequential path"
        );
        let s = stats(times);
        train_entries.push(BenchEntry {
            threads: t,
            mean_ms: s.mean_ms,
            p50_ms: s.p50_ms,
            p99_ms: s.p99_ms,
            speedup_vs_1: seq_mean / s.mean_ms,
            bit_identical_to_sequential: identical,
        });
        println!(
            "train_smoke: train {t:>2} thread(s): mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms, speedup {:.2}x",
            s.mean_ms,
            s.p50_ms,
            s.p99_ms,
            seq_mean / s.mean_ms
        );
    }

    // The gate compares the *installed plan* against forced sequential: a
    // parallel plan must win outright; a single-thread plan (1-core host)
    // runs the same code both times, so only timer noise separates them.
    let (plan_weights, plan_times) = train_run(&init, &features, &batches, Exec::from_plan(plan));
    assert_eq!(
        plan_weights, seq_weights,
        "trained weights under the installed plan differ from the sequential path"
    );
    let gate_speedup = seq_mean / stats(plan_times).mean_ms;
    let gate_threshold = if plan.threads > 1 { 1.0 } else { 0.9 };
    println!(
        "train_smoke: installed plan ({} thread(s)) speedup {gate_speedup:.2}x (gate ≥ {gate_threshold:.1}x)",
        plan.threads
    );
    assert!(
        gate_speedup >= gate_threshold,
        "train step under the installed plan regressed: {gate_speedup:.2}x < {gate_threshold:.1}x"
    );

    write_report(
        "BENCH_train.json",
        &BenchReport {
            bench: "train_siamese_step".into(),
            plan: plan.describe(),
            backend: plan.backend.to_string(),
            host_threads,
            iterations: TRAIN_STEPS,
            entries: train_entries,
            gate_speedup,
            gate_threshold,
            simd_backend: Backend::detect_simd().map(|b| b.name().to_string()),
            simd_speedup_vs_scalar: None,
            autotuned_backend: None,
            autotuned_i8_backend: None,
        },
    );

    // ---- inference sweep ------------------------------------------------
    let trained = SiameseNetwork::new(seq_weights, 1.0);
    let (seq_emb, seq_times) = infer_run(&trained, &features, Exec::inline());
    let seq_mean = stats(seq_times.clone()).mean_ms;

    let mut infer_entries = Vec::new();
    for &t in THREAD_SWEEP {
        let exec = Exec::from_plan(plan.with_threads(t));
        let (emb, times) = infer_run(&trained, &features, exec);
        let identical = emb == seq_emb;
        assert!(
            identical,
            "batched embeddings at {t} threads differ from the sequential path"
        );
        let s = stats(times);
        infer_entries.push(BenchEntry {
            threads: t,
            mean_ms: s.mean_ms,
            p50_ms: s.p50_ms,
            p99_ms: s.p99_ms,
            speedup_vs_1: seq_mean / s.mean_ms,
            bit_identical_to_sequential: identical,
        });
        println!(
            "train_smoke: infer {t:>2} thread(s): mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms, speedup {:.2}x",
            s.mean_ms,
            s.p50_ms,
            s.p99_ms,
            seq_mean / s.mean_ms
        );
    }

    // ---- SIMD backend comparison ----------------------------------------
    // Forced-scalar vs forced-SIMD batched embedding on one thread, so
    // the comparison isolates the micro-kernel. The float SIMD policy is
    // accuracy-gated (DESIGN.md §14): elementwise tolerance, not bits.
    let mut simd_backend = None;
    let mut simd_speedup = None;
    let mut autotuned_backend = None;
    let mut autotuned_i8_backend = None;
    if let Some(simd) = Backend::detect_simd() {
        let (scalar_emb, scalar_times) =
            infer_run(&trained, &features, Exec::from_plan(plan.with_threads(1)));
        let (simd_emb, simd_times) = infer_run(
            &trained,
            &features,
            Exec::from_plan(plan.with_threads(1).with_backend(simd)),
        );
        let max_diff = scalar_emb
            .as_slice()
            .iter()
            .zip(simd_emb.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff <= 1e-3,
            "forced-{simd} embeddings diverge from scalar: max diff {max_diff}"
        );
        let best = |ms: &[f64]| ms.iter().copied().fold(f64::INFINITY, f64::min);
        let speedup = best(&scalar_times) / best(&simd_times);
        println!(
            "train_smoke: {simd} vs scalar embed speedup {speedup:.2}x (max elementwise diff {max_diff:.1e})"
        );
        // Host-aware no-regression gate: explicit SIMD may tie with the
        // auto-vectorised scalar build, but must never badly lose to it.
        assert!(
            speedup >= 0.8,
            "forced-{simd} embed regressed vs scalar: {speedup:.2}x < 0.8x"
        );
        let tuned = KernelPlan::autotune();
        println!(
            "train_smoke: autotune selected f32 backend {} / i8 backend {} [{}]",
            tuned.backend,
            tuned.i8_backend,
            tuned.describe()
        );
        simd_backend = Some(simd.name().to_string());
        simd_speedup = Some(speedup);
        autotuned_backend = Some(tuned.backend.name().to_string());
        autotuned_i8_backend = Some(tuned.i8_backend.name().to_string());
    } else {
        println!("train_smoke: no SIMD backend on this host; skipping backend comparison");
    }

    write_report(
        "BENCH_infer.json",
        &BenchReport {
            bench: "batched_embed".into(),
            plan: plan.describe(),
            backend: plan.backend.to_string(),
            host_threads,
            iterations: INFER_REPS,
            entries: infer_entries,
            gate_speedup,
            gate_threshold,
            simd_backend,
            simd_speedup_vs_scalar: simd_speedup,
            autotuned_backend,
            autotuned_i8_backend,
        },
    );

    println!("train_smoke OK: bit-identical at all pool sizes, gate {gate_speedup:.2}x");
}
