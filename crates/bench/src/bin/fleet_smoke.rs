//! Fleet serving smoke test (wired into `make check`): a 4-worker fleet
//! serves 16 concurrent sessions, one of which learns a private activity
//! on-device mid-run. Asserts (1) nonzero end-to-end throughput and
//! (2) zero cross-session label leaks — no session other than the learner
//! ever sees the private class in a reply, and every reply's prototype
//! count matches its own session's class list.

use magneto_core::{CloudConfig, CloudInitializer, EdgeConfig, EdgeDevice};
use magneto_fleet::{Fleet, FleetConfig, ModelKey};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use std::time::{Duration, Instant};

const USERS: usize = 16;
const ROUNDS: usize = 8;
const PRIVATE_LABEL: &str = "user3_private_gesture";
const LEARNER: usize = 3;

fn main() {
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 5);
    let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .unwrap();
    let base_classes = bundle.registry.labels().len();

    let fleet = Fleet::new(FleetConfig {
        workers: 4,
        shards: 4,
        ..FleetConfig::default()
    })
    .unwrap();
    let key = ModelKey::of_bundle(&bundle);
    let sessions: Vec<_> = (0..USERS)
        .map(|_| {
            let dev = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).unwrap();
            fleet.register(dev, key)
        })
        .collect();

    // One user personalises mid-fleet: a private gesture learned
    // on-device. The session is re-keyed off the shared model version.
    let recording = SensorDataset::record_session(
        PRIVATE_LABEL,
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        17,
    );
    fleet
        .update_session(sessions[LEARNER].0, |dev| {
            dev.learn_new_activity(PRIVATE_LABEL, &recording)
                .unwrap()
                .committed()
                .unwrap();
        })
        .unwrap();
    assert!(fleet.session_key(sessions[LEARNER].0).unwrap().is_unique());

    let mut pool = StreamPool::new(USERS, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), 2);
    let start = Instant::now();
    let mut submitted = 0u64;
    for _ in 0..ROUNDS {
        for (u, window) in pool.next_round().into_iter().enumerate() {
            loop {
                match fleet.submit(sessions[u].0, window.clone()) {
                    Ok(_) => break,
                    Err(e) => {
                        let retry = e.retry_after().unwrap_or_else(|| {
                            panic!("fleet_smoke: non-backpressure submit error: {e}")
                        });
                        std::thread::sleep(retry);
                    }
                }
            }
            submitted += 1;
        }
    }
    assert!(
        fleet.wait_idle(Duration::from_secs(60)),
        "fleet_smoke: queues did not drain"
    );
    let elapsed = start.elapsed();

    let mut served = 0u64;
    let mut leaks = 0u64;
    for (u, (_, rx)) in sessions.iter().enumerate() {
        let expected_protos = if u == LEARNER {
            base_classes + 1
        } else {
            base_classes
        };
        let mut last_seq = None;
        for reply in rx.try_iter() {
            let pred = reply.outcome.expect("inference failed in smoke run");
            served += 1;
            if u != LEARNER && (pred.label == PRIVATE_LABEL || pred.distances.len() != expected_protos)
            {
                leaks += 1;
            }
            if u == LEARNER {
                assert_eq!(pred.distances.len(), expected_protos);
            }
            // Replies arrive in per-session FIFO order.
            assert!(last_seq.is_none_or(|s| reply.seq > s), "seq order violated");
            last_seq = Some(reply.seq);
        }
    }

    assert_eq!(served, submitted, "lost {} windows", submitted - served);
    assert_eq!(leaks, 0, "cross-session label leaks detected");
    let throughput = served as f64 / elapsed.as_secs_f64();
    assert!(throughput > 0.0, "zero throughput");

    let stats = fleet.shard_stats();
    let rejected: u64 = stats.iter().map(|s| s.rejected).sum();
    let batches: u64 = stats.iter().map(|s| s.batches).sum();
    println!(
        "fleet_smoke OK: {served} windows / {:.2}s = {throughput:.0} windows/s, \
         {batches} micro-batches, {rejected} rejections, 0 label leaks across {USERS} sessions",
        elapsed.as_secs_f64()
    );
    fleet.shutdown();
}
