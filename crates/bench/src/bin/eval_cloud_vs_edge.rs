//! Experiment F1 — the Figure-1 protocol comparison.
//!
//! Cloud-based vs Edge-based HAR across link qualities and device
//! classes: per-inference latency, uplink bytes (privacy) and
//! device-side energy. Also sweeps link RTT to locate the latency
//! crossover (the point where offloading would start to pay off).

use magneto_bench::{build_fixture, header, write_json, EvalOptions};
use magneto_core::incremental::ModelState;
use magneto_platform::{
    CloudProtocol, DeviceModel, EdgeProtocol, EnergyModel, HarProtocol, NetworkLink,
};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::SeededRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    protocol: String,
    link: String,
    device: String,
    p50_latency_ms: f64,
    p95_latency_ms: f64,
    uplink_bytes_per_window: usize,
    energy_joules_per_window: f64,
}

#[derive(Serialize)]
struct Results {
    rows: Vec<Row>,
    crossover_rtt_ms: Option<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run(
    protocol: &mut dyn HarProtocol,
    windows: &[Vec<Vec<f32>>],
) -> (f64, f64, usize, f64) {
    let mut lat: Vec<f64> = Vec::with_capacity(windows.len());
    let mut uplink = 0usize;
    let mut energy = 0.0;
    for w in windows {
        let out = protocol.infer_window(w).expect("inference");
        lat.push(out.latency.as_secs_f64() * 1e3);
        uplink += out.uplink_bytes;
        energy += out.energy_joules;
    }
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        percentile(&lat, 50.0),
        percentile(&lat, 95.0),
        uplink / windows.len(),
        energy / windows.len() as f64,
    )
}

fn main() {
    let opts = EvalOptions::parse();
    header("F1", "Cloud-based vs Edge-based protocol", &opts);

    let fx = build_fixture(&opts);
    let bundle_bytes = fx.bundle.total_bytes();
    let state = ModelState::assemble(
        fx.bundle.model.clone(),
        fx.bundle.support_set.clone(),
        fx.bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .expect("assemble");
    let windows: Vec<Vec<Vec<f32>>> = fx.test.windows.iter().map(|w| w.channels.clone()).collect();

    let mut rows = Vec::new();
    println!(
        "{:<8} {:<10} {:<16} {:>10} {:>10} {:>10} {:>12}",
        "proto", "link", "device", "p50 ms", "p95 ms", "uplink B", "energy J"
    );

    // Edge protocol on three device classes.
    for device in [
        DeviceModel::flagship_phone(),
        DeviceModel::budget_phone(),
        DeviceModel::wearable(),
    ] {
        let mut edge = EdgeProtocol::new(
            fx.bundle.pipeline.clone(),
            state.model.clone(),
            state.ncm.clone(),
            device,
            EnergyModel::lte_phone(),
            bundle_bytes,
        );
        let (p50, p95, up, e) = run(&mut edge, &windows);
        println!(
            "{:<8} {:<10} {:<16} {:>10.3} {:>10.3} {:>10} {:>12.5}",
            "edge", "-", device.name, p50, p95, up, e
        );
        rows.push(Row {
            protocol: "edge".into(),
            link: "-".into(),
            device: device.name.into(),
            p50_latency_ms: p50,
            p95_latency_ms: p95,
            uplink_bytes_per_window: up,
            energy_joules_per_window: e,
        });
        if let Err(e) = edge.ledger().check_no_uplink() {
            eprintln!("privacy invariant violated: {e}");
            std::process::exit(1);
        }
    }

    // Cloud protocol across links.
    for (name, link) in [
        ("wifi", NetworkLink::wifi()),
        ("lte", NetworkLink::lte()),
        ("3g", NetworkLink::cellular_3g()),
        ("congested", NetworkLink::congested()),
    ] {
        let mut cloud = CloudProtocol::new(
            fx.bundle.pipeline.clone(),
            state.model.clone(),
            state.ncm.clone(),
            link,
            EnergyModel::lte_phone(),
            SeededRng::new(opts.seed ^ 0xF1),
        );
        let (p50, p95, up, e) = run(&mut cloud, &windows);
        println!(
            "{:<8} {:<10} {:<16} {:>10.3} {:>10.3} {:>10} {:>12.5}",
            "cloud", name, "budget_phone", p50, p95, up, e
        );
        rows.push(Row {
            protocol: "cloud".into(),
            link: name.into(),
            device: "budget_phone".into(),
            p50_latency_ms: p50,
            p95_latency_ms: p95,
            uplink_bytes_per_window: up,
            energy_joules_per_window: e,
        });
    }

    // Crossover sweep: at what RTT would Cloud beat Edge on latency for a
    // budget phone? (Expected: essentially never for positive RTTs — the
    // edge path costs well under a millisecond of compute.)
    let edge_ms = rows[1].p50_latency_ms; // budget phone
    let mut crossover = None;
    for rtt_tenths in 0..200 {
        let rtt = rtt_tenths as f64 / 10.0;
        let link = NetworkLink {
            base_rtt_ms: rtt,
            jitter_ms: 0.0,
            uplink_mbps: 50.0,
            downlink_mbps: 100.0,
            loss_prob: 0.0,
        };
        let mut cloud = CloudProtocol::new(
            fx.bundle.pipeline.clone(),
            state.model.clone(),
            state.ncm.clone(),
            link,
            EnergyModel::lte_phone(),
            SeededRng::new(1),
        );
        let (p50, _, _, _) = run(&mut cloud, &windows[..10.min(windows.len())]);
        if p50 < edge_ms {
            crossover = Some(rtt);
            break;
        }
    }
    match crossover {
        Some(rtt) => println!(
            "\n  latency crossover: Cloud beats Edge only below {rtt:.1} ms RTT (budget phone)"
        ),
        None => println!(
            "\n  latency crossover: none found for RTT ≥ 0 — Edge wins at every realistic RTT"
        ),
    }

    println!("\npaper-claim (Fig. 1): Edge-based ⇒ low latency + no Edge→Cloud data transfer;");
    println!("                      Cloud-based ⇒ constant communication + privacy exposure");
    println!(
        "measured:    edge p50 {:.3} ms / 0 B uplink; cloud(wifi) p50 {:.1} ms / {} B uplink per window",
        edge_ms, rows[3].p50_latency_ms, rows[3].uplink_bytes_per_window
    );

    write_json(
        &opts,
        &Results {
            rows,
            crossover_rtt_ms: crossover,
        },
    );
}
