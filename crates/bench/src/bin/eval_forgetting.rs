//! Experiment A1 — catastrophic forgetting ablation (§3.3).
//!
//! Adds four new activities *sequentially* and tracks base-class accuracy
//! after every addition, under three regimes:
//!
//! * `contrastive-only` — distillation disabled (the naive update);
//! * `magneto` — joint contrastive + distillation (the paper's method);
//! * `full-retrain` — retrain from scratch on everything (the upper bound
//!   an edge device cannot afford).
//!
//! Replay from the support set already combats forgetting, so the regime
//! matrix is run at two memory budgets: **ample** (the paper's 200
//! exemplars/class — replay covers the corpus) and **tight** (10/class —
//! where the distillation term has to do the work). The shape to
//! reproduce: under tight memory, contrastive-only degrades with each
//! addition while MAGNETO stays near its starting accuracy.
//!
//! New-class test windows come from the *same user* who recorded them —
//! personalisation means the device learns *your* gesture, not the
//! population's.

use magneto_bench::{evaluate_device, header, write_json, EvalOptions};
use magneto_core::cloud::CloudInitializer;
use magneto_core::{EdgeConfig, EdgeDevice};
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use serde::Serialize;

const NEW_ACTIVITIES: [ActivityKind; 4] = [
    ActivityKind::GestureHi,
    ActivityKind::GestureCircle,
    ActivityKind::Jump,
    ActivityKind::StairsUp,
];
const BASE: [&str; 5] = ["drive", "e_scooter", "run", "still", "walk"];

#[derive(Serialize)]
struct Results {
    budgets: Vec<BudgetBlock>,
}

#[derive(Serialize)]
struct BudgetBlock {
    budget: usize,
    regimes: Vec<RegimeRow>,
}

#[derive(Serialize)]
struct RegimeRow {
    name: String,
    base_accuracy_per_step: Vec<f64>,
    mean_new_class_recall: f64,
}

fn recording(kind: ActivityKind, seed: u64) -> SensorDataset {
    SensorDataset::record_session(kind.label(), kind, PersonProfile::nominal(), 25.0, seed)
}

/// Same-user test windows for each gesture.
fn gesture_test(opts: &EvalOptions) -> SensorDataset {
    SensorDataset::generate_for_person(
        &GeneratorConfig {
            activities: NEW_ACTIVITIES.to_vec(),
            windows_per_class: 20,
            ..GeneratorConfig::base_five(20)
        },
        PersonProfile::nominal(),
        opts.seed ^ 0xA1,
    )
}

fn main() {
    let opts = EvalOptions::parse();
    header("A1", "catastrophic forgetting across sequential additions", &opts);

    let gestures = gesture_test(&opts);
    let mut budgets = Vec::new();

    for budget in [200usize, 10] {
        println!("--- support budget: {budget}/class ---");
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}   (base-class accuracy)",
            "regime", "k=0", "k=1", "k=2", "k=3", "k=4"
        );

        // Cloud init at this budget.
        let mut cloud_cfg = opts.cloud_config();
        cloud_cfg.support_budget = budget;
        let train = SensorDataset::generate(&opts.corpus_config(), opts.seed);
        let test = SensorDataset::generate(
            &GeneratorConfig {
                windows_per_class: (opts.windows_per_class / 3).clamp(10, 60),
                ..opts.corpus_config()
            },
            opts.seed ^ 0xDEAD_5117,
        );
        let (bundle, _) = CloudInitializer::new(cloud_cfg.clone())
            .pretrain(&train)
            .expect("pretrain");

        let mut regimes = Vec::new();
        for (name, disable_replay, disable_distillation) in [
            ("fine-tune", true, true),
            ("fine-tune+distill", true, false),
            ("replay-only", false, true),
            ("magneto", false, false),
        ] {
            let mut config = EdgeConfig::default();
            config.incremental.disable_replay = disable_replay;
            config.incremental.disable_distillation = disable_distillation;
            let mut device = EdgeDevice::deploy(bundle.clone(), config).expect("deploy");
            let mut base_acc =
                vec![evaluate_device(&mut device, &test).subset_accuracy(&BASE)];
            let mut new_recalls = Vec::new();
            for (k, kind) in NEW_ACTIVITIES.iter().enumerate() {
                device
                    .learn_new_activity(kind.label(), &recording(*kind, opts.seed + k as u64))
                    .expect("update")
                    .committed()
                    .expect("update committed");
                let mut full = test.clone();
                full.extend(gestures.clone());
                let cm = evaluate_device(&mut device, &full);
                base_acc.push(cm.subset_accuracy(&BASE));
                new_recalls.push(cm.recall(kind.label()).unwrap_or(0.0));
            }
            print_row(name, &base_acc);
            regimes.push(RegimeRow {
                name: name.to_string(),
                base_accuracy_per_step: base_acc,
                mean_new_class_recall: new_recalls.iter().sum::<f64>()
                    / new_recalls.len() as f64,
            });
        }

        // Full-retrain upper bound at this budget.
        {
            let mut base_acc = vec![regimes[1].base_accuracy_per_step[0]];
            let mut new_recalls = Vec::new();
            for k in 1..=NEW_ACTIVITIES.len() {
                let mut corpus = train.clone();
                for (g, kind) in NEW_ACTIVITIES[..k].iter().enumerate() {
                    corpus.extend(SensorDataset::generate_for_person(
                        &GeneratorConfig {
                            activities: vec![*kind],
                            windows_per_class: 25,
                            ..GeneratorConfig::base_five(1)
                        },
                        PersonProfile::nominal(),
                        opts.seed + g as u64, // the same user recordings
                    ));
                }
                let (b, _) = CloudInitializer::new(cloud_cfg.clone())
                    .pretrain(&corpus)
                    .expect("retrain");
                let mut device = EdgeDevice::deploy(b, EdgeConfig::default()).expect("deploy");
                let mut full = test.clone();
                full.extend(gestures.clone());
                let cm = evaluate_device(&mut device, &full);
                base_acc.push(cm.subset_accuracy(&BASE));
                new_recalls.push(cm.recall(NEW_ACTIVITIES[k - 1].label()).unwrap_or(0.0));
            }
            print_row("full-retrain", &base_acc);
            regimes.push(RegimeRow {
                name: "full-retrain".into(),
                base_accuracy_per_step: base_acc,
                mean_new_class_recall: new_recalls.iter().sum::<f64>()
                    / new_recalls.len() as f64,
            });
        }

        println!("  mean new-class recall:");
        for r in &regimes {
            println!("    {:<18} {:.1}%", r.name, r.mean_new_class_recall * 100.0);
        }
        println!();
        budgets.push(BudgetBlock { budget, regimes });
    }

    let tight = &budgets[1].regimes;
    let drop = |row: &RegimeRow| {
        row.base_accuracy_per_step[0] - row.base_accuracy_per_step.last().unwrap()
    };
    println!("paper-claim: the joint support-set + distillation update avoids catastrophic forgetting");
    println!(
        "measured:    tight-memory base-accuracy drop after 4 additions: \
         fine-tune {:.1} pts, fine-tune+distill {:.1} pts, replay-only {:.1} pts, magneto {:.1} pts",
        drop(&tight[0]) * 100.0,
        drop(&tight[1]) * 100.0,
        drop(&tight[2]) * 100.0,
        drop(&tight[3]) * 100.0
    );

    write_json(&opts, &Results { budgets });
}

fn print_row(name: &str, accs: &[f64]) {
    print!("{name:<18}");
    for a in accs {
        print!(" {:>7.1}%", a * 100.0);
    }
    println!();
}
