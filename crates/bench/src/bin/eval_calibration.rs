//! Experiment A3 — personalisation by calibration (§3.3, §4.2.2).
//!
//! For several *atypical* users (cadence/carry/tremor far from the
//! training population), measures walk recall before and after replacing
//! the walk support data with ~20 s of the user's own recording and
//! re-training on-device.

use magneto_bench::{build_fixture, evaluate_device, header, write_json, EvalOptions};
use magneto_core::{EdgeConfig, EdgeDevice};
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use magneto_tensor::SeededRng;
use serde::Serialize;

const USERS: usize = 6;

#[derive(Serialize)]
struct Results {
    per_user: Vec<UserRow>,
    mean_before: f64,
    mean_after: f64,
}

#[derive(Serialize)]
struct UserRow {
    atypicality: f64,
    walk_recall_before: f64,
    walk_recall_after: f64,
    overall_before: f64,
    overall_after: f64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("A3", "per-user calibration of `walk`", &opts);

    let fx = build_fixture(&opts);

    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>10}",
        "user", "atypicality", "walk before", "walk after", "Δ"
    );
    let mut rows = Vec::new();
    let mut rng = SeededRng::new(opts.seed ^ 0xA3);
    for u in 0..USERS {
        let user = PersonProfile::sample_atypical(&mut rng);
        // Personal held-out data across all five activities.
        let personal_test = SensorDataset::generate_for_person(
            &GeneratorConfig {
                windows_per_class: 20,
                ..GeneratorConfig::base_five(20)
            },
            user,
            opts.seed ^ (0x1000 + u as u64),
        );
        let mut device =
            EdgeDevice::deploy(fx.bundle.clone(), EdgeConfig::default()).expect("deploy");
        let before = evaluate_device(&mut device, &personal_test);
        let walk_before = before.recall("walk").unwrap_or(0.0);

        // 20 s personal walk recording → calibration.
        let recording = SensorDataset::record_session(
            "walk",
            ActivityKind::Walk,
            user,
            20.0,
            opts.seed ^ (0x2000 + u as u64),
        );
        device
            .calibrate_activity("walk", &recording)
            .expect("calibration")
            .committed()
            .expect("calibration committed");

        let after = evaluate_device(&mut device, &personal_test);
        let walk_after = after.recall("walk").unwrap_or(0.0);
        println!(
            "{u:>6} {:>12.2} {:>13.1}% {:>13.1}% {:>+9.1}",
            user.atypicality(),
            walk_before * 100.0,
            walk_after * 100.0,
            (walk_after - walk_before) * 100.0
        );
        rows.push(UserRow {
            atypicality: user.atypicality(),
            walk_recall_before: walk_before,
            walk_recall_after: walk_after,
            overall_before: before.accuracy(),
            overall_after: after.accuracy(),
        });
        if let Err(e) = device.privacy_ledger().check_no_uplink() {
            eprintln!("privacy invariant violated: {e}");
            std::process::exit(1);
        }
    }

    // Full personalisation: calibrate *all five* activities for one user
    // and compare overall accuracy (single-activity calibration trades
    // other classes' alignment for the target's).
    {
        let mut rng2 = SeededRng::new(opts.seed ^ 0xFA);
        let user = PersonProfile::sample_atypical(&mut rng2);
        let personal_test = SensorDataset::generate_for_person(
            &GeneratorConfig {
                windows_per_class: 20,
                ..GeneratorConfig::base_five(20)
            },
            user,
            opts.seed ^ 0x3000,
        );
        let mut device =
            EdgeDevice::deploy(fx.bundle.clone(), EdgeConfig::default()).expect("deploy");
        let before = evaluate_device(&mut device, &personal_test).accuracy();
        for (i, kind) in ActivityKind::BASE_FIVE.iter().enumerate() {
            let rec = SensorDataset::record_session(
                kind.label(),
                *kind,
                user,
                20.0,
                opts.seed ^ (0x4000 + i as u64),
            );
            device
                .calibrate_activity(kind.label(), &rec)
                .expect("calibrate")
                .committed()
                .expect("calibrate committed");
        }
        let after = evaluate_device(&mut device, &personal_test).accuracy();
        println!(
            "\n  full personalisation (all 5 activities calibrated, one user):\n  overall accuracy {:.1}% -> {:.1}% ({:+.1} pts)",
            before * 100.0,
            after * 100.0,
            (after - before) * 100.0
        );
    }

    let mean_before = rows.iter().map(|r| r.walk_recall_before).sum::<f64>() / rows.len() as f64;
    let mean_after = rows.iter().map(|r| r.walk_recall_after).sum::<f64>() / rows.len() as f64;
    println!(
        "\n  mean walk recall: {:.1}% → {:.1}% ({:+.1} pts) across {USERS} atypical users",
        mean_before * 100.0,
        mean_after * 100.0,
        (mean_after - mean_before) * 100.0
    );

    println!("\npaper-claim: calibration re-aligns an activity to the user's personal style");
    println!(
        "measured:    mean walk recall {:+.1} pts after a 20 s on-device calibration",
        (mean_after - mean_before) * 100.0
    );

    write_json(
        &opts,
        &Results {
            per_user: rows,
            mean_before,
            mean_after,
        },
    );
}
