//! Experiment A7 (extension) — battery-life projection for continuous
//! HAR.
//!
//! §1 names energy as a core Edge constraint. This harness projects how
//! long a 4 000 mAh phone battery sustains *continuous* one-window-per-
//! second activity recognition under each protocol, charging only the
//! HAR workload against the battery (screen/OS excluded — this isolates
//! the deployment choice).

use magneto_bench::{build_fixture, header, write_json, EvalOptions};
use magneto_core::incremental::ModelState;
use magneto_platform::energy::Battery;
use magneto_platform::{
    CloudProtocol, DeviceModel, EdgeProtocol, EnergyModel, HarProtocol, NetworkLink,
};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::SeededRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    protocol: String,
    link: String,
    joules_per_window: f64,
    projected_hours: f64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("A7", "battery life under continuous HAR", &opts);

    let fx = build_fixture(&opts);
    let state = ModelState::assemble(
        fx.bundle.model.clone(),
        fx.bundle.support_set.clone(),
        fx.bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .expect("assemble");
    let windows: Vec<Vec<Vec<f32>>> = fx
        .test
        .windows
        .iter()
        .take(20)
        .map(|w| w.channels.clone())
        .collect();

    let battery = Battery::phone();
    println!(
        "  battery: {:.0} kJ (≈4000 mAh); workload: 1 window/s continuous\n",
        battery.capacity_joules / 1000.0
    );
    println!(
        "{:<10} {:<12} {:>18} {:>18}",
        "protocol", "link", "J per window", "projected life"
    );

    let mut rows = Vec::new();
    let mut measure = |name: &str, link_name: &str, proto: &mut dyn HarProtocol| {
        let total: f64 = windows
            .iter()
            .map(|w| proto.infer_window(w).expect("infer").energy_joules)
            .sum();
        let per_window = total / windows.len() as f64;
        // Windows arrive once per second; hours until the battery dies.
        let hours = battery.capacity_joules / per_window / 3600.0;
        let life = if hours > 1000.0 {
            format!("{:.1}k h", hours / 1000.0)
        } else {
            format!("{hours:.0} h")
        };
        println!("{name:<10} {link_name:<12} {per_window:>18.5} {life:>18}");
        rows.push(Row {
            protocol: name.to_string(),
            link: link_name.to_string(),
            joules_per_window: per_window,
            projected_hours: hours,
        });
    };

    let mut edge = EdgeProtocol::new(
        fx.bundle.pipeline.clone(),
        state.model.clone(),
        state.ncm.clone(),
        DeviceModel::budget_phone(),
        EnergyModel::lte_phone(),
        fx.bundle.total_bytes(),
    );
    measure("edge", "-", &mut edge);

    for (name, link, energy) in [
        ("wifi", NetworkLink::wifi(), EnergyModel::wifi_phone()),
        ("lte", NetworkLink::lte(), EnergyModel::lte_phone()),
    ] {
        let mut cloud = CloudProtocol::new(
            fx.bundle.pipeline.clone(),
            state.model.clone(),
            state.ncm.clone(),
            link,
            energy,
            SeededRng::new(opts.seed ^ 0xA7),
        );
        measure("cloud", name, &mut cloud);
    }

    let edge_h = rows[0].projected_hours;
    let lte_h = rows[2].projected_hours;
    println!(
        "\npaper-claim (§1): energy constraints demand efficient on-device processing;"
    );
    println!("             shipping data to the Cloud is not free");
    println!(
        "measured:    continuous HAR drains the battery in {:.0} h over LTE offloading vs \
         {:.0}x longer on-device",
        lte_h,
        edge_h / lte_h
    );

    write_json(&opts, &rows);
}
