//! Experiment C5 — how much recording does a new activity need?
//!
//! §3.3 step 1 prescribes "roughly 20-30 seconds of recording". This
//! sweep learns `gesture_hi` from 5…40 s of recording and measures
//! new-class recall and base retention at each duration.

use magneto_bench::{build_fixture, evaluate_device, header, write_json, EvalOptions};
use magneto_core::{EdgeConfig, EdgeDevice};
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    rows: Vec<(f64, f64, f64)>, // (seconds, new recall, base retention)
}

fn main() {
    let opts = EvalOptions::parse();
    header("C5", "recording duration needed to learn a new activity", &opts);

    let fx = build_fixture(&opts);
    // Same-user test windows: the device learns *this user's* gesture.
    let gesture_test = SensorDataset::generate_for_person(
        &GeneratorConfig {
            activities: vec![ActivityKind::GestureHi],
            windows_per_class: 30,
            ..GeneratorConfig::base_five(30)
        },
        PersonProfile::nominal(),
        opts.seed ^ 0xC5,
    );
    let base_labels = ["drive", "e_scooter", "run", "still", "walk"];

    println!(
        "{:>10} {:>12} {:>16}",
        "seconds", "new recall", "base retention"
    );
    let mut rows = Vec::new();
    for seconds in [5.0f64, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0] {
        let mut device =
            EdgeDevice::deploy(fx.bundle.clone(), EdgeConfig::default()).expect("deploy");
        let recording = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            seconds,
            opts.seed ^ 0x50,
        );
        device
            .learn_new_activity("gesture_hi", &recording)
            .expect("update")
            .committed()
            .expect("update committed");
        let mut test = fx.test.clone();
        test.extend(gesture_test.clone());
        let cm = evaluate_device(&mut device, &test);
        let new_recall = cm.recall("gesture_hi").unwrap_or(0.0);
        let retention =
            cm.subset_accuracy(&base_labels.iter().map(|s| &**s).collect::<Vec<_>>());
        println!(
            "{seconds:>10.0} {:>11.1}% {:>15.1}%",
            new_recall * 100.0,
            retention * 100.0
        );
        rows.push((seconds, new_recall, retention));
    }

    let at_20 = rows.iter().find(|r| r.0 == 20.0).map(|r| r.1).unwrap_or(0.0);
    println!("\npaper-claim: ~20-30 s of recording suffices to learn a new activity");
    println!(
        "measured:    {:.1}% new-class recall at 20 s (diminishing returns beyond)",
        at_20 * 100.0
    );

    write_json(&opts, &Results { rows });
}
