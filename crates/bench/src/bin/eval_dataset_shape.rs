//! Experiment C4 — dataset shape (§4.1.2).
//!
//! The paper's corpus: 22 mobile sensors, ~120 measurements per
//! one-second window, 80 statistical features, five activities, ~200k
//! records, > 100 GB raw. This harness verifies the synthetic substrate
//! reproduces that shape and extrapolates the storage arithmetic to the
//! paper's scale.

use magneto_bench::{header, write_json, EvalOptions};
use magneto_dsp::{FeatureExtractor, NUM_FEATURES};
use magneto_sensors::{SensorDataset, NUM_CHANNELS, SAMPLE_RATE_HZ};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    channels: usize,
    samples_per_window: usize,
    features: usize,
    classes: Vec<String>,
    window_bytes: usize,
    projected_200k_windows_gb: f64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("C4", "corpus shape vs the paper's description", &opts);

    let corpus = SensorDataset::generate(&opts.corpus_config(), opts.seed);
    let w = &corpus.windows[0];

    println!("  {:<34} {:>10} {:>10}", "property", "paper", "generated");
    println!("  {:<34} {:>10} {:>10}", "sensor channels", 22, w.channels.len());
    println!(
        "  {:<34} {:>10} {:>10}",
        "measurements per 1 s window", "~120", w.len()
    );
    println!(
        "  {:<34} {:>10} {:>10}",
        "sample rate (Hz)", "~120", SAMPLE_RATE_HZ
    );
    println!(
        "  {:<34} {:>10} {:>10}",
        "statistical features", 80, NUM_FEATURES
    );
    println!(
        "  {:<34} {:>10} {:>10}",
        "activities", 5, corpus.classes().len()
    );
    println!(
        "  activity set: {:?}",
        corpus.classes()
    );

    // Feature extraction really yields 80 finite values.
    let feats = FeatureExtractor::default()
        .extract(&w.channels)
        .expect("extract");
    assert_eq!(feats.len(), NUM_FEATURES);
    assert!(feats.iter().all(|v| v.is_finite()));
    println!("\n  feature vector: {} finite values ✓", feats.len());

    // Storage arithmetic at the paper's scale.
    let window_bytes = w.sample_bytes();
    let projected_gb = window_bytes as f64 * 200_000.0 / 1e9;
    println!(
        "  one windowed record = {} B; 200k records ≈ {:.1} GB of windowed f32 data",
        window_bytes, projected_gb
    );
    println!(
        "  (the paper's \"more than 100 GB\" covers raw, multi-rate, unsegmented captures;"
    );
    println!("   the windowed working set is ~{projected_gb:.0} GB — consistent arithmetic)");

    println!("\npaper-claim: 22 sensors x ~120 Hz x 1 s windows, 80 features, 5 activities");
    println!(
        "measured:    {} x {} x 1 s windows, {} features, {} activities ✓",
        NUM_CHANNELS,
        w.len(),
        NUM_FEATURES,
        corpus.classes().len()
    );

    write_json(
        &opts,
        &Results {
            channels: w.channels.len(),
            samples_per_window: w.len(),
            features: NUM_FEATURES,
            classes: corpus.classes(),
            window_bytes,
            projected_200k_windows_gb: projected_gb,
        },
    );
}
