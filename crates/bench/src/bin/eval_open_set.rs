//! Experiment A5 (extension) — open-set rejection: saying "unknown
//! activity" instead of mislabelling.
//!
//! Before the user teaches `gesture_hi`, a closed-set NCM *must* assign
//! it one of the five base labels. With distance-based rejection the
//! device can flag it as unknown instead — the natural UI cue for "teach
//! me this" in the Figure-3 flow. This harness sweeps the rejection
//! margin and reports known-acceptance vs novel-rejection, then verifies
//! that after on-device learning the gesture is accepted under the same
//! threshold.

use magneto_bench::{build_fixture, deploy, header, write_json, EvalOptions};
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    margin_sweep: Vec<(f64, f64, f64)>, // (margin, known acceptance, novel rejection)
    chosen_margin: f64,
    post_learning_gesture_acceptance: f64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("A5", "open-set rejection of unseen activities", &opts);

    let fx = build_fixture(&opts);
    let mut device = deploy(fx.bundle.clone());

    // Known windows: cross-user base activities. Novel windows: the
    // nominal user's unseen gesture.
    let known = &fx.test;
    let novel = SensorDataset::generate_for_person(
        &GeneratorConfig {
            activities: vec![ActivityKind::GestureHi],
            windows_per_class: 40,
            ..GeneratorConfig::base_five(40)
        },
        PersonProfile::nominal(),
        opts.seed ^ 0xA5,
    );

    let acceptance = |device: &mut magneto_core::EdgeDevice,
                      ds: &SensorDataset,
                      threshold: f32| {
        let accepted = ds
            .windows
            .iter()
            .filter(|w| {
                device
                    .infer_window_open_set(&w.channels, threshold)
                    .expect("infer")
                    .is_some()
            })
            .count();
        accepted as f64 / ds.len().max(1) as f64
    };

    println!(
        "{:>8} {:>12} {:>18} {:>18}",
        "margin", "threshold", "known acceptance", "novel rejection"
    );
    let mut sweep = Vec::new();
    let mut chosen = (0.0f64, 0.0f64); // (margin, combined score)
    for margin in [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0] {
        let threshold = device.rejection_threshold(100.0, margin).expect("threshold");
        let known_acc = acceptance(&mut device, known, threshold);
        let novel_rej = 1.0 - acceptance(&mut device, &novel, threshold);
        println!(
            "{margin:>8.1} {threshold:>12.3} {:>17.1}% {:>17.1}%",
            known_acc * 100.0,
            novel_rej * 100.0
        );
        sweep.push((f64::from(margin), known_acc, novel_rej));
        let score = known_acc + novel_rej; // Youden-style operating point
        if score > chosen.1 {
            chosen = (f64::from(margin), score);
        }
    }
    println!("\n  best operating margin: {:.1}", chosen.0);

    // After learning the gesture on-device, the same threshold accepts it.
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        opts.seed ^ 0x50,
    );
    device
        .learn_new_activity("gesture_hi", &recording)
        .expect("learn")
        .committed()
        .expect("learn committed");
    let threshold = device
        .rejection_threshold(100.0, chosen.0 as f32)
        .expect("threshold");
    let post = acceptance(&mut device, &novel, threshold);
    println!(
        "  after learning `gesture_hi`: {:.1}% of its windows accepted under the same margin",
        post * 100.0
    );

    println!("\npaper-claim (extension): distance-based NCM naturally supports an \"unknown");
    println!("             activity\" signal that flips to recognised after on-device learning");
    println!(
        "measured:    at margin {:.0}: known acceptance {:.0}%, novel rejection {:.0}%; \
         post-learning acceptance {:.0}%",
        chosen.0,
        sweep.iter().find(|s| s.0 == chosen.0).map(|s| s.1 * 100.0).unwrap_or(0.0),
        sweep.iter().find(|s| s.0 == chosen.0).map(|s| s.2 * 100.0).unwrap_or(0.0),
        post * 100.0
    );

    write_json(
        &opts,
        &Results {
            margin_sweep: sweep,
            chosen_margin: chosen.0,
            post_learning_gesture_acceptance: post,
        },
    );
}
