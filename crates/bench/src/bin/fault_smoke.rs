//! Fault-tolerance smoke test (wired into `make check`): drives the full
//! edge lifecycle — infer, learn, crash-save, reload — under injected
//! sensor faults and simulated crashes, and gates on four properties:
//!
//! 1. **Graceful degradation** — held-out streaming accuracy at 5 % and
//!    20 % frame drop stays within 10 points of the clean-stream
//!    accuracy (dropped frames shorten the stream; surviving windows
//!    must classify as well as ever).
//! 2. **Transactional learning** — an update rejected by validation
//!    leaves the serialized bundle byte-identical.
//! 3. **Crash-safe persistence** — a save interrupted mid-journal
//!    (torn write) loses nothing: reload yields the old bundle; a save
//!    interrupted after the journal completes rolls forward to the new
//!    bundle. Never an error, never a hybrid.
//! 4. **Chaos stability** — an aggressive all-faults plan (drops,
//!    frozen channels, NaN/saturation bursts, jitter) swept over N
//!    seeds never panics, never emits a non-finite output, and replays
//!    bit-identically. `make check` sweeps 4 seeds; `make chaos` runs
//!    the same binary with `--chaos-seeds 32`.
//!
//! Emits machine-readable `BENCH_fault.json` in the working directory.

use magneto_core::storage::{journal_path, load_bundle, save_bundle};
use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, EdgeConfig, EdgeDevice, UpdateOutcome,
};
use magneto_sensors::{
    ActivityKind, FaultPlan, PersonProfile, SensorDataset, SensorFrame, GeneratorConfig,
    NUM_CHANNELS, SAMPLE_RATE_HZ,
};
use serde::Serialize;
use std::path::PathBuf;

const WINDOW_LEN: usize = 120;
const SECONDS_PER_CLASS: f64 = 30.0;
const DROP_RATES: &[f64] = &[0.0, 0.05, 0.20];
const MAX_ACCURACY_DROP: f64 = 0.10;
const CHAOS_FRAMES: usize = 720;

#[derive(Serialize)]
struct DropEntry {
    drop_rate: f64,
    windows: usize,
    accuracy: f64,
}

#[derive(Serialize)]
struct FaultReport {
    bench: String,
    drop_sweep: Vec<DropEntry>,
    rollback_bundle_byte_identical: bool,
    torn_journal_recovers_old: bool,
    complete_journal_rolls_forward: bool,
    chaos_seeds: u64,
    chaos_predictions: u64,
}

fn write_report(report: &FaultReport) {
    let json = serde_json::to_string_pretty(report).expect("serialize report");
    std::fs::write("BENCH_fault.json", json).expect("write BENCH_fault.json");
}

/// Transpose a `channels x samples` window back into frames so the
/// injector (which operates on frame streams) can perturb it.
fn window_to_frames(channels: &[Vec<f32>], t0: usize) -> Vec<SensorFrame> {
    let samples = channels.first().map_or(0, Vec::len);
    (0..samples)
        .map(|t| {
            let mut values = [0.0f32; NUM_CHANNELS];
            for (c, ch) in channels.iter().enumerate() {
                values[c] = ch[t];
            }
            SensorFrame {
                timestamp: (t0 + t) as f64 / SAMPLE_RATE_HZ,
                values,
            }
        })
        .collect()
}

/// Held-out per-class streaming accuracy after dropping `drop_rate` of
/// the frames: each class's recording becomes one lossy stream,
/// re-windowed from whatever frames survive.
fn accuracy_under_drop(bundle: &EdgeBundle, drop_rate: f64, seed: u64) -> (usize, f64) {
    let mut device = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).unwrap();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (k, kind) in ActivityKind::BASE_FIVE.iter().enumerate() {
        let session = SensorDataset::record_session(
            kind.label(),
            *kind,
            PersonProfile::nominal(),
            SECONDS_PER_CLASS,
            seed + k as u64,
        );
        let mut frames = Vec::new();
        for w in &session.windows {
            frames.extend(window_to_frames(&w.channels, frames.len()));
        }
        let survived = FaultPlan::drops(seed ^ 0xD509, drop_rate).injector().apply(&frames);
        for chunk in survived.chunks_exact(WINDOW_LEN) {
            let mut channels: Vec<Vec<f32>> = (0..NUM_CHANNELS)
                .map(|_| Vec::with_capacity(WINDOW_LEN))
                .collect();
            for f in chunk {
                for (c, v) in f.values.iter().enumerate() {
                    channels[c].push(*v);
                }
            }
            let pred = device.infer_window(&channels).expect("inference");
            total += 1;
            if pred.label == kind.label() {
                correct += 1;
            }
        }
    }
    (total, correct as f64 / total.max(1) as f64)
}

/// Gate 2: a validation-rejected update must leave the bundle bytes
/// untouched.
fn check_transactional_rollback(bundle: &EdgeBundle) -> bool {
    let mut config = EdgeConfig::default();
    config.incremental.validation.self_accuracy_floor = 1.5; // unattainable
    let mut device = EdgeDevice::deploy(bundle.clone(), config).unwrap();
    let before = device.as_bundle().to_bytes(false);
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        10.0,
        41,
    );
    let outcome = device
        .learn_new_activity("gesture_hi", &recording)
        .expect("update should roll back, not error");
    assert!(
        matches!(outcome, UpdateOutcome::RolledBack { .. }),
        "fault_smoke: impossible accuracy floor did not trigger rollback"
    );
    before == device.as_bundle().to_bytes(false)
}

/// Gate 3: crash-save. Simulates a crash at both interesting points of
/// the two-phase commit by planting (a) a torn journal and (b) a
/// complete journal next to an existing bundle, then reloading.
fn check_crash_save(old: &EdgeBundle, new: &EdgeBundle, dir: &PathBuf) -> (bool, bool) {
    std::fs::create_dir_all(dir).expect("create scratch dir");
    let path = dir.join("device.magneto");
    save_bundle(old, &path, false).expect("save old bundle");
    let old_bytes = std::fs::read(&path).expect("read old file");

    // A journal's on-disk format equals the final file's: capture the
    // new bundle's framed bytes from a sibling save.
    let sibling = dir.join("device.new.magneto");
    save_bundle(new, &sibling, false).expect("save new bundle");
    let new_bytes = std::fs::read(&sibling).expect("read new file");

    // Crash mid-journal-write: only half the journal made it to disk.
    std::fs::write(journal_path(&path), &new_bytes[..new_bytes.len() / 2])
        .expect("plant torn journal");
    let after_torn = load_bundle(&path).expect("load with torn journal");
    let torn_ok = after_torn.to_bytes(false) == old.to_bytes(false)
        && std::fs::read(&path).expect("reread") == old_bytes;

    // Crash after the journal completed but before the final rename:
    // recovery must roll the new bundle forward.
    std::fs::write(journal_path(&path), &new_bytes).expect("plant complete journal");
    let after_complete = load_bundle(&path).expect("load with complete journal");
    let complete_ok = after_complete.to_bytes(false) == new.to_bytes(false)
        && std::fs::read(&path).expect("reread") == new_bytes;

    let _unused = std::fs::remove_dir_all(dir);
    (torn_ok, complete_ok)
}

/// Gate 4: `seeds` nasty fault plans through the streaming path — all
/// outputs finite, every run bit-identical on replay. Returns the
/// prediction count as a liveness witness.
fn chaos_sweep(bundle: &EdgeBundle, seeds: u64) -> u64 {
    let mut predictions = 0u64;
    for seed in 0..seeds {
        let clean = SensorDataset::record_session(
            "walk",
            ActivityKind::Walk,
            PersonProfile::nominal(),
            CHAOS_FRAMES as f64 / SAMPLE_RATE_HZ,
            seed + 500,
        );
        let mut frames = Vec::new();
        for w in &clean.windows {
            frames.extend(window_to_frames(&w.channels, frames.len()));
        }
        let plan = FaultPlan::nasty(seed);
        let serve = |faulted: &[SensorFrame]| {
            let mut device = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).unwrap();
            let preds = device.push_frames(faulted).expect("faulted stream must serve");
            preds
                .iter()
                .map(|p| {
                    assert!(
                        p.raw.confidence.is_finite()
                            && p.raw.distances.iter().all(|d| d.is_finite()),
                        "fault_smoke: non-finite output at chaos seed {seed}"
                    );
                    (
                        p.raw.label.clone(),
                        p.raw.confidence.to_bits(),
                        p.raw.distances.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = serve(&plan.injector().apply(&frames));
        let b = serve(&plan.injector().apply(&frames));
        assert_eq!(a, b, "fault_smoke: chaos seed {seed} did not replay bit-identically");
        predictions += a.len() as u64;
    }
    predictions
}

fn main() {
    let chaos_seeds: u64 = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--chaos-seeds")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--chaos-seeds takes an integer"))
            .unwrap_or(4)
    };

    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 5);
    let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .unwrap();

    // Gate 1: accuracy under frame drop.
    let mut drop_sweep = Vec::new();
    for &rate in DROP_RATES {
        let (windows, accuracy) = accuracy_under_drop(&bundle, rate, 60);
        println!(
            "fault_smoke: drop {:>4.0}% -> {windows} windows, accuracy {:.1}%",
            rate * 100.0,
            accuracy * 100.0
        );
        drop_sweep.push(DropEntry {
            drop_rate: rate,
            windows,
            accuracy,
        });
    }
    let clean_acc = drop_sweep[0].accuracy;
    for entry in &drop_sweep[1..] {
        assert!(
            entry.accuracy >= clean_acc - MAX_ACCURACY_DROP,
            "fault_smoke: accuracy at {:.0}% drop fell from {:.3} to {:.3}",
            entry.drop_rate * 100.0,
            clean_acc,
            entry.accuracy
        );
    }

    // Gate 2: transactional rollback is byte-exact.
    let rollback_ok = check_transactional_rollback(&bundle);
    assert!(rollback_ok, "fault_smoke: rollback left the bundle changed");

    // Gate 3: crash-save. The "new" bundle is the old one after a real
    // committed on-device update, so old != new byte-wise.
    let mut learner = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).unwrap();
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        20.0,
        42,
    );
    learner
        .learn_new_activity("gesture_hi", &recording)
        .expect("learn")
        .committed()
        .expect("learn committed");
    let new_bundle = learner.as_bundle();
    let dir = std::env::temp_dir().join(format!("magneto_fault_smoke_{}", std::process::id()));
    let (torn_ok, complete_ok) = check_crash_save(&bundle, &new_bundle, &dir);
    assert!(torn_ok, "fault_smoke: torn journal corrupted the old bundle");
    assert!(complete_ok, "fault_smoke: complete journal failed to roll forward");

    // Gate 4: chaos sweep.
    let chaos_predictions = chaos_sweep(&bundle, chaos_seeds);
    assert!(chaos_predictions > 0, "chaos sweep served nothing");

    write_report(&FaultReport {
        bench: "fault_smoke".into(),
        drop_sweep,
        rollback_bundle_byte_identical: rollback_ok,
        torn_journal_recovers_old: torn_ok,
        complete_journal_rolls_forward: complete_ok,
        chaos_seeds,
        chaos_predictions,
    });
    println!(
        "fault_smoke OK: rollback byte-exact, crash-save old/new safe, \
         {chaos_predictions} finite predictions across {chaos_seeds} chaos seeds"
    );
}
