//! Quantised execution smoke test (wired into `make check`): measures
//! the int8 inference path against f32 end-to-end and emits
//! machine-readable `BENCH_quant.json`. Gates on three properties:
//!
//! 1. **Agreement** — an int8 device must agree with the f32 device on
//!    ≥ 99% of synthetic eval windows (the deploy-policy acceptance bar).
//! 2. **Determinism** — int8 batched embeddings must be bit-identical
//!    across compute-pool sizes, including fully inline: the i8×i8→i32
//!    kernels accumulate exactly, so any split of the row space commutes.
//! 3. **No regression** — the int8 forward under the installed kernel
//!    plan must not be slower than forced sequential (≥ 1.0× with a
//!    parallel plan; ≥ 0.9× noise floor on a single-thread host).

use magneto_core::{CloudConfig, CloudInitializer, EdgeConfig, EdgeDevice, Precision};
use magneto_nn::{Mlp, QuantizedSiamese, SiameseNetwork};
use magneto_sensors::{GeneratorConfig, SensorDataset};
use magneto_tensor::{install_global, Backend, Exec, KernelPlan, Matrix, SeededRng, Workspace};
use serde::Serialize;
use std::time::Instant;

/// Backbone for the kernel-level sweep — big enough that threading the
/// GEMM matters.
const DIMS: &[usize] = &[80, 512, 256, 128];
const BATCH: usize = 128;
const REPS: usize = 50;
/// Pool sizes for the bit-identity sweep; 0 means fully inline.
const POOL_SWEEP: &[usize] = &[0, 1, 2, 8];

#[derive(Serialize)]
struct SweepEntry {
    threads: usize,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    bit_identical_to_inline: bool,
}

#[derive(Serialize)]
struct QuantReport {
    bench: String,
    plan: String,
    backend: String,
    host_threads: usize,
    eval_windows: usize,
    agreement: f64,
    f32_per_window_ms: f64,
    int8_per_window_ms: f64,
    f32_resident_bytes: usize,
    int8_resident_bytes: usize,
    f32_bundle_bytes: usize,
    int8_bundle_bytes: usize,
    entries: Vec<SweepEntry>,
    gate_speedup: f64,
    gate_threshold: f64,
    /// SIMD backend the host detected, if any (`None` = scalar-only;
    /// the three fields below are `None` exactly when this one is).
    simd_backend: Option<String>,
    /// Forced-SIMD f32 device prediction agreement vs the scalar device.
    simd_f32_agreement: Option<f64>,
    /// Forced-SIMD int8 embeddings bit-identical to scalar (must be
    /// `true`: integer accumulation is exact on every backend).
    simd_int8_bit_identical: Option<bool>,
    /// Forced-SIMD vs scalar int8 embed speedup on this host.
    simd_int8_speedup: Option<f64>,
}

struct Timings {
    min_ms: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn stats(mut ms: Vec<f64>) -> Timings {
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean_ms = ms.iter().sum::<f64>() / ms.len() as f64;
    let pct = |p: f64| ms[((ms.len() - 1) as f64 * p).round() as usize];
    Timings {
        min_ms: ms[0],
        mean_ms,
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// Embed `features` `REPS` times on the given exec; returns the last
/// embedding batch and per-call times.
fn quant_infer_run(net: &QuantizedSiamese, features: &Matrix, exec: Exec) -> (Matrix, Vec<f64>) {
    let mut ws = Workspace::with_exec(exec);
    let mut out = Matrix::default();
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        net.embed_into(features, &mut out, &mut ws).expect("embed");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, times)
}

fn main() {
    let plan = KernelPlan::host_default();
    println!("quant_smoke: host isa {}", Backend::isa_summary());
    println!("quant_smoke: kernel plan [{}]", plan.describe());

    // ---- end-to-end: f32 vs int8 devices from one bundle ---------------
    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 0x51);
    let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .expect("pretrain");
    let f32_bundle_bytes = bundle.to_bytes(false).len();
    let int8_bundle_bytes = bundle.to_bytes(true).len();

    let deploy = |precision| {
        EdgeDevice::deploy(
            bundle.clone(),
            EdgeConfig {
                precision,
                ..EdgeConfig::default()
            },
        )
        .expect("deploy")
    };
    let mut f32_dev = deploy(Precision::F32);
    let mut int8_dev = deploy(Precision::Int8);
    println!(
        "quant_smoke: resident bytes f32 {} / int8 {} ({:.2}x)",
        f32_dev.resident_bytes(),
        int8_dev.resident_bytes(),
        int8_dev.resident_bytes() as f64 / f32_dev.resident_bytes() as f64
    );

    let eval = SensorDataset::generate(
        &GeneratorConfig {
            windows_per_class: 20,
            ..GeneratorConfig::tiny()
        },
        0x52,
    );
    let mut agree = 0usize;
    let (mut f32_ms, mut int8_ms) = (Vec::new(), Vec::new());
    let (mut f32_labels, mut int8_labels) = (Vec::new(), Vec::new());
    for w in &eval.windows {
        let t0 = Instant::now();
        let a = f32_dev.infer_window(&w.channels).expect("f32 infer");
        f32_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let b = int8_dev.infer_window(&w.channels).expect("int8 infer");
        int8_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        if a.label == b.label {
            agree += 1;
        }
        f32_labels.push(a.label);
        int8_labels.push(b.label);
    }
    let agreement = agree as f64 / eval.windows.len() as f64;
    let f32_t = stats(f32_ms);
    let int8_t = stats(int8_ms);
    println!(
        "quant_smoke: agreement {agree}/{} ({:.1}%); per-window f32 {:.3} ms / int8 {:.3} ms",
        eval.windows.len(),
        agreement * 100.0,
        f32_t.mean_ms,
        int8_t.mean_ms
    );
    assert!(
        agreement >= 0.99,
        "int8 agreement {agreement:.3} below the 0.99 gate"
    );

    // ---- kernel-level sweep: bit-identity across pool sizes ------------
    let mut rng = SeededRng::new(0x53);
    let net = SiameseNetwork::new(Mlp::new(DIMS, &mut rng).expect("backbone"), 1.0);
    let qnet = QuantizedSiamese::quantize(&net).expect("quantize");
    let rows: Vec<Vec<f32>> = (0..BATCH)
        .map(|_| (0..DIMS[0]).map(|_| rng.normal()).collect())
        .collect();
    let features = Matrix::from_rows(&rows).expect("features");

    let (inline_emb, inline_times) = quant_infer_run(&qnet, &features, Exec::inline());
    // Gate on best-observed time: the min is robust to scheduler noise
    // and co-running workloads where the mean is not.
    let seq_min = stats(inline_times).min_ms;

    let mut entries = Vec::new();
    for &t in POOL_SWEEP {
        let exec = if t == 0 {
            Exec::inline()
        } else {
            Exec::from_plan(plan.with_threads(t))
        };
        let (emb, times) = quant_infer_run(&qnet, &features, exec);
        let identical = emb == inline_emb;
        assert!(
            identical,
            "int8 embeddings at pool size {t} differ from the inline path"
        );
        let s = stats(times);
        println!(
            "quant_smoke: int8 embed pool {t}: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
            s.mean_ms, s.p50_ms, s.p99_ms
        );
        entries.push(SweepEntry {
            threads: t,
            mean_ms: s.mean_ms,
            p50_ms: s.p50_ms,
            p99_ms: s.p99_ms,
            bit_identical_to_inline: identical,
        });
    }

    // ---- gate: installed plan vs forced sequential on the int8 path ----
    let (plan_emb, plan_times) = quant_infer_run(&qnet, &features, Exec::from_plan(plan));
    assert_eq!(
        plan_emb, inline_emb,
        "int8 embeddings under the installed plan differ from the inline path"
    );
    let gate_speedup = seq_min / stats(plan_times).min_ms;
    let gate_threshold = if plan.threads > 1 { 1.0 } else { 0.9 };
    println!(
        "quant_smoke: installed plan ({} thread(s)) speedup {gate_speedup:.2}x (gate ≥ {gate_threshold:.1}x)",
        plan.threads
    );
    assert!(
        gate_speedup >= gate_threshold,
        "int8 forward under the installed plan regressed: {gate_speedup:.2}x < {gate_threshold:.1}x"
    );

    // ---- forced-SIMD agreement sweep -----------------------------------
    // Devices capture the process-wide Exec when they deploy, so swap a
    // forced-SIMD plan into the global, deploy fresh devices, restore,
    // and compare their predictions against the scalar devices above.
    // Skips gracefully when the host has no SIMD backend.
    let mut simd_backend = None;
    let mut simd_f32_agreement = None;
    let mut simd_int8_bit_identical = None;
    let mut simd_int8_speedup = None;
    if let Some(simd) = Backend::detect_simd() {
        let saved = Exec::global();
        install_global(Exec::from_plan(plan.with_backend(simd)));
        let mut f32_simd = deploy(Precision::F32);
        let mut int8_simd = deploy(Precision::Int8);
        install_global(saved);
        let mut f32_agree = 0usize;
        let mut int8_agree = 0usize;
        for (w, (fl, il)) in eval.windows.iter().zip(f32_labels.iter().zip(&int8_labels)) {
            let a = f32_simd.infer_window(&w.channels).expect("simd f32 infer");
            let b = int8_simd.infer_window(&w.channels).expect("simd int8 infer");
            f32_agree += usize::from(a.label == *fl);
            int8_agree += usize::from(b.label == *il);
        }
        let f32_agreement = f32_agree as f64 / eval.windows.len() as f64;
        println!(
            "quant_smoke: forced-{simd} agreement vs scalar: f32 {f32_agree}/{n}, int8 {int8_agree}/{n}",
            n = eval.windows.len()
        );
        assert!(
            f32_agreement >= 0.99,
            "forced-{simd} f32 agreement {f32_agreement:.3} below the 0.99 gate"
        );
        assert_eq!(
            int8_agree,
            eval.windows.len(),
            "int8 predictions must be identical across backends (exact integer GEMM)"
        );
        // Kernel level: forced-SIMD int8 embeddings must be bit-identical
        // to the inline scalar run.
        let (simd_emb, simd_times) = quant_infer_run(
            &qnet,
            &features,
            Exec::from_plan(plan.with_threads(1).with_backend(simd)),
        );
        let identical = simd_emb == inline_emb;
        assert!(
            identical,
            "forced-{simd} int8 embeddings differ from the scalar inline path"
        );
        let speedup = seq_min / stats(simd_times).min_ms;
        println!("quant_smoke: {simd} int8 embed speedup vs scalar {speedup:.2}x");
        simd_backend = Some(simd.name().to_string());
        simd_f32_agreement = Some(f32_agreement);
        simd_int8_bit_identical = Some(identical);
        simd_int8_speedup = Some(speedup);
    } else {
        println!("quant_smoke: no SIMD backend on this host; skipping forced-SIMD sweep");
    }

    let report = QuantReport {
        bench: "quantized_inference".into(),
        plan: plan.describe(),
        backend: plan.backend.to_string(),
        host_threads: plan.threads,
        eval_windows: eval.windows.len(),
        agreement,
        f32_per_window_ms: f32_t.mean_ms,
        int8_per_window_ms: int8_t.mean_ms,
        f32_resident_bytes: f32_dev.resident_bytes(),
        int8_resident_bytes: int8_dev.resident_bytes(),
        f32_bundle_bytes,
        int8_bundle_bytes,
        entries,
        gate_speedup,
        gate_threshold,
        simd_backend,
        simd_f32_agreement,
        simd_int8_bit_identical,
        simd_int8_speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_quant.json", json).expect("write report");
    println!("quant_smoke: wrote BENCH_quant.json");
    println!(
        "quant_smoke OK: agreement {:.1}%, bit-identical at pool sizes {POOL_SWEEP:?}, gate {gate_speedup:.2}x",
        agreement * 100.0
    );
}
