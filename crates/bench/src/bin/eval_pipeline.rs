//! Experiment F2 — architecture walkthrough (Figure 2).
//!
//! Traces one raw window through every stage of the MAGNETO pipeline,
//! printing shapes, timings and the final decision — the textual
//! equivalent of the paper's architecture diagram.

use magneto_bench::{build_fixture, header, write_json, EvalOptions};
use magneto_core::incremental::ModelState;
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use magneto_tensor::vector::DistanceMetric;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Results {
    denoise_us: f64,
    features_us: f64,
    embed_us: f64,
    ncm_us: f64,
    total_us: f64,
    predicted: String,
    truth: String,
}

fn main() {
    let opts = EvalOptions::parse();
    header("F2", "stage-by-stage pipeline walkthrough", &opts);

    let fx = build_fixture(&opts);
    let state = ModelState::assemble(
        fx.bundle.model.clone(),
        fx.bundle.support_set.clone(),
        fx.bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .expect("assemble");

    // One Run window as the probe.
    let probe = SensorDataset::generate(
        &GeneratorConfig {
            activities: vec![ActivityKind::Run],
            windows_per_class: 1,
            ..GeneratorConfig::base_five(1)
        },
        opts.seed ^ 0x2F2,
    );
    let window = &probe.windows[0];
    println!(
        "  raw window: {} channels x {} samples ({} B), label `{}`",
        window.channels.len(),
        window.len(),
        window.sample_bytes(),
        window.label
    );

    // Stage 1+2: denoise + features (instrument via the pipeline's parts).
    let t0 = Instant::now();
    let denoised: Vec<Vec<f32>> = window
        .channels
        .iter()
        .map(|c| fx.bundle.pipeline.config().denoise.apply(c))
        .collect();
    let denoise_us = t0.elapsed().as_secs_f64() * 1e6;
    println!(
        "  denoise   : median + 45 Hz low-pass          {:>9.1} µs",
        denoise_us
    );

    let t1 = Instant::now();
    let features = fx.bundle.pipeline.process(&denoised).expect("features");
    let features_us = t1.elapsed().as_secs_f64() * 1e6;
    println!(
        "  features  : 80 statistical features           {:>9.1} µs  (dim {})",
        features_us,
        features.len()
    );

    let t2 = Instant::now();
    let embedding = state.model.embed_one(&features).expect("embed");
    let embed_us = t2.elapsed().as_secs_f64() * 1e6;
    println!(
        "  embed     : Siamese FC {:?}  {:>9.1} µs  (dim {})",
        fx.bundle.model.dims(),
        embed_us,
        embedding.len()
    );

    let t3 = Instant::now();
    let decision = state.ncm.classify(&embedding).expect("classify");
    let ncm_us = t3.elapsed().as_secs_f64() * 1e6;
    println!(
        "  NCM       : argmin over {} prototypes          {:>9.1} µs",
        state.ncm.num_classes(),
        ncm_us
    );

    let total = denoise_us + features_us + embed_us + ncm_us;
    println!("\n  decision  : `{}` (confidence {:.1}%)", decision.label, decision.confidence * 100.0);
    println!("  distances :");
    for (label, d) in state.ncm.labels().iter().zip(decision.distances.iter()) {
        println!("    {:<12} {:.4}", label, d);
    }
    println!("  total     : {total:.1} µs end-to-end");

    println!("\npaper-claim (Fig. 2): raw sensors → pre-processing → embedding → NCM, all on-device");
    println!(
        "measured:    `{}` → predicted `{}` in {:.2} ms",
        window.label,
        decision.label,
        total / 1e3
    );

    write_json(
        &opts,
        &Results {
            denoise_us,
            features_us,
            embed_us,
            ncm_us,
            total_us: total,
            predicted: decision.label,
            truth: window.label.clone(),
        },
    );
}
