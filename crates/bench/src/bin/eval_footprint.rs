//! Experiments C2 + C3 — edge memory footprint.
//!
//! C2 (§3.2): "200 observations per class cost roughly 0.5 MB in 32-bit
//! precision". C3 (§4.2): "the entire data size that the demonstration
//! needs on the Edge device (including support set, preprocessing, and
//! the model) does not exceed 5 MB".
//!
//! Measures real serialised bytes of every bundle component, at f32 and
//! int8 precision, across support-set budgets.

use magneto_bench::{build_fixture, header, write_json, EvalOptions};
use magneto_core::{SelectionStrategy, SupportSet};
use magneto_tensor::SeededRng;
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    pipeline_bytes: usize,
    model_bytes_f32: usize,
    model_bytes_i8: usize,
    support_bytes_200_per_class: usize,
    bundle_total_f32: usize,
    bundle_total_i8: usize,
    within_5mb_f32: bool,
    within_5mb_i8: bool,
}

fn main() {
    let opts = EvalOptions::parse();
    header("C2+C3", "edge footprint: support set and full bundle", &opts);

    let fx = build_fixture(&opts);

    // --- C2: support set arithmetic at the paper's budget --------------
    // Build a support set with exactly 200 exemplars/class (80-d f32
    // features), the configuration the paper's 0.5 MB estimate refers to.
    let mut rng = SeededRng::new(opts.seed);
    let mut support = SupportSet::new(200, SelectionStrategy::Random);
    for label in ["drive", "e_scooter", "run", "still", "walk"] {
        let samples: Vec<Vec<f32>> = (0..200).map(|_| vec![0.25f32; 80]).collect();
        support.set_class(label, &samples, &mut rng).expect("fill");
    }
    let support_bytes = support.bytes();
    println!(
        "  C2: 200 obs/class x 5 classes x 80 f32 features = {} B ({:.2} MB)",
        support_bytes,
        support_bytes as f64 / 1e6
    );
    println!("      paper estimate: \"roughly 0.5 MB\" → measured {:.2} MB ✓(same order)",
        support_bytes as f64 / 1e6);

    // --- C3: full bundle ------------------------------------------------
    let f32_report = fx.bundle.size_report(false);
    let i8_report = fx.bundle.size_report(true);
    println!("\n  C3: serialised bundle components");
    println!("      {:<22} {:>12} {:>12}", "component", "f32", "int8");
    println!(
        "      {:<22} {:>12} {:>12}",
        "pipeline", f32_report.pipeline_bytes, i8_report.pipeline_bytes
    );
    println!(
        "      {:<22} {:>12} {:>12}",
        "model", f32_report.model_bytes, i8_report.model_bytes
    );
    println!(
        "      {:<22} {:>12} {:>12}",
        "support set", f32_report.support_set_bytes, i8_report.support_set_bytes
    );
    println!(
        "      {:<22} {:>12} {:>12}",
        "TOTAL (bytes)", f32_report.total_bytes, i8_report.total_bytes
    );
    println!(
        "      {:<22} {:>11.2}M {:>11.2}M",
        "TOTAL (MiB)",
        f32_report.total_mib(),
        i8_report.total_mib()
    );

    println!("\npaper-claim: the entire edge payload does not exceed 5 MB");
    println!(
        "measured:    {:.2} MiB at f32 ({}), {:.2} MiB at int8 ({})",
        f32_report.total_mib(),
        if f32_report.within_5mb() { "< 5 MB ✓" } else { "EXCEEDS 5 MB ✗" },
        i8_report.total_mib(),
        if i8_report.within_5mb() { "< 5 MB ✓" } else { "EXCEEDS 5 MB ✗" },
    );

    write_json(
        &opts,
        &Results {
            pipeline_bytes: f32_report.pipeline_bytes,
            model_bytes_f32: f32_report.model_bytes,
            model_bytes_i8: i8_report.model_bytes,
            support_bytes_200_per_class: support_bytes,
            bundle_total_f32: f32_report.total_bytes,
            bundle_total_i8: i8_report.total_bytes,
            within_5mb_f32: f32_report.within_5mb(),
            within_5mb_i8: i8_report.within_5mb(),
        },
    );
}
