//! Experiment A2 — support-set budget and selection-strategy ablation.
//!
//! §3.2 fixes 200 exemplars/class as the design point. This sweep shows
//! the accuracy-vs-bytes trade-off for budgets 5…300 and compares the
//! three selection strategies (random / herding / reservoir) at a tight
//! budget, where selection quality matters most.

use magneto_bench::{build_fixture, evaluate_device, header, write_json, EvalOptions};
use magneto_core::cloud::CloudInitializer;
use magneto_core::{EdgeConfig, EdgeDevice, SelectionStrategy};
use magneto_sensors::{ActivityKind, PersonProfile, SensorDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    /// (budget, accuracy, bytes, base retention after learning a gesture)
    budget_rows: Vec<(usize, f64, usize, f64)>,
    strategy_rows: Vec<(String, f64)>,
}

fn main() {
    let opts = EvalOptions::parse();
    header("A2", "support-set budget and selection strategy", &opts);

    let fx = build_fixture(&opts);

    println!(
        "{:>8} {:>12} {:>12} {:>22}",
        "budget", "accuracy", "bytes", "retention-after-update"
    );
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        opts.seed ^ 0xA2,
    );
    let base: Vec<&str> = vec!["drive", "e_scooter", "run", "still", "walk"];
    let mut budget_rows = Vec::new();
    for budget in [5usize, 10, 25, 50, 100, 200, 300] {
        let mut cfg = opts.cloud_config();
        cfg.support_budget = budget;
        let (bundle, _) = CloudInitializer::new(cfg)
            .pretrain(&fx.train)
            .expect("pretrain");
        let bytes = bundle.support_set.bytes();
        let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).expect("deploy");
        let acc = evaluate_device(&mut device, &fx.test).accuracy();
        // Mission (ii): the support set is also the replay memory. Learn a
        // gesture and measure how well this budget preserved the base
        // classes.
        device
            .learn_new_activity("gesture_hi", &recording)
            .expect("update")
            .committed()
            .expect("update committed");
        let retention = evaluate_device(&mut device, &fx.test).subset_accuracy(&base);
        println!(
            "{budget:>8} {:>11.1}% {bytes:>12} {:>21.1}%",
            acc * 100.0,
            retention * 100.0
        );
        budget_rows.push((budget, acc, bytes, retention));
    }

    println!("\n  selection strategy at budget 10 (tight):");
    println!("{:>12} {:>12}", "strategy", "accuracy");
    let mut strategy_rows = Vec::new();
    for (name, strategy) in [
        ("random", SelectionStrategy::Random),
        ("herding", SelectionStrategy::Herding),
        ("reservoir", SelectionStrategy::Reservoir),
    ] {
        let mut cfg = opts.cloud_config();
        cfg.support_budget = 10;
        cfg.selection = strategy;
        let (bundle, _) = CloudInitializer::new(cfg)
            .pretrain(&fx.train)
            .expect("pretrain");
        let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).expect("deploy");
        let acc = evaluate_device(&mut device, &fx.test).accuracy();
        println!("{name:>12} {:>11.1}%", acc * 100.0);
        strategy_rows.push((name.to_string(), acc));
    }

    let acc_200 = budget_rows.iter().find(|r| r.0 == 200).map(|r| r.1).unwrap_or(0.0);
    let acc_25 = budget_rows.iter().find(|r| r.0 == 25).map(|r| r.1).unwrap_or(0.0);
    println!("\npaper-claim: a compact support set (200/class ≈ 0.5 MB) suffices for prototypes + replay");
    println!(
        "measured:    accuracy {:.1}% at 200/class; already {:.1}% at 25/class — \
         the budget mainly buys prototype stability",
        acc_200 * 100.0,
        acc_25 * 100.0
    );

    write_json(
        &opts,
        &Results {
            budget_rows,
            strategy_rows,
        },
    );
}
