//! Experiment A4 — why NCM? (§3.1)
//!
//! The paper builds "a nearest class mean (NCM) classifier" over the
//! embedding space rather than a trained classification head. This
//! ablation compares, on frozen embeddings:
//!
//! * **NCM** — one prototype per class, computed from the support set;
//! * **linear softmax head** — trained with cross-entropy on the support
//!   set embeddings.
//!
//! Both see identical data. The comparison covers base-class accuracy
//! *and* the incremental case: adding a class to NCM is one mean
//! computation; the softmax head must be rebuilt with a new output neuron
//! and re-trained.

use magneto_bench::{build_fixture, header, write_json, EvalOptions};
use magneto_core::cloud::featurize;
use magneto_core::incremental::ModelState;
use magneto_nn::loss::softmax_cross_entropy;
use magneto_nn::optimizer::{Adam, Optimizer};
use magneto_nn::Mlp;
use magneto_sensors::{ActivityKind, PersonProfile, SensorDataset};
use magneto_tensor::vector::{argmax, DistanceMetric};
use magneto_tensor::{Matrix, SeededRng};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Results {
    ncm_base_accuracy: f64,
    softmax_base_accuracy: f64,
    ncm_add_class_seconds: f64,
    softmax_add_class_seconds: f64,
    ncm_new_class_accuracy: f64,
    softmax_new_class_accuracy: f64,
}

/// Train a linear softmax head on embeddings.
fn train_head(
    embeddings: &Matrix,
    labels: &[usize],
    classes: usize,
    seed: u64,
) -> Mlp {
    let mut rng = SeededRng::new(seed);
    let mut head = Mlp::new(&[embeddings.cols(), classes], &mut rng).expect("head");
    let mut opt = Adam::new(5e-3);
    for _ in 0..150 {
        let cache = head.forward_cached(embeddings).expect("fwd");
        let (_, grad) = softmax_cross_entropy(&cache.output, labels).expect("ce");
        let grads = head.backward(&cache, &grad).expect("bwd");
        opt.step(&mut head, &grads).expect("step");
    }
    head
}

fn head_accuracy(head: &Mlp, embeddings: &Matrix, labels: &[usize]) -> f64 {
    let logits = head.forward(embeddings).expect("fwd");
    let mut correct = 0;
    for (r, &truth) in labels.iter().enumerate() {
        if argmax(logits.row(r)) == Some(truth) {
            correct += 1;
        }
    }
    correct as f64 / labels.len().max(1) as f64
}

fn main() {
    let opts = EvalOptions::parse();
    header("A4", "NCM vs linear softmax head on frozen embeddings", &opts);

    let fx = build_fixture(&opts);
    let state = ModelState::assemble(
        fx.bundle.model.clone(),
        fx.bundle.support_set.clone(),
        fx.bundle.registry.clone(),
        DistanceMetric::Euclidean,
    )
    .expect("assemble");

    // Frozen embeddings of support (train) and test data.
    let (support_feats, support_labels) = fx
        .bundle
        .support_set
        .training_data(&fx.bundle.registry)
        .expect("support data");
    let support_emb = state.model.embed(&support_feats).expect("embed");
    let (test_feats, test_labels) =
        featurize(&fx.bundle.pipeline, &fx.test, &fx.bundle.registry).expect("featurize");
    let test_emb = state.model.embed(&test_feats).expect("embed");

    // --- Base accuracy ---------------------------------------------------
    let ncm_base = {
        let mut correct = 0;
        for (r, &truth) in test_labels.iter().enumerate() {
            let d = state.ncm.classify(test_emb.row(r)).expect("ncm");
            if fx.bundle.registry.id_of(&d.label) == Some(truth) {
                correct += 1;
            }
        }
        correct as f64 / test_labels.len() as f64
    };
    let head = train_head(&support_emb, &support_labels, 5, opts.seed);
    let softmax_base = head_accuracy(&head, &test_emb, &test_labels);
    println!("  base accuracy:    NCM {:.1}%   softmax head {:.1}%", ncm_base * 100.0, softmax_base * 100.0);

    // --- Incremental: add `gesture_hi` ------------------------------------
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        25.0,
        opts.seed ^ 0xA4,
    );
    let mut registry6 = fx.bundle.registry.clone();
    let new_id = registry6.get_or_insert("gesture_hi");
    let new_feats: Vec<Vec<f32>> = recording
        .windows
        .iter()
        .map(|w| fx.bundle.pipeline.process(&w.channels).expect("process"))
        .collect();
    let new_emb = state
        .model
        .embed(&Matrix::from_rows(&new_feats).expect("rows"))
        .expect("embed");

    // NCM: one prototype insertion.
    let t0 = Instant::now();
    let mut ncm6 = state.ncm.clone();
    ncm6.upsert_prototype("gesture_hi", new_emb.mean_rows().expect("mean"))
        .expect("upsert");
    let ncm_add = t0.elapsed().as_secs_f64();

    // Softmax: rebuild the head with 6 outputs and re-train on everything.
    let t1 = Instant::now();
    let all_emb = support_emb.vstack(&new_emb).expect("stack");
    let mut all_labels = support_labels.clone();
    all_labels.extend(std::iter::repeat_n(new_id, new_emb.rows()));
    let head6 = train_head(&all_emb, &all_labels, 6, opts.seed ^ 1);
    let softmax_add = t1.elapsed().as_secs_f64();

    // New-class accuracy on fresh same-user gesture windows.
    let fresh = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        20.0,
        opts.seed ^ 0xBEE,
    );
    let fresh_feats: Vec<Vec<f32>> = fresh
        .windows
        .iter()
        .map(|w| fx.bundle.pipeline.process(&w.channels).expect("process"))
        .collect();
    let fresh_emb = state
        .model
        .embed(&Matrix::from_rows(&fresh_feats).expect("rows"))
        .expect("embed");
    let ncm_new = {
        let mut correct = 0;
        for r in 0..fresh_emb.rows() {
            if ncm6.classify(fresh_emb.row(r)).expect("ncm").label == "gesture_hi" {
                correct += 1;
            }
        }
        correct as f64 / fresh_emb.rows() as f64
    };
    let softmax_new = head_accuracy(
        &head6,
        &fresh_emb,
        &vec![new_id; fresh_emb.rows()][..],
    );

    println!(
        "  add-class cost:   NCM {:.3} ms (prototype insert)   softmax {:.1} ms (head rebuild + retrain)",
        ncm_add * 1e3,
        softmax_add * 1e3
    );
    println!(
        "  new-class acc:    NCM {:.1}%   softmax head {:.1}%",
        ncm_new * 100.0,
        softmax_new * 100.0
    );

    println!("\npaper-claim (§3.1): an NCM classifier over the embedding space supports");
    println!("             adding classes without retraining the whole model");
    println!(
        "measured:    comparable accuracy (NCM {:.1}% vs softmax {:.1}%), but adding a class \
         costs {:.3} ms vs {:.0} ms",
        ncm_base * 100.0,
        softmax_base * 100.0,
        ncm_add * 1e3,
        softmax_add * 1e3
    );

    write_json(
        &opts,
        &Results {
            ncm_base_accuracy: ncm_base,
            softmax_base_accuracy: softmax_base,
            ncm_add_class_seconds: ncm_add,
            softmax_add_class_seconds: softmax_add,
            ncm_new_class_accuracy: ncm_new,
            softmax_new_class_accuracy: softmax_new,
        },
    );
}
