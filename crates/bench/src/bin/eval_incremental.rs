//! Experiment F3ce — on-device incremental learning of a new activity
//! (Figure 3c–e).
//!
//! Records ~25 s of *Gesture Hi* on the device, updates the model with
//! the joint contrastive + distillation objective, and measures:
//! new-class recall, base-class retention, and update wall-clock time.

use magneto_bench::{build_fixture, deploy, evaluate_device, header, write_json, EvalOptions};
use magneto_sensors::{ActivityKind, GeneratorConfig, PersonProfile, SensorDataset};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Results {
    base_accuracy_before: f64,
    base_accuracy_after: f64,
    new_class_recall: f64,
    update_seconds: f64,
    recording_seconds: f64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("F3ce", "incremental learning of `gesture_hi` on-device", &opts);

    let fx = build_fixture(&opts);
    let mut device = deploy(fx.bundle);

    let before = evaluate_device(&mut device, &fx.test);
    println!(
        "  base accuracy before update: {:.1}%",
        before.accuracy() * 100.0
    );

    // Record 25 s of the gesture (§3.3: "roughly 20-30 seconds").
    let recording_seconds = 25.0;
    let recording = SensorDataset::record_session(
        "gesture_hi",
        ActivityKind::GestureHi,
        PersonProfile::nominal(),
        recording_seconds,
        opts.seed ^ 0xF3CE,
    );
    println!("  recorded {} windows of `gesture_hi`", recording.len());

    let t0 = Instant::now();
    let report = device
        .learn_new_activity("gesture_hi", &recording)
        .expect("incremental update")
        .committed()
        .expect("incremental update committed");
    let update_seconds = t0.elapsed().as_secs_f64();
    println!(
        "  on-device update: {} epochs in {:.2} s; classes now {:?}",
        report.training.epochs_run, update_seconds, report.classes_after
    );

    // Evaluate on base test + fresh gesture windows. The gesture test
    // comes from the same user who recorded it: the demo teaches the
    // device *your* gesture, not the population's.
    let mut full_test = fx.test.clone();
    full_test.extend(SensorDataset::generate_for_person(
        &GeneratorConfig {
            activities: vec![ActivityKind::GestureHi],
            windows_per_class: 30,
            ..GeneratorConfig::base_five(30)
        },
        PersonProfile::nominal(),
        opts.seed ^ 0xBEEF,
    ));
    let after = evaluate_device(&mut device, &full_test);
    println!("\n{}", after.to_table());
    let base_after = after.subset_accuracy(&["drive", "e_scooter", "run", "still", "walk"]);
    let new_recall = after.recall("gesture_hi").unwrap_or(0.0);
    println!(
        "  new-class recall = {:.1}%   base retention = {:.1}% (was {:.1}%)",
        new_recall * 100.0,
        base_after * 100.0,
        before.accuracy() * 100.0
    );
    if let Err(e) = device.privacy_ledger().check_no_uplink() {
        eprintln!("privacy invariant violated: {e}");
        std::process::exit(1);
    }

    println!("\npaper-claim: the model learns a new user activity from a ~20-30 s recording,");
    println!("             on-device, and still recognises the previous activities");
    println!(
        "measured:    new-class recall {:.1}%, base retention {:.1}%, update {:.1} s, 0 B uplink",
        new_recall * 100.0,
        base_after * 100.0,
        update_seconds
    );

    write_json(
        &opts,
        &Results {
            base_accuracy_before: before.accuracy(),
            base_accuracy_after: base_after,
            new_class_recall: new_recall,
            update_seconds,
            recording_seconds,
        },
    );
}
