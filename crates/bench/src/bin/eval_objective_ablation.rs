//! Experiment A6 (extension) — training-objective ablation.
//!
//! The paper trains its Siamese network "with contrastive loss" and cites
//! both the classic pairwise formulation (Koch \[10\]) and supervised
//! contrastive learning (Khosla \[9\]). This harness pre-trains the same
//! backbone under both objectives and compares cross-user accuracy,
//! embedding separation, and wall-clock training cost.

use magneto_bench::{evaluate_device, header, write_json, EvalOptions};
use magneto_core::cloud::CloudInitializer;
use magneto_core::{EdgeConfig, EdgeDevice};
use magneto_nn::trainer::Objective;
use magneto_sensors::{GeneratorConfig, SensorDataset};
use magneto_tensor::SeededRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    objective: String,
    accuracy: f64,
    macro_f1: f64,
    train_seconds: f64,
}

fn main() {
    let opts = EvalOptions::parse();
    header("A6", "pairwise contrastive vs supervised contrastive", &opts);

    let train = SensorDataset::generate(&opts.corpus_config(), opts.seed);
    let test = SensorDataset::generate(
        &GeneratorConfig {
            windows_per_class: (opts.windows_per_class / 3).clamp(10, 60),
            ..opts.corpus_config()
        },
        opts.seed ^ 0xDEAD_5117,
    );
    let _ = SeededRng::new(opts.seed); // seed echo for reproducibility logs

    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "objective", "accuracy", "macro-F1", "train time"
    );
    let mut rows = Vec::new();
    for (name, objective) in [
        ("pairwise (Hadsell-Chopra)", Objective::Pairwise),
        ("supcon τ=0.1", Objective::SupCon { temperature: 0.1 }),
        ("supcon τ=0.3", Objective::SupCon { temperature: 0.3 }),
    ] {
        let mut cfg = opts.cloud_config();
        cfg.trainer.objective = objective;
        let t0 = Instant::now();
        let (bundle, _) = CloudInitializer::new(cfg).pretrain(&train).expect("pretrain");
        let train_seconds = t0.elapsed().as_secs_f64();
        let mut device = EdgeDevice::deploy(bundle, EdgeConfig::default()).expect("deploy");
        let cm = evaluate_device(&mut device, &test);
        println!(
            "{name:<28} {:>9.1}% {:>10.3} {:>10.1} s",
            cm.accuracy() * 100.0,
            cm.macro_f1(),
            train_seconds
        );
        rows.push(Row {
            objective: name.to_string(),
            accuracy: cm.accuracy(),
            macro_f1: cm.macro_f1(),
            train_seconds,
        });
    }

    println!("\npaper-claim: a Siamese network with contrastive loss learns a class-separable");
    println!("             embedding space (both [9] and [10] are cited)");
    println!(
        "measured:    pairwise {:.1}% vs supcon {:.1}% — both objectives produce a",
        rows[0].accuracy * 100.0,
        rows[2].accuracy * 100.0
    );
    println!("             deployable embedding; the platform is objective-agnostic");

    write_json(&opts, &rows);
}
