//! Experiment C1 — "imperceptible prediction latency, which is only a
//! few milliseconds" (§4.2.1).
//!
//! Measures the real wall-clock per-window path (denoise → 80 features →
//! embed → NCM) on this machine, plus the FLOP-model projection onto
//! phone-class hardware.

use magneto_bench::{build_fixture, deploy, header, write_json, EvalOptions};
use magneto_platform::{flops, DeviceModel};
use magneto_sensors::{GeneratorConfig, SensorDataset};
use serde::Serialize;

#[derive(Serialize)]
struct Results {
    host_mean_ms: f64,
    host_p50_ms: f64,
    host_p95_ms: f64,
    host_p99_ms: f64,
    projected_flagship_ms: f64,
    projected_budget_ms: f64,
    projected_wearable_ms: f64,
    windows: usize,
}

fn main() {
    let opts = EvalOptions::parse();
    header("C1", "end-to-end inference latency", &opts);

    let fx = build_fixture(&opts);
    let dims = fx.bundle.model.dims();
    let classes = fx.bundle.registry.len();
    let mut device = deploy(fx.bundle);

    // Warm-up, then measure on a stream of fresh windows.
    let probe = SensorDataset::generate(&GeneratorConfig::base_five(40), opts.seed ^ 0xC1);
    for w in probe.windows.iter().take(20) {
        device.infer_window(&w.channels).expect("warm-up");
    }
    let mut device = deploy(device.as_bundle()); // reset the recorder
    for w in &probe.windows {
        device.infer_window(&w.channels).expect("inference");
    }
    let stats = device.latency_stats();
    println!(
        "  host measurement over {} windows: mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        stats.count,
        stats.mean_us / 1e3,
        stats.p50_us / 1e3,
        stats.p95_us / 1e3,
        stats.p99_us / 1e3
    );

    // FLOP-model projection onto phone hardware.
    let total_flops = flops::inference_flops(&dims, classes, 22, 120);
    println!("\n  per-window inference cost: {} FLOPs", total_flops);
    let mut projected = [0.0f64; 3];
    for (i, dev) in [
        DeviceModel::flagship_phone(),
        DeviceModel::budget_phone(),
        DeviceModel::wearable(),
    ]
    .iter()
    .enumerate()
    {
        let ms = dev.compute_time(total_flops).as_secs_f64() * 1e3;
        projected[i] = ms;
        println!("  projected on {:<16} {:>7.3} ms", dev.name, ms);
    }

    println!("\npaper-claim: prediction latency is only a few milliseconds");
    println!(
        "measured:    host p99 {:.2} ms; projected ≤ {:.2} ms on phone-class hardware",
        stats.p99_us / 1e3,
        projected[1]
    );

    write_json(
        &opts,
        &Results {
            host_mean_ms: stats.mean_us / 1e3,
            host_p50_ms: stats.p50_us / 1e3,
            host_p95_ms: stats.p95_us / 1e3,
            host_p99_ms: stats.p99_us / 1e3,
            projected_flagship_ms: projected[0],
            projected_budget_ms: projected[1],
            projected_wearable_ms: projected[2],
            windows: stats.count,
        },
    );
}
