//! Experiment A8 (extension) — feature-group knockout.
//!
//! §3.2: the paper uses "handcrafted statistic features" and notes that
//! "more advanced feature extractors can be explored … orthogonal to our
//! work". This ablation quantifies the 80-feature table by zeroing groups
//! of features (after normalisation, so a zeroed dimension carries no
//! information) and re-training the same backbone:
//!
//! * all 80 features;
//! * time-domain statistics only (the 72 moment/order features);
//! * accelerometer-derived features only;
//! * spectral + crossing features only (the 8 extended features);
//! * magnitude channels only (orientation-invariant subset).

use magneto_bench::{header, write_json, EvalOptions};
use magneto_core::cloud::featurize;
use magneto_core::ncm::NcmClassifier;
use magneto_core::LabelRegistry;
use magneto_dsp::{FeatureExtractor, PipelineConfig, PreprocessingPipeline};
use magneto_nn::trainer::train_siamese;
use magneto_nn::{Mlp, SiameseNetwork};
use magneto_sensors::{GeneratorConfig, SensorDataset};
use magneto_tensor::vector::DistanceMetric;
use magneto_tensor::{Matrix, SeededRng};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Row {
    group: String,
    active_features: usize,
    accuracy: f64,
}

/// Which feature indices stay active for a named group.
fn group_mask(names: &[String], group: &str) -> Vec<bool> {
    names
        .iter()
        .map(|n| match group {
            "all" => true,
            "time-domain" => !n.contains("dom_freq")
                && !n.contains("spec_entropy")
                && !n.contains("band_")
                && !n.contains("mcr")
                && !n.starts_with("corr."),
            "accel-only" => n.starts_with("accel") || n.starts_with("corr.accel"),
            "extended-only" => {
                n.contains("dom_freq")
                    || n.contains("spec_entropy")
                    || n.contains("band_")
                    || n.contains("mcr")
                    || n.starts_with("corr.")
            }
            "magnitudes-only" => n.contains("_mag."),
            _ => true,
        })
        .collect()
}

fn apply_mask(features: &Matrix, mask: &[bool]) -> Matrix {
    let mut out = features.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for (v, &keep) in row.iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
    }
    out
}

fn main() {
    let opts = EvalOptions::parse();
    header("A8", "feature-group knockout", &opts);

    // Shared pipeline + featurised corpora (masking happens on top).
    let train = SensorDataset::generate(&opts.corpus_config(), opts.seed);
    let test = SensorDataset::generate(
        &GeneratorConfig {
            windows_per_class: (opts.windows_per_class / 3).clamp(10, 60),
            ..opts.corpus_config()
        },
        opts.seed ^ 0xDEAD_5117,
    );
    let mut pipeline = PreprocessingPipeline::new(PipelineConfig::default());
    let refs: Vec<&[Vec<f32>]> = train.windows.iter().map(|w| w.channels.as_slice()).collect();
    pipeline.fit_normalizer(&refs).expect("fit");
    let registry = LabelRegistry::from_labels(train.classes());
    let (train_f, train_l) = featurize(&pipeline, &train, &registry).expect("featurize");
    let (test_f, test_l) = featurize(&pipeline, &test, &registry).expect("featurize");
    let names = FeatureExtractor::feature_names();

    println!(
        "{:<18} {:>16} {:>10}",
        "feature group", "active features", "accuracy"
    );
    let mut rows = Vec::new();
    for group in ["all", "time-domain", "accel-only", "extended-only", "magnitudes-only"] {
        let mask = group_mask(&names, group);
        let active = mask.iter().filter(|&&m| m).count();
        let tr = apply_mask(&train_f, &mask);
        let te = apply_mask(&test_f, &mask);

        let mut cfg = opts.cloud_config();
        cfg.trainer.seed = opts.seed;
        let mut rng = SeededRng::new(opts.seed);
        let mut model = SiameseNetwork::new(
            Mlp::new(&cfg.backbone_dims, &mut rng).expect("net"),
            cfg.margin,
        );
        train_siamese(&mut model, &tr, &train_l, None, &cfg.trainer).expect("train");

        // NCM prototypes from the (masked) training embeddings.
        let emb = model.embed(&tr).expect("embed");
        let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (r, &l) in train_l.iter().enumerate() {
            by_class.entry(l).or_default().push(r);
        }
        let protos: Vec<(String, Vec<f32>)> = by_class
            .iter()
            .map(|(&l, rows)| {
                let sel = emb.select_rows(rows).expect("sel");
                (
                    registry.label_of(l).expect("label").to_string(),
                    sel.mean_rows().expect("mean"),
                )
            })
            .collect();
        let ncm = NcmClassifier::new(DistanceMetric::Euclidean, protos).expect("ncm");

        let test_emb = model.embed(&te).expect("embed");
        let mut correct = 0;
        for (r, &truth) in test_l.iter().enumerate() {
            let label = ncm.classify(test_emb.row(r)).expect("classify").label;
            if registry.id_of(&label) == Some(truth) {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / test_l.len() as f64;
        println!("{group:<18} {active:>16} {:>9.1}%", accuracy * 100.0);
        rows.push(Row {
            group: group.to_string(),
            active_features: active,
            accuracy,
        });
    }

    let all = rows[0].accuracy;
    let mags = rows
        .iter()
        .find(|r| r.group == "magnitudes-only")
        .map(|r| r.accuracy)
        .unwrap_or(0.0);
    println!("\npaper-claim (§3.2): handcrafted statistical features suffice for a");
    println!("             class-separable embedding (extractor choice is orthogonal)");
    println!(
        "measured:    all-80 {:.1}%; orientation-invariant magnitude subset {:.1}% — \
         under cross-user evaluation, axis-specific features carry phone-orientation \
         noise and the invariant subset generalises best",
        all * 100.0,
        mags * 100.0
    );

    write_json(&opts, &rows);
}
