//! Tiered-store scale smoke (wired into `make check`): drive thousands
//! of base+delta sessions — default 10k, `--sessions 100000` for the
//! full bench — through one shared base with Zipf-distributed user
//! popularity, and gate on the tiering contract:
//!
//! 1. resident bytes per user ≤ 0.5× the naive full-resident
//!    per-session footprint (one `EdgeDevice` per user);
//! 2. a paged-out → rehydrated session serves bit-identical
//!    predictions;
//! 3. personalized sessions keep the shared model key (they stay
//!    batchable with base peers);
//! 4. no window lost, nonzero throughput.
//!
//! Emits machine-readable `BENCH_fleet_scale.json` with throughput, p99
//! latency, hot-tier hit rate, and resident-bytes-per-user.

use magneto_core::{CloudConfig, CloudInitializer, EdgeConfig, EdgeDevice, Precision};
use magneto_fleet::{Fleet, FleetConfig, SessionId};
use magneto_sensors::pool::StreamPool;
use magneto_sensors::stream::StreamConfig;
use magneto_sensors::{ActivityKind, GeneratorConfig, SensorDataset};
use magneto_tensor::SeededRng;
use serde::Serialize;
use std::time::{Duration, Instant};

const ZIPF_S: f64 = 1.1;
const CALIBRATE_EVERY: usize = 50; // ~2% of users personalize
const HOT_CAPACITY_PER_SHARD: usize = 512;

#[derive(Serialize)]
struct Report {
    sessions: usize,
    arrivals: usize,
    served: u64,
    throughput_wps: f64,
    p99_latency_us: f64,
    hot_hit_rate: f64,
    rehydrations: u64,
    hot_sessions: usize,
    paged_sessions: usize,
    session_resident_bytes: usize,
    bases_resident_bytes: usize,
    resident_bytes_per_user: f64,
    naive_bytes_per_user: usize,
    resident_vs_naive: f64,
}

fn arg(name: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} takes an integer")))
}

/// Inverse-CDF sampler over ranks weighted `1/rank^s` — the classic
/// Zipf popularity curve: a few users produce most of the traffic, the
/// long tail sleeps (and pages out).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SeededRng) -> usize {
        let u = f64::from(rng.uniform(0.0, 1.0));
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn submit_retrying(fleet: &Fleet, id: SessionId, window: &[Vec<f32>]) {
    loop {
        match fleet.submit(id, window.to_vec()) {
            Ok(_) => return,
            Err(e) => {
                let retry = e
                    .retry_after()
                    .unwrap_or_else(|| panic!("fleet_scale_smoke: submit failed: {e}"));
                std::thread::sleep(retry);
            }
        }
    }
}

fn main() {
    let sessions = arg("--sessions").unwrap_or(10_000) as usize;
    let arrivals = arg("--arrivals").unwrap_or(20_000) as usize;
    let seed = arg("--seed").unwrap_or(42);

    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 5);
    let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .unwrap();
    // The baseline the tier must beat: every user fully resident.
    let naive_per_user = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default())
        .unwrap()
        .resident_bytes();

    let fleet = Fleet::new(FleetConfig {
        workers: 4,
        shards: 4,
        hot_delta_capacity: HOT_CAPACITY_PER_SHARD,
        ..FleetConfig::default()
    })
    .unwrap();
    let spool = std::env::temp_dir().join(format!("magneto_fleet_spool_{}", std::process::id()));
    fleet.set_spool_dir(&spool).unwrap();

    let key = fleet.register_base(&bundle, Precision::F32).unwrap();

    let setup_start = Instant::now();
    let mut ids = Vec::with_capacity(sessions);
    let mut receivers = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let (id, rx) = fleet.register_from_base(key, Precision::F32).unwrap();
        ids.push(id);
        receivers.push(rx);
    }

    // A small pool of distinct sensor windows reused across arrivals —
    // arrival *pattern* is what this smoke stresses, not signal variety.
    let mut pool = StreamPool::new(8, &ActivityKind::BASE_FIVE, 120, StreamConfig::ideal(), seed);
    let window_pool: Vec<Vec<Vec<f32>>> = pool.next_round();
    let calib_windows: Vec<Vec<Vec<f32>>> = pool.next_round();

    // ~2% of users personalize. Their sessions must keep the shared key
    // — personalization overlays the classifier, never the backbone.
    let mut calibrated = 0usize;
    for i in (0..sessions).step_by(CALIBRATE_EVERY) {
        fleet
            .calibrate_session(ids[i], "user_move", &calib_windows[..2])
            .unwrap();
        let k = fleet.session_key(ids[i]).unwrap();
        assert_eq!(k, key, "calibration forked the shared key");
        assert!(!k.is_unique());
        calibrated += 1;
    }
    let setup_s = setup_start.elapsed().as_secs_f64();

    // Zipf-distributed synthetic arrival trace.
    let zipf = Zipf::new(sessions, ZIPF_S);
    let mut rng = SeededRng::new(seed);
    let start = Instant::now();
    for a in 0..arrivals {
        let user = zipf.sample(&mut rng);
        let window = &window_pool[a % window_pool.len()];
        submit_retrying(&fleet, ids[user], window);
    }
    assert!(
        fleet.wait_idle(Duration::from_secs(300)),
        "fleet_scale_smoke: queues did not drain"
    );
    let elapsed = start.elapsed();

    let mut served = 0u64;
    for rx in &receivers {
        for reply in rx.try_iter() {
            reply.outcome.expect("serving error in scale smoke");
            served += 1;
        }
    }
    assert_eq!(served as usize, arrivals, "lost windows");
    let throughput = served as f64 / elapsed.as_secs_f64();
    assert!(throughput > 0.0);

    // Gate: evict → rehydrate is bit-identical, on a *personalized*
    // session (the delta and its overlay must survive the round trip).
    let probe_id = ids[0];
    let probe = &window_pool[0];
    for _ in receivers[0].try_iter() {}
    submit_retrying(&fleet, probe_id, probe);
    assert!(fleet.wait_idle(Duration::from_secs(60)));
    let before = receivers[0]
        .recv_timeout(Duration::from_secs(30))
        .unwrap()
        .outcome
        .unwrap();
    fleet.page_out(probe_id).unwrap();
    submit_retrying(&fleet, probe_id, probe);
    assert!(fleet.wait_idle(Duration::from_secs(60)));
    let after = receivers[0]
        .recv_timeout(Duration::from_secs(30))
        .unwrap()
        .outcome
        .unwrap();
    assert_eq!(before.label, after.label);
    assert_eq!(
        before.confidence.to_bits(),
        after.confidence.to_bits(),
        "rehydrated session not bit-identical"
    );
    assert_eq!(before.distances.len(), after.distances.len());
    for (x, y) in before.distances.iter().zip(&after.distances) {
        assert_eq!(x.to_bits(), y.to_bits(), "rehydrated distances differ");
    }

    let stats = fleet.shard_stats();
    let session_bytes: usize = stats.iter().map(|s| s.resident_bytes).sum();
    let hot: usize = stats.iter().map(|s| s.hot_sessions).sum();
    let paged: usize = stats.iter().map(|s| s.paged_sessions).sum();
    let rehydrations: u64 = stats.iter().map(|s| s.rehydrations).sum();
    let p99 = stats
        .iter()
        .map(|s| s.latency.p99_us)
        .fold(0.0_f64, f64::max);
    let bases_bytes = fleet.bases_resident_bytes();
    let per_user = (session_bytes + bases_bytes) as f64 / sessions as f64;
    let ratio = per_user / naive_per_user as f64;
    // A submit to a hot session is a hit; each rehydration marks one
    // cold arrival.
    let hit_rate = 1.0 - rehydrations as f64 / served as f64;

    // Gate: the tier's whole point. Shared base + compact deltas must
    // undercut half of the naive per-session footprint.
    assert!(
        ratio <= 0.5,
        "resident bytes/user {per_user:.0} is {ratio:.2}x naive ({naive_per_user}); gate is 0.5x"
    );

    let report = Report {
        sessions,
        arrivals,
        served,
        throughput_wps: throughput,
        p99_latency_us: p99,
        hot_hit_rate: hit_rate,
        rehydrations,
        hot_sessions: hot,
        paged_sessions: paged,
        session_resident_bytes: session_bytes,
        bases_resident_bytes: bases_bytes,
        resident_bytes_per_user: per_user,
        naive_bytes_per_user: naive_per_user,
        resident_vs_naive: ratio,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_fleet_scale.json", json).expect("write report");

    println!(
        "fleet_scale_smoke OK: {sessions} sessions ({calibrated} personalized, setup {setup_s:.1}s), \
         {served} windows / {:.2}s = {throughput:.0} w/s, p99 {p99:.0}us, \
         hit rate {:.3}, {hot} hot / {paged} paged, \
         {per_user:.0} B/user vs naive {naive_per_user} B ({:.4}x) -> BENCH_fleet_scale.json",
        elapsed.as_secs_f64(),
        hit_rate,
        ratio
    );
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
}
