//! Continual-learning smoke test (wired into `make check`): drives a
//! class-incremental lifecycle — deploy, learn new gestures, calibrate
//! to an atypical user, then survive concept drift — and gates on the
//! self-healing properties:
//!
//! 1. **Drift recovery** — under a sustained gait change the device's
//!    self-healing loop must commit an automatic recalibration, and the
//!    post-heal accuracy on the drifted distribution must land within
//!    10 points of the pre-drift accuracy.
//! 2. **Transactional recalibration** — with an unattainable replay
//!    floor, every automatic attempt must roll back and leave the
//!    serialized bundle byte-identical; repeated failures must trip the
//!    degraded advisory instead of looping forever.
//! 3. **Privacy** — `check_no_uplink` holds at every step: learning,
//!    calibration, drift detection and recalibration are all on-device.
//! 4. **Chaos stability** — a combined fault + drift plan swept over N
//!    seeds never panics, never emits a non-finite output, and replays
//!    bit-identically (drift statuses and healing counters included).
//!    `make check` sweeps 2 seeds; `make chaos-drift` runs the same
//!    binary with `--drift-seeds 16`.
//!
//! Alongside the gates it reports the standard continual-learning
//! metrics — per-step accuracy matrix, forgetting, backward transfer —
//! plus an open-set rejection-threshold sweep, all emitted as
//! machine-readable `BENCH_continual.json`.

use magneto_bench::evaluate_device;
use magneto_core::drift::DriftStatus;
use magneto_core::{
    CloudConfig, CloudInitializer, EdgeBundle, EdgeConfig, EdgeDevice, SelfHealingConfig,
};
use magneto_sensors::{
    ActivityKind, DriftPlan, FaultPlan, GeneratorConfig, PersonProfile, SensorDataset,
    SensorFrame, SensorStream,
};
use magneto_tensor::SeededRng;
use serde::Serialize;
use std::collections::BTreeMap;

const WINDOW_LEN: usize = 120;
const MAX_ACCURACY_DROP: f64 = 0.10;
const BASE: [&str; 5] = ["drive", "e_scooter", "run", "still", "walk"];
/// Gait-change gain for the recovery scenario: strong enough that the
/// smoothed nearest-prototype distance clears the alert ratio, mild
/// enough that drifted walk windows still classify as walk — so the
/// harvested evidence refreshes the *right* prototype.
const RECOVERY_GAIN: f32 = 1.15;
/// Aggressive gain for the rollback and chaos scenarios, where we only
/// need sustained detection, not label fidelity.
const SEVERE_GAIN: f32 = 1.6;

#[derive(Serialize)]
struct StepRow {
    step: usize,
    action: String,
    /// Per-task accuracy; a task absent from the map was not introduced
    /// yet at this step.
    accuracy: BTreeMap<String, f64>,
}

#[derive(Serialize)]
struct OpenSetReport {
    /// (margin, threshold, known acceptance, novel rejection).
    sweep: Vec<(f64, f64, f64, f64)>,
    chosen_margin: f64,
    post_learning_acceptance: f64,
}

#[derive(Serialize)]
struct DriftRecoveryReport {
    pre_drift_accuracy: f64,
    drifted_accuracy: f64,
    post_heal_accuracy: f64,
    drift_alerts: u64,
    auto_recals: u64,
    recal_rollbacks: u64,
}

#[derive(Serialize)]
struct ContinualReport {
    bench: String,
    steps: Vec<StepRow>,
    /// Task -> step at which it was introduced (step 0 = deploy).
    introduced_at: BTreeMap<String, usize>,
    /// Task -> max historical accuracy minus final accuracy.
    forgetting: BTreeMap<String, f64>,
    /// Task -> final accuracy minus accuracy right after introduction.
    backward_transfer: BTreeMap<String, f64>,
    open_set: OpenSetReport,
    drift_recovery: DriftRecoveryReport,
    rollback_bundle_byte_identical: bool,
    rollback_degraded_advisory: bool,
    drift_seeds: u64,
    drift_predictions: u64,
    no_uplink: bool,
}

fn write_report(report: &ContinualReport) {
    let json = serde_json::to_string_pretty(report).expect("serialize report");
    std::fs::write("BENCH_continual.json", json).expect("write BENCH_continual.json");
}

fn walk_frames(n: usize, seed: u64, person: PersonProfile) -> Vec<SensorFrame> {
    let mut stream = SensorStream::new(
        ActivityKind::Walk.profile(),
        person,
        magneto_sensors::stream::StreamConfig::ideal(),
        SeededRng::new(seed),
    );
    (0..n).map(|_| stream.next().expect("stream frame")).collect()
}

/// Fraction of streamed windows labelled `expect`, with every output
/// checked finite.
fn streamed_accuracy(device: &mut EdgeDevice, frames: &[SensorFrame], expect: &str) -> f64 {
    let preds = device.push_frames(frames).expect("streaming");
    let hits = preds.iter().filter(|p| p.raw.label == expect).count();
    for p in &preds {
        assert!(
            p.raw.confidence.is_finite() && p.raw.distances.iter().all(|d| d.is_finite()),
            "continual_smoke: non-finite streaming output"
        );
    }
    hits as f64 / preds.len().max(1) as f64
}

/// Same-user recording of one activity.
fn recording(kind: ActivityKind, person: PersonProfile, seconds: f64, seed: u64) -> SensorDataset {
    SensorDataset::record_session(kind.label(), kind, person, seconds, seed)
}

/// Per-task test windows for one gesture, from the user who will teach
/// it (personalisation: the device learns *your* gesture).
fn gesture_test(kind: ActivityKind, seed: u64) -> SensorDataset {
    SensorDataset::generate_for_person(
        &GeneratorConfig {
            activities: vec![kind],
            windows_per_class: 12,
            ..GeneratorConfig::tiny()
        },
        PersonProfile::nominal(),
        seed,
    )
}

/// The class-incremental protocol: deploy → learn `gesture_hi` → learn
/// `gesture_circle` → calibrate `walk` to an atypical user. Returns the
/// per-step accuracy matrix plus the final device.
fn class_incremental(
    bundle: &EdgeBundle,
    atypical: PersonProfile,
) -> (Vec<StepRow>, BTreeMap<String, usize>, EdgeDevice) {
    let base_test = SensorDataset::generate(&GeneratorConfig::tiny(), 71);
    let hi_test = gesture_test(ActivityKind::GestureHi, 72);
    let circle_test = gesture_test(ActivityKind::GestureCircle, 73);
    let walk_personal_test = SensorDataset::generate_for_person(
        &GeneratorConfig {
            activities: vec![ActivityKind::Walk],
            windows_per_class: 12,
            ..GeneratorConfig::tiny()
        },
        atypical,
        75,
    );

    let mut union = base_test.clone();
    union.extend(hi_test.clone());
    union.extend(circle_test.clone());

    let mut device = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).expect("deploy");
    let mut introduced_at = BTreeMap::new();
    introduced_at.insert("base".to_string(), 0);
    introduced_at.insert("gesture_hi".to_string(), 1);
    introduced_at.insert("gesture_circle".to_string(), 2);
    introduced_at.insert("walk_personal".to_string(), 3);

    let mut steps = Vec::new();
    let eval = |device: &mut EdgeDevice, step: usize, action: &str| {
        let cm = evaluate_device(device, &union);
        let mut accuracy = BTreeMap::new();
        accuracy.insert("base".to_string(), cm.subset_accuracy(&BASE));
        if step >= 1 {
            accuracy.insert("gesture_hi".to_string(), cm.subset_accuracy(&["gesture_hi"]));
        }
        if step >= 2 {
            accuracy.insert(
                "gesture_circle".to_string(),
                cm.subset_accuracy(&["gesture_circle"]),
            );
        }
        if step >= 3 {
            let pcm = evaluate_device(device, &walk_personal_test);
            accuracy.insert("walk_personal".to_string(), pcm.subset_accuracy(&["walk"]));
        }
        print!("step {step} {action:<24}");
        for (task, acc) in &accuracy {
            print!("  {task} {:.1}%", acc * 100.0);
        }
        println!();
        StepRow {
            step,
            action: action.to_string(),
            accuracy,
        }
    };

    steps.push(eval(&mut device, 0, "deploy"));

    device
        .learn_new_activity(
            "gesture_hi",
            &recording(ActivityKind::GestureHi, PersonProfile::nominal(), 20.0, 81),
        )
        .expect("learn gesture_hi")
        .committed()
        .expect("gesture_hi committed");
    steps.push(eval(&mut device, 1, "learn gesture_hi"));

    device
        .learn_new_activity(
            "gesture_circle",
            &recording(ActivityKind::GestureCircle, PersonProfile::nominal(), 20.0, 82),
        )
        .expect("learn gesture_circle")
        .committed()
        .expect("gesture_circle committed");
    steps.push(eval(&mut device, 2, "learn gesture_circle"));

    device
        .calibrate_activity(
            "walk",
            &recording(ActivityKind::Walk, atypical, 20.0, 83),
        )
        .expect("calibrate walk")
        .committed()
        .expect("walk calibration committed");
    steps.push(eval(&mut device, 3, "calibrate walk (atypical)"));

    device
        .privacy_ledger()
        .check_no_uplink()
        .expect("class-incremental protocol must stay on-device");
    (steps, introduced_at, device)
}

/// Forgetting per task: best historical accuracy minus final accuracy
/// (0 when the final step is the best). Backward transfer: final
/// accuracy minus accuracy at the introduction step.
fn continual_metrics(
    steps: &[StepRow],
    introduced_at: &BTreeMap<String, usize>,
) -> (BTreeMap<String, f64>, BTreeMap<String, f64>) {
    let mut forgetting = BTreeMap::new();
    let mut bwt = BTreeMap::new();
    for (task, &intro) in introduced_at {
        let series: Vec<f64> = steps
            .iter()
            .filter_map(|s| s.accuracy.get(task).copied())
            .collect();
        let (Some(&last), Some(&first)) = (series.last(), series.first()) else {
            continue;
        };
        let best = series.iter().copied().fold(f64::MIN, f64::max);
        forgetting.insert(task.clone(), best - last);
        if intro < steps.len() - 1 {
            bwt.insert(task.clone(), last - first);
        }
    }
    (forgetting, bwt)
}

/// Open-set sweep on a pre-gesture device: acceptance of known base
/// windows vs rejection of the unseen gesture, per margin; then the
/// post-learning acceptance of the gesture under the chosen margin.
fn open_set_sweep(bundle: &EdgeBundle) -> OpenSetReport {
    let mut device = EdgeDevice::deploy(bundle.clone(), EdgeConfig::default()).expect("deploy");
    let known = SensorDataset::generate(&GeneratorConfig::tiny(), 76);
    let novel = gesture_test(ActivityKind::GestureHi, 77);

    let acceptance = |device: &mut EdgeDevice, ds: &SensorDataset, threshold: f32| {
        let accepted = ds
            .windows
            .iter()
            .filter(|w| {
                device
                    .infer_window_open_set(&w.channels, threshold)
                    .expect("open-set inference")
                    .is_some()
            })
            .count();
        accepted as f64 / ds.len().max(1) as f64
    };

    let mut sweep = Vec::new();
    let mut chosen = (0.0f64, f64::MIN);
    println!(
        "{:>8} {:>10} {:>17} {:>16}",
        "margin", "threshold", "known acceptance", "novel rejection"
    );
    for margin in [1.0f32, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let threshold = device
            .rejection_threshold(100.0, margin)
            .expect("rejection threshold");
        assert!(threshold.is_finite(), "non-finite rejection threshold");
        let known_acc = acceptance(&mut device, &known, threshold);
        let novel_rej = 1.0 - acceptance(&mut device, &novel, threshold);
        println!(
            "{margin:>8.1} {threshold:>10.3} {:>16.1}% {:>15.1}%",
            known_acc * 100.0,
            novel_rej * 100.0
        );
        sweep.push((f64::from(margin), f64::from(threshold), known_acc, novel_rej));
        if known_acc + novel_rej > chosen.1 {
            chosen = (f64::from(margin), known_acc + novel_rej);
        }
    }

    device
        .learn_new_activity(
            "gesture_hi",
            &recording(ActivityKind::GestureHi, PersonProfile::nominal(), 20.0, 78),
        )
        .expect("learn")
        .committed()
        .expect("learn committed");
    let threshold = device
        .rejection_threshold(100.0, chosen.0 as f32)
        .expect("threshold");
    let post = acceptance(&mut device, &novel, threshold);
    println!(
        "  margin {:.1}: post-learning gesture acceptance {:.1}%",
        chosen.0,
        post * 100.0
    );
    OpenSetReport {
        sweep,
        chosen_margin: chosen.0,
        post_learning_acceptance: post,
    }
}

/// Gate 1: a sustained-but-mild gait change must be detected, trigger an
/// automatic recalibration that commits through the replay gate, and
/// recover accuracy on the drifted distribution. `person` is the
/// device's owner — the user whose walk the device was calibrated to,
/// and whose gait now changes.
fn drift_recovery(bundle: &EdgeBundle, person: PersonProfile, seed: u64) -> DriftRecoveryReport {
    let config = EdgeConfig {
        healing: Some(SelfHealingConfig {
            // Harvest moderately-confident windows too: under drift the
            // margin shrinks before the label flips.
            min_confidence: 0.2,
            ..SelfHealingConfig::default()
        }),
        ..EdgeConfig::default()
    };
    let mut device = EdgeDevice::deploy(bundle.clone(), config).expect("deploy");

    // Phase A — clean stream: live-baseline calibration + warmup, then
    // the pre-drift reference accuracy.
    device
        .push_frames(&walk_frames(WINDOW_LEN * 8, seed, person))
        .expect("warmup");
    let pre = streamed_accuracy(
        &mut device,
        &walk_frames(WINDOW_LEN * 12, seed + 1, person),
        "walk",
    );

    // Phase B — the user's gait changes and stays changed. One injector
    // across both phases: the ramp completes here, so phase C serves the
    // fully-drifted regime.
    let mut injector = DriftPlan::gait_change(seed + 2, RECOVERY_GAIN, 600).injector();
    let drifted = streamed_accuracy(
        &mut device,
        &injector.apply(&walk_frames(WINDOW_LEN * 30, seed + 3, person)),
        "walk",
    );

    // Phase C — post-heal accuracy on the same drifted distribution.
    let post = streamed_accuracy(
        &mut device,
        &injector.apply(&walk_frames(WINDOW_LEN * 12, seed + 4, person)),
        "walk",
    );

    let stats = device.healing_stats().expect("healing enabled");
    device
        .privacy_ledger()
        .check_no_uplink()
        .expect("self-healing must add zero uplink");
    println!(
        "drift_recovery: pre {:.1}%  drifted {:.1}%  post-heal {:.1}%  \
         (alerts {}, recals {}, rollbacks {})",
        pre * 100.0,
        drifted * 100.0,
        post * 100.0,
        stats.drift_alerts,
        stats.auto_recals,
        stats.recal_rollbacks
    );
    DriftRecoveryReport {
        pre_drift_accuracy: pre,
        drifted_accuracy: drifted,
        post_heal_accuracy: post,
        drift_alerts: stats.drift_alerts,
        auto_recals: stats.auto_recals,
        recal_rollbacks: stats.recal_rollbacks,
    }
}

/// Gate 2: an unattainable replay floor forces every automatic attempt
/// to roll back; the bundle must stay byte-identical and the policy must
/// degrade rather than retry forever.
fn rollback_byte_exact(bundle: &EdgeBundle) -> (bool, bool) {
    let mut config = EdgeConfig::default();
    config.incremental.validation.self_accuracy_floor = 1.5; // unattainable
    config.healing = Some(SelfHealingConfig {
        max_strikes: 2,
        cooldown: 4,
        min_confidence: 0.05,
        ..SelfHealingConfig::default()
    });
    let mut device = EdgeDevice::deploy(bundle.clone(), config).expect("deploy");
    let before = device.as_bundle().to_bytes(false);

    device
        .push_frames(&walk_frames(WINDOW_LEN * 8, 85, PersonProfile::nominal()))
        .expect("warmup");
    let mut injector = DriftPlan::gait_change(86, SEVERE_GAIN, 600).injector();
    device
        .push_frames(&injector.apply(&walk_frames(WINDOW_LEN * 60, 87, PersonProfile::nominal())))
        .expect("drifted stream");

    let stats = device.healing_stats().expect("healing enabled");
    assert_eq!(
        stats.auto_recals, 0,
        "continual_smoke: impossible floor committed a recalibration: {stats:?}"
    );
    assert!(
        stats.recal_rollbacks >= 1,
        "continual_smoke: sustained drift never attempted recalibration: {stats:?}"
    );
    device.privacy_ledger().check_no_uplink().expect("no uplink");
    let byte_identical = before == device.as_bundle().to_bytes(false);
    (byte_identical, stats.degraded)
}

/// Gate 4: combined fault + drift plans over N seeds — never a panic,
/// never a non-finite output, and the whole run (labels, confidences,
/// drift statuses, healing counters) replays bit-identically.
fn drift_chaos_sweep(bundle: &EdgeBundle, seeds: u64) -> u64 {
    let mut predictions = 0u64;
    for seed in 0..seeds {
        let clean = walk_frames(WINDOW_LEN * 20, seed + 900, PersonProfile::nominal());
        let faults = FaultPlan::nasty(seed ^ 0xD41F);
        let drift = DriftPlan::gait_change(seed ^ 0x5EED, SEVERE_GAIN, 400);
        let serve = |frames: &[SensorFrame]| {
            let config = EdgeConfig {
                healing: Some(SelfHealingConfig {
                    min_confidence: 0.05,
                    ..SelfHealingConfig::default()
                }),
                ..EdgeConfig::default()
            };
            let mut device = EdgeDevice::deploy(bundle.clone(), config).expect("deploy");
            let preds = device.push_frames(frames).expect("chaos stream must serve");
            let trace: Vec<_> = preds
                .iter()
                .map(|p| {
                    assert!(
                        p.raw.confidence.is_finite()
                            && p.raw.distances.iter().all(|d| d.is_finite()),
                        "continual_smoke: non-finite output at drift-chaos seed {seed}"
                    );
                    (
                        p.raw.label.clone(),
                        p.raw.confidence.to_bits(),
                        matches!(p.raw.drift, Some(DriftStatus::Drifted { .. })),
                    )
                })
                .collect();
            device.privacy_ledger().check_no_uplink().expect("no uplink");
            (trace, device.healing_stats().expect("healing enabled"))
        };
        // Faults first (the sensor path), then drift (the user): the
        // same composition order both runs.
        let perturbed = drift
            .injector()
            .apply(&faults.injector().apply(&clean));
        let perturbed_again = drift
            .injector()
            .apply(&faults.injector().apply(&clean));
        let a = serve(&perturbed);
        let b = serve(&perturbed_again);
        assert_eq!(
            a, b,
            "continual_smoke: drift-chaos seed {seed} did not replay bit-identically"
        );
        predictions += a.0.len() as u64;
    }
    predictions
}

fn main() {
    let drift_seeds: u64 = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--drift-seeds")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--drift-seeds takes an integer"))
            .unwrap_or(2)
    };

    let corpus = SensorDataset::generate(&GeneratorConfig::tiny(), 70);
    let (bundle, _) = CloudInitializer::new(CloudConfig::fast_demo())
        .pretrain(&corpus)
        .expect("pretrain");

    // Class-incremental protocol + continual metrics. The atypical user
    // is the device's owner from the calibration step onwards.
    let atypical = PersonProfile::sample_atypical(&mut SeededRng::new(74));
    let (steps, introduced_at, device) = class_incremental(&bundle, atypical);
    let (forgetting, backward_transfer) = continual_metrics(&steps, &introduced_at);
    for (task, f) in &forgetting {
        println!(
            "forgetting {task}: {:.1} pts (bwt {})",
            f * 100.0,
            backward_transfer
                .get(task)
                .map_or("n/a".into(), |b| format!("{:+.1} pts", b * 100.0))
        );
    }
    assert!(
        forgetting["base"] <= MAX_ACCURACY_DROP,
        "continual_smoke: base classes forgot {:.1} pts across the protocol",
        forgetting["base"] * 100.0
    );

    // Open-set rejection sweep.
    let open_set = open_set_sweep(&bundle);

    // Gate 1: drift recovery on the device that lived the whole
    // protocol (its snapshot carries the learned gestures and the walk
    // calibration) — it is the atypical owner's gait that changes.
    let lived = device.as_bundle();
    let recovery = drift_recovery(&lived, atypical, 84);
    assert!(
        recovery.drift_alerts >= 1,
        "continual_smoke: gait change never raised a drift alert"
    );
    assert!(
        recovery.auto_recals >= 1,
        "continual_smoke: sustained drift never committed an automatic recalibration"
    );
    assert!(
        recovery.post_heal_accuracy >= recovery.pre_drift_accuracy - MAX_ACCURACY_DROP,
        "continual_smoke: post-heal accuracy {:.3} fell more than {MAX_ACCURACY_DROP} \
         below pre-drift {:.3}",
        recovery.post_heal_accuracy,
        recovery.pre_drift_accuracy
    );

    // Gate 2: byte-exact rollback under an impossible floor.
    let (rollback_ok, degraded) = rollback_byte_exact(&bundle);
    assert!(
        rollback_ok,
        "continual_smoke: rolled-back recalibration mutated the bundle"
    );

    // Gate 4: combined fault + drift chaos sweep.
    let drift_predictions = drift_chaos_sweep(&bundle, drift_seeds);
    assert!(drift_predictions > 0, "drift-chaos sweep served nothing");

    write_report(&ContinualReport {
        bench: "continual_smoke".into(),
        steps,
        introduced_at,
        forgetting,
        backward_transfer,
        open_set,
        drift_recovery: recovery,
        rollback_bundle_byte_identical: rollback_ok,
        rollback_degraded_advisory: degraded,
        drift_seeds,
        drift_predictions,
        no_uplink: true,
    });
    println!(
        "continual_smoke OK: drift recovery within {MAX_ACCURACY_DROP} of pre-drift, \
         rollback byte-exact, no uplink, {drift_predictions} finite predictions \
         across {drift_seeds} drift-chaos seeds"
    );
}
