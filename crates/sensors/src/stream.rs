//! Real-time sensor streaming.
//!
//! The Edge device consumes sensors as a *stream* (§3.3 "reading its
//! sensors and passing the captured measurements sequentially"). This
//! module provides that stream, including the imperfections a real Android
//! sensor service exhibits: timestamp jitter and occasional dropped
//! samples. The DSP segmentation layer must tolerate both.

use crate::activity::MotionProfile;
use crate::channels::{SensorFrame, SAMPLE_RATE_HZ};
use crate::imu::SignalSynthesizer;
use crate::person::PersonProfile;
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Stream timing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Nominal sample rate (Hz).
    pub sample_rate_hz: f64,
    /// Standard deviation of per-sample timestamp jitter (seconds).
    pub jitter_std_s: f64,
    /// Probability that a sample is silently dropped by the sensor service.
    pub dropout_prob: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            sample_rate_hz: SAMPLE_RATE_HZ,
            jitter_std_s: 0.0006, // ~0.6 ms jitter, typical for Android
            dropout_prob: 0.002,
        }
    }
}

impl StreamConfig {
    /// Perfectly regular stream (unit tests, idealised benchmarks).
    pub fn ideal() -> Self {
        StreamConfig {
            sample_rate_hz: SAMPLE_RATE_HZ,
            jitter_std_s: 0.0,
            dropout_prob: 0.0,
        }
    }
}

/// An infinite iterator of sensor frames for one (activity, person) pair.
pub struct SensorStream {
    synth: SignalSynthesizer,
    config: StreamConfig,
    rng: SeededRng,
    tick: u64,
}

impl SensorStream {
    /// Create a stream from a motion profile and user style.
    pub fn new(
        profile: MotionProfile,
        person: PersonProfile,
        config: StreamConfig,
        mut rng: SeededRng,
    ) -> Self {
        let synth_rng = rng.split("synth");
        SensorStream {
            synth: SignalSynthesizer::new(profile, person, synth_rng),
            config,
            rng,
            tick: 0,
        }
    }

    /// Produce the next frame, or `None` if the sensor service dropped it.
    /// (The tick still advances, so dropped samples create real gaps.)
    pub fn poll(&mut self) -> Option<SensorFrame> {
        let nominal_t = self.tick as f64 / self.config.sample_rate_hz;
        self.tick += 1;
        if self.config.dropout_prob > 0.0 && self.rng.chance(self.config.dropout_prob) {
            return None;
        }
        let jitter = if self.config.jitter_std_s > 0.0 {
            f64::from(self.rng.normal_with(0.0, self.config.jitter_std_s as f32))
        } else {
            0.0
        };
        Some(self.synth.frame((nominal_t + jitter).max(0.0)))
    }

    /// Collect the next `seconds` worth of frames (dropped samples simply
    /// missing), as a recording session would.
    pub fn record_seconds(&mut self, seconds: f64) -> Vec<SensorFrame> {
        let n = (seconds * self.config.sample_rate_hz).round() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if let Some(f) = self.poll() {
                out.push(f);
            }
        }
        out
    }

    /// Number of ticks elapsed (including drops).
    pub fn ticks(&self) -> u64 {
        self.tick
    }
}

impl Iterator for SensorStream {
    type Item = SensorFrame;

    /// Infinite stream; skips over dropped samples.
    fn next(&mut self) -> Option<SensorFrame> {
        loop {
            if let Some(f) = self.poll() {
                return Some(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;

    fn stream(config: StreamConfig, seed: u64) -> SensorStream {
        SensorStream::new(
            ActivityKind::Walk.profile(),
            PersonProfile::nominal(),
            config,
            SeededRng::new(seed),
        )
    }

    #[test]
    fn ideal_stream_has_regular_timestamps() {
        let mut s = stream(StreamConfig::ideal(), 1);
        let frames: Vec<SensorFrame> = (0..240).map(|_| s.poll().unwrap()).collect();
        for (i, f) in frames.iter().enumerate() {
            let expected = i as f64 / SAMPLE_RATE_HZ;
            assert!((f.timestamp - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn jitter_perturbs_timestamps_slightly() {
        let cfg = StreamConfig {
            jitter_std_s: 0.001,
            dropout_prob: 0.0,
            ..StreamConfig::default()
        };
        let mut s = stream(cfg, 2);
        let mut any_jitter = false;
        for i in 0..240 {
            let f = s.poll().unwrap();
            let nominal = i as f64 / SAMPLE_RATE_HZ;
            let dev = (f.timestamp - nominal).abs();
            assert!(dev < 0.01, "jitter too large: {dev}");
            if dev > 1e-9 {
                any_jitter = true;
            }
        }
        assert!(any_jitter);
    }

    #[test]
    fn dropout_rate_is_respected() {
        let cfg = StreamConfig {
            jitter_std_s: 0.0,
            dropout_prob: 0.1,
            ..StreamConfig::default()
        };
        let mut s = stream(cfg, 3);
        let n = 10_000;
        let received = (0..n).filter(|_| s.poll().is_some()).count();
        let rate = 1.0 - received as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "dropout rate {rate}");
        assert_eq!(s.ticks(), n as u64);
    }

    #[test]
    fn record_seconds_yields_expected_count() {
        let mut s = stream(StreamConfig::ideal(), 4);
        let frames = s.record_seconds(2.0);
        assert_eq!(frames.len(), 240);
        // With dropout, fewer frames arrive.
        let cfg = StreamConfig {
            dropout_prob: 0.5,
            jitter_std_s: 0.0,
            ..StreamConfig::default()
        };
        let mut lossy = stream(cfg, 4);
        let got = lossy.record_seconds(2.0).len();
        assert!(got < 200 && got > 60, "got {got}");
    }

    #[test]
    fn iterator_skips_drops() {
        let cfg = StreamConfig {
            dropout_prob: 0.5,
            jitter_std_s: 0.0,
            ..StreamConfig::default()
        };
        let s = stream(cfg, 5);
        let frames: Vec<SensorFrame> = s.take(100).collect();
        assert_eq!(frames.len(), 100);
        // Timestamps strictly increase even across gaps.
        for w in frames.windows(2) {
            assert!(w[1].timestamp > w[0].timestamp);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = stream(StreamConfig::default(), 6);
        let mut b = stream(StreamConfig::default(), 6);
        for _ in 0..200 {
            assert_eq!(a.poll(), b.poll());
        }
    }
}
