//! Deterministic fault injection for chaos testing.
//!
//! A real phone's sensor service misbehaves constantly: the HAL drops
//! frames under load, a flaky MEMS die freezes a channel at its last
//! value, an I²C glitch emits NaNs or rails a channel at ±full-scale,
//! and timestamps jitter. MAGNETO's pitch is that inference *and*
//! learning survive on such a device, so the fault model must be a
//! first-class, replayable input — not an afterthought.
//!
//! [`FaultPlan`] describes *which* faults to inject at what rates;
//! [`FaultInjector`] applies a plan to a stream of [`SensorFrame`]s
//! deterministically: the same plan over the same frames produces a
//! bit-identical perturbed stream on every replay, so any chaos failure
//! reproduces from its seed alone. The injector's RNG consumption
//! depends only on the plan and the number of frames seen — never on
//! frame *values* — which keeps replays aligned even when the upstream
//! generator changes.

use crate::channels::{SensorFrame, NUM_CHANNELS};
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Rate and duration of one class of per-channel fault burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Per-frame, per-channel probability that a new burst starts.
    pub prob: f64,
    /// Shortest burst, in frames.
    pub min_len: usize,
    /// Longest burst, in frames (inclusive).
    pub max_len: usize,
}

impl BurstConfig {
    /// A disabled burst class.
    pub fn off() -> Self {
        BurstConfig {
            prob: 0.0,
            min_len: 0,
            max_len: 0,
        }
    }

    /// `true` when this class can never fire.
    pub fn is_off(&self) -> bool {
        self.prob <= 0.0 || self.max_len == 0
    }
}

/// A complete, seeded description of the faults to inject into a sensor
/// stream. Every chaos run is identified by its plan; replaying the same
/// plan yields the same perturbations bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG.
    pub seed: u64,
    /// Per-frame probability that the whole frame is dropped (the sensor
    /// service never delivers it; the gap is real).
    pub drop_prob: f64,
    /// Frozen/stuck channel bursts: the channel repeats its last good
    /// value for the burst duration.
    pub freeze: BurstConfig,
    /// NaN bursts: the channel reads NaN for the burst duration.
    pub nan: BurstConfig,
    /// Saturation bursts: the channel rails at `±saturation_value`.
    pub saturate: BurstConfig,
    /// Rail magnitude for saturation bursts.
    pub saturation_value: f32,
    /// Extra timestamp jitter (standard deviation, seconds) on top of
    /// whatever the stream already exhibits.
    pub jitter_std_s: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (identity transform; still draws from
    /// the RNG so stream alignment matches active plans).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            freeze: BurstConfig::off(),
            nan: BurstConfig::off(),
            saturate: BurstConfig::off(),
            saturation_value: 1.0e7,
            jitter_std_s: 0.0,
        }
    }

    /// Drop-only plan at the given frame-drop rate (the EXPERIMENTS.md
    /// degradation sweep).
    pub fn drops(seed: u64, drop_prob: f64) -> Self {
        FaultPlan {
            drop_prob,
            ..FaultPlan::none(seed)
        }
    }

    /// An aggressive all-faults plan for chaos sweeps: ~2 % frame drops,
    /// frequent freeze/NaN/saturation bursts and 2 ms timestamp jitter.
    pub fn nasty(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.02,
            freeze: BurstConfig {
                prob: 0.002,
                min_len: 4,
                max_len: 40,
            },
            nan: BurstConfig {
                prob: 0.002,
                min_len: 1,
                max_len: 24,
            },
            saturate: BurstConfig {
                prob: 0.002,
                min_len: 1,
                max_len: 24,
            },
            saturation_value: 1.0e7,
            jitter_std_s: 0.002,
        }
    }

    /// Build the injector that applies this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(*self)
    }
}

/// Counts of every fault actually injected so far, per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Frames seen (dropped or delivered).
    pub frames: u64,
    /// Frames dropped outright.
    pub dropped: u64,
    /// Channel-samples replaced by a frozen (stuck-at) value.
    pub frozen_samples: u64,
    /// Channel-samples replaced by NaN.
    pub nan_samples: u64,
    /// Channel-samples railed at ±saturation.
    pub saturated_samples: u64,
}

impl FaultStats {
    /// Total perturbed channel-samples across value-fault classes.
    pub fn faulty_samples(&self) -> u64 {
        self.frozen_samples + self.nan_samples + self.saturated_samples
    }
}

/// Per-channel burst state: frames remaining and the value strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Burst {
    Idle,
    Freeze { left: usize, value: f32 },
    Nan { left: usize },
    Saturate { left: usize, rail: f32 },
}

/// Applies a [`FaultPlan`] to a sequence of frames, deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SeededRng,
    /// Last value delivered per channel (the freeze source).
    last: [f32; NUM_CHANNELS],
    burst: [Burst; NUM_CHANNELS],
    stats: FaultStats,
}

impl FaultInjector {
    /// Fresh injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            rng: SeededRng::new(plan.seed),
            plan,
            last: [0.0; NUM_CHANNELS],
            burst: [Burst::Idle; NUM_CHANNELS],
            stats: FaultStats::default(),
        }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counts so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Draw a burst length in `[min_len, max_len]`.
    fn burst_len(rng: &mut SeededRng, cfg: &BurstConfig) -> usize {
        let span = cfg.max_len.saturating_sub(cfg.min_len) + 1;
        cfg.min_len + rng.index(span.max(1))
    }

    /// Perturb one frame. Returns `None` when the plan drops it (the
    /// caller sees a real gap, exactly like sensor-service dropout).
    pub fn perturb(&mut self, frame: &SensorFrame) -> Option<SensorFrame> {
        self.stats.frames += 1;
        // Drop decision first, one draw per frame, always consumed.
        if self.rng.chance(self.plan.drop_prob) {
            self.stats.dropped += 1;
            return None;
        }
        let mut out = frame.clone();
        if self.plan.jitter_std_s > 0.0 {
            let j = f64::from(self.rng.normal_with(0.0, self.plan.jitter_std_s as f32));
            out.timestamp = (out.timestamp + j).max(0.0);
        }
        for c in 0..NUM_CHANNELS {
            // Maybe start a burst when idle. Draw order is fixed
            // (freeze, nan, saturate) so replays stay aligned.
            if self.burst[c] == Burst::Idle {
                if !self.plan.freeze.is_off() && self.rng.chance(self.plan.freeze.prob) {
                    self.burst[c] = Burst::Freeze {
                        left: Self::burst_len(&mut self.rng, &self.plan.freeze),
                        value: self.last[c],
                    };
                } else if !self.plan.nan.is_off() && self.rng.chance(self.plan.nan.prob) {
                    self.burst[c] = Burst::Nan {
                        left: Self::burst_len(&mut self.rng, &self.plan.nan),
                    };
                } else if !self.plan.saturate.is_off() && self.rng.chance(self.plan.saturate.prob)
                {
                    let sign = if self.rng.chance(0.5) { 1.0 } else { -1.0 };
                    self.burst[c] = Burst::Saturate {
                        left: Self::burst_len(&mut self.rng, &self.plan.saturate),
                        rail: sign * self.plan.saturation_value,
                    };
                }
            }
            // Apply the active burst, if any.
            self.burst[c] = match self.burst[c] {
                Burst::Idle => {
                    self.last[c] = out.values[c];
                    Burst::Idle
                }
                Burst::Freeze { left, value } => {
                    out.values[c] = value;
                    self.stats.frozen_samples += 1;
                    if left > 1 {
                        Burst::Freeze {
                            left: left - 1,
                            value,
                        }
                    } else {
                        Burst::Idle
                    }
                }
                Burst::Nan { left } => {
                    out.values[c] = f32::NAN;
                    self.stats.nan_samples += 1;
                    if left > 1 {
                        Burst::Nan { left: left - 1 }
                    } else {
                        Burst::Idle
                    }
                }
                Burst::Saturate { left, rail } => {
                    out.values[c] = rail;
                    self.stats.saturated_samples += 1;
                    if left > 1 {
                        Burst::Saturate {
                            left: left - 1,
                            rail,
                        }
                    } else {
                        Burst::Idle
                    }
                }
            };
        }
        Some(out)
    }

    /// Perturb a whole recording: dropped frames are simply missing from
    /// the output, exactly as a lossy sensor service would deliver it.
    pub fn apply(&mut self, frames: &[SensorFrame]) -> Vec<SensorFrame> {
        frames.iter().filter_map(|f| self.perturb(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;
    use crate::person::PersonProfile;
    use crate::stream::{SensorStream, StreamConfig};

    fn frames(n: usize, seed: u64) -> Vec<SensorFrame> {
        let mut s = SensorStream::new(
            ActivityKind::Walk.profile(),
            PersonProfile::nominal(),
            StreamConfig::ideal(),
            SeededRng::new(seed),
        );
        (0..n).map(|_| s.next().unwrap()).collect()
    }

    #[test]
    fn replay_is_bit_identical() {
        let input = frames(600, 1);
        let plan = FaultPlan::nasty(42);
        let a = plan.injector().apply(&input);
        let b = plan.injector().apply(&input);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.timestamp.to_bits(), y.timestamp.to_bits());
            for c in 0..NUM_CHANNELS {
                assert_eq!(x.values[c].to_bits(), y.values[c].to_bits(), "channel {c}");
            }
        }
        let mut inj_a = plan.injector();
        let mut inj_b = plan.injector();
        let _ = inj_a.apply(&input);
        let _ = inj_b.apply(&input);
        assert_eq!(inj_a.stats(), inj_b.stats());
    }

    #[test]
    fn none_plan_is_identity() {
        let input = frames(240, 2);
        let out = FaultPlan::none(7).injector().apply(&input);
        assert_eq!(out, input);
        let mut inj = FaultPlan::none(7).injector();
        let _ = inj.apply(&input);
        assert_eq!(inj.stats().faulty_samples(), 0);
        assert_eq!(inj.stats().dropped, 0);
        assert_eq!(inj.stats().frames, 240);
    }

    #[test]
    fn drop_rate_is_respected() {
        let input = frames(8000, 3);
        let mut inj = FaultPlan::drops(9, 0.2).injector();
        let out = inj.apply(&input);
        let rate = 1.0 - out.len() as f64 / input.len() as f64;
        assert!((rate - 0.2).abs() < 0.03, "drop rate {rate}");
        assert_eq!(inj.stats().dropped as usize, input.len() - out.len());
    }

    #[test]
    fn nan_bursts_inject_nans() {
        let input = frames(2000, 4);
        let plan = FaultPlan {
            nan: BurstConfig {
                prob: 0.01,
                min_len: 2,
                max_len: 8,
            },
            ..FaultPlan::none(11)
        };
        let mut inj = plan.injector();
        let out = inj.apply(&input);
        let nans: u64 = out
            .iter()
            .map(|f| f.values.iter().filter(|v| v.is_nan()).count() as u64)
            .sum();
        assert!(nans > 0);
        assert_eq!(nans, inj.stats().nan_samples);
        assert_eq!(inj.stats().frozen_samples, 0);
        assert_eq!(inj.stats().saturated_samples, 0);
    }

    #[test]
    fn freeze_bursts_repeat_last_good_value() {
        let input = frames(4000, 5);
        let plan = FaultPlan {
            freeze: BurstConfig {
                prob: 0.01,
                min_len: 3,
                max_len: 12,
            },
            ..FaultPlan::none(13)
        };
        let mut inj = plan.injector();
        let out = inj.apply(&input);
        assert!(inj.stats().frozen_samples > 0);
        // Frozen samples show up as exact repeats of an earlier value in
        // the same channel: find at least one run of >= 3 identical
        // consecutive samples in some channel (the raw synth makes exact
        // repeats essentially impossible).
        let mut found_run = false;
        for c in 0..NUM_CHANNELS {
            let mut run = 1;
            for w in out.windows(2) {
                if w[0].values[c].to_bits() == w[1].values[c].to_bits() {
                    run += 1;
                    if run >= 3 {
                        found_run = true;
                    }
                } else {
                    run = 1;
                }
            }
        }
        assert!(found_run, "no stuck-channel run found");
    }

    #[test]
    fn saturation_bursts_rail_channels() {
        let input = frames(2000, 6);
        let plan = FaultPlan {
            saturate: BurstConfig {
                prob: 0.01,
                min_len: 1,
                max_len: 6,
            },
            saturation_value: 12345.0,
            ..FaultPlan::none(17)
        };
        let mut inj = plan.injector();
        let out = inj.apply(&input);
        let railed: u64 = out
            .iter()
            .map(|f| {
                f.values
                    .iter()
                    .filter(|v| v.abs() == 12345.0)
                    .count() as u64
            })
            .sum();
        assert!(railed > 0);
        assert_eq!(railed, inj.stats().saturated_samples);
    }

    #[test]
    fn jitter_perturbs_timestamps_only() {
        let input = frames(500, 7);
        let plan = FaultPlan {
            jitter_std_s: 0.005,
            ..FaultPlan::none(19)
        };
        let out = plan.injector().apply(&input);
        assert_eq!(out.len(), input.len());
        let mut moved = 0;
        for (a, b) in input.iter().zip(&out) {
            assert_eq!(a.values, b.values);
            if (a.timestamp - b.timestamp).abs() > 1e-9 {
                moved += 1;
            }
        }
        assert!(moved > input.len() / 2, "only {moved} timestamps jittered");
    }

    #[test]
    fn plan_serde_roundtrip() {
        let plan = FaultPlan::nasty(99);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
