//! # magneto-sensors
//!
//! Synthetic mobile-sensor substrate for the MAGNETO reproduction.
//!
//! The paper pre-trains on a proprietary corpus: "data collection campaigns
//! capturing an initial dataset of more than 100 GB of sensor data …
//! one-second window with roughly 120 sequential measurements from 22
//! mobile sensors" (§4.1.2). That corpus is not available, so this crate
//! *simulates* it with a physics-inspired generator that reproduces the
//! statistical structure every downstream code path depends on:
//!
//! * a 22-channel smartphone sensor suite ([`channels`]) sampled at 120 Hz:
//!   accelerometer, gyroscope, magnetometer, linear acceleration, gravity,
//!   rotation-vector quaternion, barometric pressure, ambient light,
//!   proximity;
//! * per-activity motion models ([`activity`], [`waveform`]) for the five
//!   base classes — *Drive, E-scooter, Run, Still, Walk* — plus custom
//!   gestures used in the incremental-learning demo (*Gesture Hi* et al.);
//! * realistic sensor imperfections ([`noise`]): white + pink noise, bias
//!   random walk, spike artefacts, sample jitter and dropout;
//! * per-user style parameters ([`person`]) — gait frequency/amplitude,
//!   phone orientation, tremor level — which drive the paper's
//!   *calibration* (personalisation) scenario;
//! * real-time streaming ([`stream`]) and offline corpus generation
//!   ([`dataset`]) with train/test splits.
//!
//! The generator is fully deterministic given a seed.

pub mod activity;
pub mod channels;
pub mod dataset;
pub mod drift;
pub mod faults;
pub mod imu;
pub mod noise;
pub mod person;
pub mod pool;
pub mod script;
pub mod stream;
pub mod waveform;

pub use activity::ActivityKind;
pub use channels::{SensorChannel, SensorFrame, NUM_CHANNELS, SAMPLE_RATE_HZ};
pub use dataset::{GeneratorConfig, LabeledWindow, SensorDataset};
pub use drift::{DriftInjector, DriftPlan, DriftStats};
pub use faults::{BurstConfig, FaultInjector, FaultPlan, FaultStats};
pub use person::PersonProfile;
pub use pool::StreamPool;
pub use script::{ScriptStep, SessionScript};
pub use stream::SensorStream;
