//! IMU physics: orientation math and the 22-channel signal synthesiser.
//!
//! The synthesiser combines a [`crate::activity::MotionProfile`]
//! (what the activity does), a [`crate::person::PersonProfile`]
//! (how this user does it) and per-sensor [`crate::noise::NoiseConfig`]s
//! into timestamped [`SensorFrame`]s, respecting the basic physics that tie
//! channels together on a real phone:
//!
//! * `accel = Rᵀ·g + linacc_body` — the accelerometer sees gravity rotated
//!   into the body frame plus linear acceleration;
//! * `gravity` / `linear acceleration` channels are the decomposition
//!   Android's virtual sensors expose;
//! * `mag = Rᵀ·B_earth + disturbance` — the magnetometer sees the Earth
//!   field through the same orientation, plus vehicle-body offsets;
//! * the rotation-vector quaternion is the same orientation again.
//!
//! This cross-channel consistency matters: the DSP feature extractor
//! computes correlations between axes, and a generator that drew each
//! channel independently would hand the classifier unrealistically easy
//! (or impossibly hard) structure.

use crate::activity::MotionProfile;
use crate::channels::{SensorChannel, SensorFrame};
use crate::noise::{NoiseConfig, NoiseGenerator};
use crate::person::PersonProfile;
use crate::waveform::{Drift, Harmonic, HarmonicStack, ImpulseTrain};
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Standard gravity (m/s²).
pub const GRAVITY: f64 = 9.81;

/// Earth magnetic field in the world frame (µT), roughly mid-latitude:
/// north component + downward component.
pub const EARTH_FIELD_UT: [f64; 3] = [22.0, 0.0, -42.0];

/// Standard sea-level pressure (hPa).
pub const BASE_PRESSURE_HPA: f64 = 1013.25;

/// Euler angles (ZYX convention: yaw about z, then pitch about y, then
/// roll about x), radians.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EulerAngles {
    /// Rotation about the body x axis.
    pub roll: f64,
    /// Rotation about the body y axis.
    pub pitch: f64,
    /// Rotation about the body z axis.
    pub yaw: f64,
}

impl EulerAngles {
    /// Rotate a *world-frame* vector into the *body* frame (applies Rᵀ).
    pub fn world_to_body(&self, v: [f64; 3]) -> [f64; 3] {
        // R = Rz(yaw) * Ry(pitch) * Rx(roll); body = Rᵀ * world.
        let (sr, cr) = self.roll.sin_cos();
        let (sp, cp) = self.pitch.sin_cos();
        let (sy, cy) = self.yaw.sin_cos();
        // Rows of Rᵀ are columns of R.
        let r00 = cy * cp;
        let r01 = cy * sp * sr - sy * cr;
        let r02 = cy * sp * cr + sy * sr;
        let r10 = sy * cp;
        let r11 = sy * sp * sr + cy * cr;
        let r12 = sy * sp * cr - cy * sr;
        let r20 = -sp;
        let r21 = cp * sr;
        let r22 = cp * cr;
        [
            r00 * v[0] + r10 * v[1] + r20 * v[2],
            r01 * v[0] + r11 * v[1] + r21 * v[2],
            r02 * v[0] + r12 * v[1] + r22 * v[2],
        ]
    }

    /// Convert to a unit quaternion `(w, x, y, z)`.
    pub fn to_quaternion(&self) -> [f64; 4] {
        let (sr, cr) = (self.roll * 0.5).sin_cos();
        let (sp, cp) = (self.pitch * 0.5).sin_cos();
        let (sy, cy) = (self.yaw * 0.5).sin_cos();
        [
            cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy,
        ]
    }
}

/// Stateful generator producing [`SensorFrame`]s for one
/// (activity, person) pair.
#[derive(Debug)]
pub struct SignalSynthesizer {
    profile: MotionProfile,
    person: PersonProfile,
    // Motion machinery.
    gait_vertical: HarmonicStack,
    gait_horizontal: HarmonicStack,
    impacts: Option<ImpulseTrain>,
    vibration: HarmonicStack,
    sway_x: Drift,
    sway_y: Drift,
    gyro_stack_x: HarmonicStack,
    gyro_stack_y: HarmonicStack,
    gyro_stack_z: HarmonicStack,
    wobble_roll: Drift,
    wobble_pitch: Drift,
    light_drift: Drift,
    // Noise.
    accel_noise: [NoiseGenerator; 3],
    gyro_noise: [NoiseGenerator; 3],
    mag_noise: [NoiseGenerator; 3],
    baro_noise: NoiseGenerator,
    rng: SeededRng,
}

impl SignalSynthesizer {
    /// Build a synthesiser. `rng` seeds every stochastic element, so the
    /// same `(profile, person, seed)` triple replays identically.
    pub fn new(profile: MotionProfile, person: PersonProfile, mut rng: SeededRng) -> Self {
        let freq_scale = person.gait_freq_scale;
        let amp_scale = person.amplitude_scale;
        let phase = person.phase_offset;

        let (gait_vertical, gait_horizontal, impacts) = match profile.gait {
            Some(g) => {
                let f = g.step_freq_hz * freq_scale;
                let vert = HarmonicStack::gait(f, g.vertical_amp * amp_scale, 0.45, 0.18, phase);
                // Horizontal motion leads the vertical by a quarter cycle
                // (arm swing / circular gestures).
                let horiz = HarmonicStack::gait(
                    f,
                    g.horizontal_amp * amp_scale,
                    0.35,
                    0.10,
                    phase + std::f64::consts::FRAC_PI_2,
                );
                let imp = (g.impact_amp > 0.0)
                    .then(|| ImpulseTrain::new(f, g.impact_amp * amp_scale, g.impact_duty));
                (vert, horiz, imp)
            }
            None => (HarmonicStack::new(), HarmonicStack::new(), None),
        };

        let vibration = match profile.vibration {
            Some(v) => HarmonicStack::vibration_band(v.lo_hz, v.hi_hz, v.amp, v.components),
            None => HarmonicStack::new(),
        };

        let seed_phase = f64::from(rng.uniform(0.0, std::f32::consts::TAU));
        let gyro_amp = profile.gyro_amp * amp_scale;
        let gyro_f = profile.gyro_freq_hz * freq_scale;
        let gyro = |axis_scale: f64, ph: f64| {
            HarmonicStack::new()
                .with(Harmonic::new(gyro_f, gyro_amp * axis_scale, phase + ph))
                .with(Harmonic::new(
                    gyro_f * 2.0,
                    gyro_amp * axis_scale * 0.3,
                    phase + ph * 1.3,
                ))
        };

        let noise_scale = person.tremor_scale;
        SignalSynthesizer {
            gait_vertical,
            gait_horizontal,
            impacts,
            vibration,
            sway_x: Drift::new(profile.sway_amp * amp_scale, profile.sway_freq_hz, seed_phase),
            sway_y: Drift::new(
                profile.sway_amp * amp_scale * 0.7,
                profile.sway_freq_hz * 1.31,
                seed_phase + 1.0,
            ),
            gyro_stack_x: gyro(1.0, 0.0),
            gyro_stack_y: gyro(0.7, 1.1),
            gyro_stack_z: gyro(0.45, 2.3),
            wobble_roll: Drift::new(profile.orientation_wobble_rad, 0.35, seed_phase + 2.0),
            wobble_pitch: Drift::new(
                profile.orientation_wobble_rad * 0.8,
                0.27,
                seed_phase + 3.0,
            ),
            light_drift: Drift::new(profile.light_var, 0.05, seed_phase + 4.0),
            accel_noise: [
                NoiseGenerator::new(NoiseConfig::accelerometer().scaled(noise_scale)),
                NoiseGenerator::new(NoiseConfig::accelerometer().scaled(noise_scale)),
                NoiseGenerator::new(NoiseConfig::accelerometer().scaled(noise_scale)),
            ],
            gyro_noise: [
                NoiseGenerator::new(NoiseConfig::gyroscope().scaled(noise_scale)),
                NoiseGenerator::new(NoiseConfig::gyroscope().scaled(noise_scale)),
                NoiseGenerator::new(NoiseConfig::gyroscope().scaled(noise_scale)),
            ],
            mag_noise: [
                NoiseGenerator::new(NoiseConfig::magnetometer().scaled(noise_scale)),
                NoiseGenerator::new(NoiseConfig::magnetometer().scaled(noise_scale)),
                NoiseGenerator::new(NoiseConfig::magnetometer().scaled(noise_scale)),
            ],
            baro_noise: NoiseGenerator::new(NoiseConfig::barometer()),
            profile,
            person,
            rng,
        }
    }

    /// Orientation of the phone at time `t`.
    fn orientation(&self, t: f64) -> EulerAngles {
        EulerAngles {
            roll: self.profile.base_roll_rad
                + self.person.roll_offset_rad
                + self.wobble_roll.eval(t),
            pitch: self.profile.base_pitch_rad
                + self.person.pitch_offset_rad
                + self.wobble_pitch.eval(t),
            yaw: self.person.yaw_offset_rad,
        }
    }

    /// Produce the sensor frame at time `t` seconds.
    pub fn frame(&mut self, t: f64) -> SensorFrame {
        let orient = self.orientation(t);

        // --- linear acceleration in the world frame -------------------
        let vert = self.gait_vertical.eval(t)
            + self.impacts.as_ref().map_or(0.0, |i| i.eval(t))
            + self.vibration.eval(t);
        let horiz_x = self.gait_horizontal.eval(t) + self.sway_x.eval(t);
        let horiz_y = self.sway_y.eval(t) + 0.4 * self.vibration.eval(t + 0.013);
        let lin_world = [horiz_x, horiz_y, vert];

        // --- rotate into the body frame --------------------------------
        let lin_body = orient.world_to_body(lin_world);
        // Accelerometer reads specific force: gravity appears as +g "up".
        let grav_body = orient.world_to_body([0.0, 0.0, GRAVITY]);

        // --- magnetometer ----------------------------------------------
        let mag_body = orient.world_to_body(EARTH_FIELD_UT);
        let mag_dist = self.profile.mag_disturbance_ut;

        // --- gyroscope --------------------------------------------------
        let gyro = [
            self.gyro_stack_x.eval(t),
            self.gyro_stack_y.eval(t),
            self.gyro_stack_z.eval(t),
        ];

        let quat = orient.to_quaternion();

        let mut f = SensorFrame::zeroed(t);
        for axis in 0..3 {
            let an = self.accel_noise[axis].next(&mut self.rng) as f64;
            let gn = self.gyro_noise[axis].next(&mut self.rng) as f64;
            let mn = self.mag_noise[axis].next(&mut self.rng) as f64;
            f.values[SensorChannel::AccelX.index() + axis] =
                (grav_body[axis] + lin_body[axis] + an) as f32;
            f.values[SensorChannel::GyroX.index() + axis] = (gyro[axis] + gn) as f32;
            f.values[SensorChannel::MagX.index() + axis] =
                (mag_body[axis] + mag_dist * 0.6 + mn) as f32;
            f.values[SensorChannel::LinAccX.index() + axis] =
                (lin_body[axis] + an * 0.7) as f32;
            f.values[SensorChannel::GravityX.index() + axis] = grav_body[axis] as f32;
        }
        for (i, q) in quat.iter().enumerate() {
            f.values[SensorChannel::RotW.index() + i] = *q as f32;
        }
        f.set(
            SensorChannel::Pressure,
            (BASE_PRESSURE_HPA
                + self.profile.pressure_trend_hpa_per_s * t
                + self.baro_noise.next(&mut self.rng) as f64) as f32,
        );
        f.set(
            SensorChannel::Light,
            ((self.profile.light_lux + self.light_drift.eval(t)).max(0.0)) as f32,
        );
        let prox = if self.profile.proximity_near { 0.0 } else { 8.0 };
        // Occasional proximity flicker (hand passing over the sensor).
        let flicker = if self.rng.chance(0.002) { 4.0 } else { 0.0 };
        f.set(SensorChannel::Proximity, prox + flicker);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;
    use crate::channels::SAMPLE_RATE_HZ;

    fn synth(kind: ActivityKind, seed: u64) -> SignalSynthesizer {
        SignalSynthesizer::new(kind.profile(), PersonProfile::nominal(), SeededRng::new(seed))
    }

    fn collect_channel(s: &mut SignalSynthesizer, ch: SensorChannel, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| s.frame(i as f64 / SAMPLE_RATE_HZ).get(ch))
            .collect()
    }

    #[test]
    fn identity_orientation_reads_gravity_on_z() {
        let e = EulerAngles::default();
        let g = e.world_to_body([0.0, 0.0, GRAVITY]);
        assert!((g[0]).abs() < 1e-9 && (g[1]).abs() < 1e-9);
        assert!((g[2] - GRAVITY).abs() < 1e-9);
    }

    #[test]
    fn rotation_preserves_norm() {
        let e = EulerAngles {
            roll: 0.4,
            pitch: -1.1,
            yaw: 2.2,
        };
        let v = [1.0, -2.0, 3.0];
        let r = e.world_to_body(v);
        let n0 = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        let n1 = (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt();
        assert!((n0 - n1).abs() < 1e-9);
    }

    #[test]
    fn quaternion_is_unit() {
        let e = EulerAngles {
            roll: 0.3,
            pitch: 0.7,
            yaw: -1.4,
        };
        let q = e.to_quaternion();
        let n: f64 = q.iter().map(|x| x * x).sum();
        assert!((n - 1.0).abs() < 1e-9);
        // Identity rotation -> identity quaternion.
        let qi = EulerAngles::default().to_quaternion();
        assert!((qi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn still_accel_magnitude_near_gravity() {
        let mut s = synth(ActivityKind::Still, 1);
        let n = 240;
        let mags: Vec<f32> = (0..n)
            .map(|i| s.frame(i as f64 / SAMPLE_RATE_HZ).accel_magnitude())
            .collect();
        let mean = mags.iter().sum::<f32>() / n as f32;
        assert!((mean - GRAVITY as f32).abs() < 0.3, "mean |a| = {mean}");
        let std = magneto_tensor::stats::std_dev(&mags);
        assert!(std < 0.3, "still should be quiet, std {std}");
    }

    #[test]
    fn run_is_much_more_energetic_than_walk() {
        let mut walk = synth(ActivityKind::Walk, 2);
        let mut run = synth(ActivityKind::Run, 2);
        let n = 480;
        let w = collect_channel(&mut walk, SensorChannel::LinAccZ, n);
        let r = collect_channel(&mut run, SensorChannel::LinAccZ, n);
        let we = magneto_tensor::stats::energy(&w);
        let re = magneto_tensor::stats::energy(&r);
        assert!(re > we * 3.0, "run energy {re} vs walk {we}");
    }

    #[test]
    fn walk_has_gait_periodicity() {
        let mut s = synth(ActivityKind::Walk, 3);
        let n = 600;
        let z = collect_channel(&mut s, SensorChannel::LinAccZ, n);
        // Autocorrelation at the gait period (~1.9 Hz -> 63 samples)
        // should be clearly positive.
        let lag = (SAMPLE_RATE_HZ / 1.9).round() as usize;
        let ac = magneto_tensor::stats::autocorrelation(&z, lag);
        assert!(ac > 0.4, "gait autocorr {ac}");
    }

    #[test]
    fn drive_mag_disturbed_vs_still() {
        let mut still = synth(ActivityKind::Still, 4);
        let mut drive = synth(ActivityKind::Drive, 4);
        let n = 240;
        let ms = collect_channel(&mut still, SensorChannel::MagX, n);
        let md = collect_channel(&mut drive, SensorChannel::MagX, n);
        let still_mean = magneto_tensor::stats::mean(&ms);
        let drive_mean = magneto_tensor::stats::mean(&md);
        assert!(
            (drive_mean - still_mean).abs() > 3.0,
            "drive {drive_mean} vs still {still_mean}"
        );
    }

    #[test]
    fn stairs_pressure_falls() {
        let mut s = synth(ActivityKind::StairsUp, 5);
        let p0 = s.frame(0.0).get(SensorChannel::Pressure);
        let p60 = s.frame(60.0).get(SensorChannel::Pressure);
        assert!(p60 < p0 - 1.0, "pressure should fall: {p0} -> {p60}");
    }

    #[test]
    fn pocket_activities_have_near_proximity() {
        let mut walk = synth(ActivityKind::Walk, 6);
        let mut drive = synth(ActivityKind::Drive, 6);
        // Use many frames and medians: the proximity channel can flicker.
        let w = collect_channel(&mut walk, SensorChannel::Proximity, 100);
        let d = collect_channel(&mut drive, SensorChannel::Proximity, 100);
        assert!(magneto_tensor::stats::median(&w) < 1.0);
        assert!(magneto_tensor::stats::median(&d) > 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = synth(ActivityKind::Run, 7);
        let mut b = synth(ActivityKind::Run, 7);
        for i in 0..100 {
            let t = i as f64 / SAMPLE_RATE_HZ;
            assert_eq!(a.frame(t), b.frame(t));
        }
    }

    #[test]
    fn person_changes_the_signal() {
        let mut rng = SeededRng::new(8);
        let person = PersonProfile::sample_atypical(&mut rng);
        let mut nominal = synth(ActivityKind::Walk, 9);
        let mut styled = SignalSynthesizer::new(
            ActivityKind::Walk.profile(),
            person,
            SeededRng::new(9),
        );
        let a = collect_channel(&mut nominal, SensorChannel::AccelZ, 240);
        let b = collect_channel(&mut styled, SensorChannel::AccelZ, 240);
        let diff: f32 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff / 240.0 > 0.1, "atypical user should shift the signal");
    }

    #[test]
    fn gravity_channels_consistent_with_accel_at_rest() {
        let mut s = synth(ActivityKind::Still, 10);
        let f = s.frame(0.5);
        // accel ≈ gravity + linacc; for Still, linacc is small.
        for axis in 0..3 {
            let acc = f.values[SensorChannel::AccelX.index() + axis];
            let grav = f.values[SensorChannel::GravityX.index() + axis];
            assert!((acc - grav).abs() < 0.5, "axis {axis}: {acc} vs {grav}");
        }
    }
}
