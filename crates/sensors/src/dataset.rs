//! Labelled corpus generation — the stand-in for the paper's data
//! collection campaigns.
//!
//! §4.1.2: "We have launched data collection campaigns, capturing an
//! initial dataset of more than 100 GB of sensor data. We split the
//! sensory data into a one-second window with roughly 120 sequential
//! measurements from 22 mobile sensors … five activities with ~200k
//! records". This module reproduces the *shape* of that corpus at
//! configurable scale: many users, many sessions per activity, one-second
//! raw windows.

use crate::activity::ActivityKind;
use crate::channels::{SensorFrame, NUM_CHANNELS, SAMPLE_RATE_HZ};
use crate::person::PersonProfile;
use crate::stream::{SensorStream, StreamConfig};
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A raw, labelled one-second window: `channels[c][i]` is sample `i` of
/// channel `c` (22 channels × ~120 samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledWindow {
    /// Class label (an [`ActivityKind::label`] string or a custom name).
    pub label: String,
    /// Channel-major sample matrix.
    pub channels: Vec<Vec<f32>>,
}

impl LabeledWindow {
    /// Build a window from consecutive frames.
    pub fn from_frames(label: impl Into<String>, frames: &[SensorFrame]) -> Self {
        let mut channels: Vec<Vec<f32>> = (0..NUM_CHANNELS)
            .map(|_| Vec::with_capacity(frames.len()))
            .collect();
        for f in frames {
            for (c, chan) in channels.iter_mut().enumerate() {
                chan.push(f.values[c]);
            }
        }
        LabeledWindow {
            label: label.into(),
            channels,
        }
    }

    /// Samples per channel.
    pub fn len(&self) -> usize {
        self.channels.first().map_or(0, Vec::len)
    }

    /// `true` when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-memory size of the raw samples in bytes (f32).
    pub fn sample_bytes(&self) -> usize {
        self.channels.iter().map(|c| c.len() * 4).sum()
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Activities to include.
    pub activities: Vec<ActivityKind>,
    /// Windows generated per activity.
    pub windows_per_class: usize,
    /// Samples per window ("roughly 120").
    pub window_len: usize,
    /// Distinct simulated users contributing sessions.
    pub users: usize,
    /// Consecutive windows drawn from one (user, session) recording.
    pub windows_per_session: usize,
    /// Stream timing imperfections.
    pub stream: StreamConfig,
}

impl GeneratorConfig {
    /// The paper's base corpus shape (five classes), at a configurable
    /// per-class size.
    pub fn base_five(windows_per_class: usize) -> Self {
        GeneratorConfig {
            activities: ActivityKind::BASE_FIVE.to_vec(),
            windows_per_class,
            window_len: 120,
            users: 12,
            windows_per_session: 10,
            stream: StreamConfig::default(),
        }
    }

    /// Tiny corpus for unit tests.
    pub fn tiny() -> Self {
        GeneratorConfig {
            activities: ActivityKind::BASE_FIVE.to_vec(),
            windows_per_class: 12,
            window_len: 120,
            users: 3,
            windows_per_session: 4,
            stream: StreamConfig::ideal(),
        }
    }
}

/// A labelled corpus of raw windows.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SensorDataset {
    /// All windows, unordered.
    pub windows: Vec<LabeledWindow>,
}

impl SensorDataset {
    /// Generate a corpus from a population of simulated users.
    pub fn generate(config: &GeneratorConfig, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        // A fixed user pool shared across activities, as in a real
        // collection campaign.
        let users: Vec<PersonProfile> = (0..config.users.max(1))
            .map(|_| PersonProfile::sample(&mut rng))
            .collect();
        let mut windows = Vec::with_capacity(config.activities.len() * config.windows_per_class);
        for kind in &config.activities {
            let mut produced = 0;
            while produced < config.windows_per_class {
                let user = users[rng.index(users.len())];
                let take = config
                    .windows_per_session
                    .min(config.windows_per_class - produced)
                    .max(1);
                windows.extend(Self::session_windows(
                    kind.label(),
                    kind.profile(),
                    user,
                    take,
                    config.window_len,
                    config.stream,
                    rng.split("session"),
                ));
                produced += take;
            }
        }
        SensorDataset { windows }
    }

    /// Generate a corpus for one specific user (used by personalisation
    /// experiments: this user's data never reaches the Cloud).
    pub fn generate_for_person(
        config: &GeneratorConfig,
        person: PersonProfile,
        seed: u64,
    ) -> Self {
        let mut rng = SeededRng::new(seed);
        let mut windows = Vec::new();
        for kind in &config.activities {
            let mut produced = 0;
            while produced < config.windows_per_class {
                let take = config
                    .windows_per_session
                    .min(config.windows_per_class - produced)
                    .max(1);
                windows.extend(Self::session_windows(
                    kind.label(),
                    kind.profile(),
                    person,
                    take,
                    config.window_len,
                    config.stream,
                    rng.split("session"),
                ));
                produced += take;
            }
        }
        SensorDataset { windows }
    }

    /// One continuous recording chopped into consecutive windows.
    fn session_windows(
        label: &str,
        profile: crate::activity::MotionProfile,
        person: PersonProfile,
        count: usize,
        window_len: usize,
        stream_cfg: StreamConfig,
        rng: SeededRng,
    ) -> Vec<LabeledWindow> {
        let mut stream = SensorStream::new(profile, person, stream_cfg, rng);
        let mut out = Vec::with_capacity(count);
        let mut buf: Vec<SensorFrame> = Vec::with_capacity(window_len);
        while out.len() < count {
            // Iterator::next skips dropped samples, so windows are always
            // full length.
            if let Some(f) = stream.next() {
                buf.push(f);
                if buf.len() == window_len {
                    out.push(LabeledWindow::from_frames(label, &buf));
                    buf.clear();
                }
            }
        }
        out
    }

    /// Record one continuous session of `seconds` for a single activity,
    /// windowed — how the demo captures a new gesture (§3.3 step 1,
    /// "roughly 20-30 seconds of recording").
    pub fn record_session(
        label: &str,
        kind: ActivityKind,
        person: PersonProfile,
        seconds: f64,
        seed: u64,
    ) -> Self {
        let window_len = 120usize;
        let count = ((seconds * SAMPLE_RATE_HZ) as usize) / window_len;
        let windows = Self::session_windows(
            label,
            kind.profile(),
            person,
            count.max(1),
            window_len,
            StreamConfig::default(),
            SeededRng::new(seed),
        );
        SensorDataset { windows }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// `true` when the dataset holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Sorted distinct class labels.
    pub fn classes(&self) -> Vec<String> {
        let mut set: Vec<String> = self
            .windows
            .iter()
            .map(|w| w.label.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        set
    }

    /// Windows per class.
    pub fn class_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for w in &self.windows {
            *counts.entry(w.label.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Shuffle and split into (train, test) with `train_frac` of each
    /// class in train (stratified).
    pub fn split(&self, train_frac: f64, rng: &mut SeededRng) -> (SensorDataset, SensorDataset) {
        let mut by_class: BTreeMap<&str, Vec<&LabeledWindow>> = BTreeMap::new();
        for w in &self.windows {
            by_class.entry(w.label.as_str()).or_default().push(w);
        }
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (_, mut ws) in by_class {
            rng.shuffle(&mut ws);
            let k = ((ws.len() as f64) * train_frac).round() as usize;
            for (i, w) in ws.into_iter().enumerate() {
                if i < k {
                    train.push(w.clone());
                } else {
                    test.push(w.clone());
                }
            }
        }
        (SensorDataset { windows: train }, SensorDataset { windows: test })
    }

    /// Merge another dataset into this one.
    pub fn extend(&mut self, other: SensorDataset) {
        self.windows.extend(other.windows);
    }

    /// Total raw sample bytes (f32), for corpus-scale reporting.
    pub fn sample_bytes(&self) -> usize {
        self.windows.iter().map(LabeledWindow::sample_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_from_frames_transposes() {
        let mut f0 = SensorFrame::zeroed(0.0);
        let mut f1 = SensorFrame::zeroed(0.01);
        f0.values[3] = 1.0;
        f1.values[3] = 2.0;
        let w = LabeledWindow::from_frames("walk", &[f0, f1]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.channels.len(), NUM_CHANNELS);
        assert_eq!(w.channels[3], vec![1.0, 2.0]);
        assert_eq!(w.sample_bytes(), NUM_CHANNELS * 2 * 4);
        assert!(!w.is_empty());
    }

    #[test]
    fn generate_has_requested_shape() {
        let cfg = GeneratorConfig::tiny();
        let ds = SensorDataset::generate(&cfg, 1);
        assert_eq!(ds.len(), 5 * cfg.windows_per_class);
        let counts = ds.class_counts();
        assert_eq!(counts.len(), 5);
        for (_, c) in counts {
            assert_eq!(c, cfg.windows_per_class);
        }
        for w in &ds.windows {
            assert_eq!(w.channels.len(), NUM_CHANNELS);
            assert_eq!(w.len(), cfg.window_len);
        }
    }

    #[test]
    fn classes_are_sorted_labels() {
        let ds = SensorDataset::generate(&GeneratorConfig::tiny(), 2);
        assert_eq!(
            ds.classes(),
            vec!["drive", "e_scooter", "run", "still", "walk"]
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::tiny();
        let a = SensorDataset::generate(&cfg, 3);
        let b = SensorDataset::generate(&cfg, 3);
        assert_eq!(a.windows, b.windows);
        let c = SensorDataset::generate(&cfg, 4);
        assert_ne!(a.windows, c.windows);
    }

    #[test]
    fn split_is_stratified() {
        let cfg = GeneratorConfig::tiny();
        let ds = SensorDataset::generate(&cfg, 5);
        let mut rng = SeededRng::new(5);
        let (train, test) = ds.split(0.75, &mut rng);
        assert_eq!(train.len() + test.len(), ds.len());
        for (_, c) in train.class_counts() {
            assert_eq!(c, 9); // 75% of 12
        }
        for (_, c) in test.class_counts() {
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn record_session_duration() {
        let ds = SensorDataset::record_session(
            "gesture_hi",
            ActivityKind::GestureHi,
            PersonProfile::nominal(),
            25.0,
            6,
        );
        // 25 s at 120 Hz, 120-sample windows -> 25 windows.
        assert_eq!(ds.len(), 25);
        assert!(ds.windows.iter().all(|w| w.label == "gesture_hi"));
        // A degenerate duration still yields at least one window.
        let tiny = SensorDataset::record_session(
            "x",
            ActivityKind::Still,
            PersonProfile::nominal(),
            0.1,
            6,
        );
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn extend_merges() {
        let mut a = SensorDataset::generate(&GeneratorConfig::tiny(), 7);
        let n = a.len();
        let b = SensorDataset::record_session(
            "jump",
            ActivityKind::Jump,
            PersonProfile::nominal(),
            5.0,
            7,
        );
        let bn = b.len();
        a.extend(b);
        assert_eq!(a.len(), n + bn);
        assert!(a.classes().contains(&"jump".to_string()));
    }

    #[test]
    fn personal_dataset_differs_from_population() {
        let cfg = GeneratorConfig {
            activities: vec![ActivityKind::Walk],
            windows_per_class: 4,
            ..GeneratorConfig::tiny()
        };
        let mut rng = SeededRng::new(8);
        let person = PersonProfile::sample_atypical(&mut rng);
        let pop = SensorDataset::generate(&cfg, 9);
        let personal = SensorDataset::generate_for_person(&cfg, person, 9);
        assert_eq!(pop.len(), personal.len());
        assert_ne!(pop.windows, personal.windows);
    }

    #[test]
    fn corpus_scale_matches_paper_arithmetic() {
        // Sanity-check the paper's corpus arithmetic at miniature scale:
        // each window is 22 channels x 120 samples x 4 bytes ≈ 10.5 KB,
        // so ~200k windows ≈ 2.1 GB of windowed f32 data (the 100 GB
        // figure includes raw, unsegmented multi-rate captures).
        let w = LabeledWindow::from_frames(
            "x",
            &vec![SensorFrame::zeroed(0.0); 120],
        );
        assert_eq!(w.sample_bytes(), 22 * 120 * 4);
    }
}
