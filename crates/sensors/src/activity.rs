//! Activity taxonomy and per-activity motion profiles.
//!
//! The paper's base set (§4.1.2): *Drive, E-scooter, Run, Still, Walk*.
//! The demo (§4.2.2) additionally records custom user gestures such as
//! *Gesture Hi*. Each activity is described by a [`MotionProfile`] — the
//! parameter bundle the signal synthesiser in [`crate::imu`] turns into
//! 22-channel sensor frames.
//!
//! Profile values are chosen so the classes have the same *relative*
//! structure as real HAR data: Still and Drive are near-twins at low
//! frequencies (Drive separated mainly by engine vibration and
//! magnetometer disturbance), Walk and Run share a gait signature and
//! differ in cadence/energy, and E-scooter sits between Drive and Walk.

use serde::{Deserialize, Serialize};

/// Built-in activity kinds: the five base classes plus custom gestures the
/// demo teaches on-device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Riding in / driving a car.
    Drive,
    /// Riding a stand-up electric scooter.
    EScooter,
    /// Running.
    Run,
    /// Phone at rest (table, idle pocket).
    Still,
    /// Walking.
    Walk,
    /// Greeting hand-wave (the demo's on-device new activity).
    GestureHi,
    /// Circular arm motion (second custom gesture).
    GestureCircle,
    /// Repeated vertical jumps (third custom gesture).
    Jump,
    /// Climbing stairs (extension activity with a pressure trend).
    StairsUp,
}

impl ActivityKind {
    /// The paper's five pre-training classes, in canonical order.
    pub const BASE_FIVE: [ActivityKind; 5] = [
        ActivityKind::Drive,
        ActivityKind::EScooter,
        ActivityKind::Run,
        ActivityKind::Still,
        ActivityKind::Walk,
    ];

    /// Custom activities used in incremental-learning scenarios.
    pub const GESTURES: [ActivityKind; 4] = [
        ActivityKind::GestureHi,
        ActivityKind::GestureCircle,
        ActivityKind::Jump,
        ActivityKind::StairsUp,
    ];

    /// Stable label string (used as the class key throughout the platform).
    pub fn label(&self) -> &'static str {
        match self {
            ActivityKind::Drive => "drive",
            ActivityKind::EScooter => "e_scooter",
            ActivityKind::Run => "run",
            ActivityKind::Still => "still",
            ActivityKind::Walk => "walk",
            ActivityKind::GestureHi => "gesture_hi",
            ActivityKind::GestureCircle => "gesture_circle",
            ActivityKind::Jump => "jump",
            ActivityKind::StairsUp => "stairs_up",
        }
    }

    /// Parse a label produced by [`ActivityKind::label`].
    pub fn from_label(label: &str) -> Option<ActivityKind> {
        match label {
            "drive" => Some(ActivityKind::Drive),
            "e_scooter" => Some(ActivityKind::EScooter),
            "run" => Some(ActivityKind::Run),
            "still" => Some(ActivityKind::Still),
            "walk" => Some(ActivityKind::Walk),
            "gesture_hi" => Some(ActivityKind::GestureHi),
            "gesture_circle" => Some(ActivityKind::GestureCircle),
            "jump" => Some(ActivityKind::Jump),
            "stairs_up" => Some(ActivityKind::StairsUp),
            _ => None,
        }
    }

    /// The motion profile driving signal synthesis for this activity.
    pub fn profile(&self) -> MotionProfile {
        match self {
            ActivityKind::Still => MotionProfile {
                name: "still",
                gait: None,
                vibration: None,
                sway_amp: 0.01,
                sway_freq_hz: 0.08,
                gyro_amp: 0.008,
                gyro_freq_hz: 0.3,
                orientation_wobble_rad: 0.01,
                base_pitch_rad: 0.1,
                base_roll_rad: 0.05,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 250.0,
                light_var: 10.0,
                proximity_near: false,
                mag_disturbance_ut: 0.0,
            },
            ActivityKind::Walk => MotionProfile {
                name: "walk",
                gait: Some(GaitParams {
                    step_freq_hz: 1.9,
                    vertical_amp: 1.6,
                    horizontal_amp: 0.8,
                    impact_amp: 1.2,
                    impact_duty: 0.25,
                }),
                vibration: None,
                sway_amp: 0.3,
                sway_freq_hz: 0.4,
                gyro_amp: 0.5,
                gyro_freq_hz: 1.9,
                orientation_wobble_rad: 0.12,
                base_pitch_rad: 1.2, // phone in trouser pocket, mostly vertical
                base_roll_rad: 0.2,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 40.0,
                light_var: 15.0,
                proximity_near: true,
                mag_disturbance_ut: 0.0,
            },
            ActivityKind::Run => MotionProfile {
                name: "run",
                gait: Some(GaitParams {
                    step_freq_hz: 2.6,
                    vertical_amp: 3.4,
                    horizontal_amp: 1.6,
                    impact_amp: 4.2,
                    impact_duty: 0.18,
                }),
                vibration: None,
                sway_amp: 0.6,
                sway_freq_hz: 0.5,
                gyro_amp: 1.6,
                gyro_freq_hz: 2.8,
                orientation_wobble_rad: 0.25,
                base_pitch_rad: 1.2,
                base_roll_rad: 0.25,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 400.0,
                light_var: 150.0,
                proximity_near: true,
                mag_disturbance_ut: 0.0,
            },
            ActivityKind::Drive => MotionProfile {
                name: "drive",
                gait: None,
                vibration: Some(VibrationParams {
                    lo_hz: 22.0,
                    hi_hz: 38.0,
                    amp: 0.16,
                    components: 6,
                }),
                sway_amp: 0.5, // braking/cornering at very low frequency
                sway_freq_hz: 0.15,
                gyro_amp: 0.05,
                gyro_freq_hz: 0.2,
                orientation_wobble_rad: 0.02,
                base_pitch_rad: 0.7, // phone in a dashboard mount
                base_roll_rad: 0.0,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 600.0,
                light_var: 250.0,
                proximity_near: false,
                mag_disturbance_ut: 9.0, // car body + electronics
            },
            ActivityKind::EScooter => MotionProfile {
                name: "e_scooter",
                gait: None,
                vibration: Some(VibrationParams {
                    lo_hz: 9.0,
                    hi_hz: 19.0,
                    amp: 0.45,
                    components: 6,
                }),
                sway_amp: 0.4, // steering corrections
                sway_freq_hz: 0.6,
                gyro_amp: 0.3,
                gyro_freq_hz: 0.7,
                orientation_wobble_rad: 0.08,
                base_pitch_rad: 1.2, // pocket while standing
                base_roll_rad: 0.15,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 500.0,
                light_var: 200.0,
                proximity_near: true,
                mag_disturbance_ut: 6.0, // motor nearby
            },
            ActivityKind::GestureHi => MotionProfile {
                name: "gesture_hi",
                gait: Some(GaitParams {
                    // A hand wave is well-modelled as a ~2.2 Hz oscillation
                    // of the forearm; no foot impacts.
                    step_freq_hz: 2.2,
                    vertical_amp: 0.8,
                    horizontal_amp: 3.5, // dominant side-to-side motion
                    impact_amp: 0.0,
                    impact_duty: 0.2,
                }),
                vibration: None,
                sway_amp: 0.2,
                sway_freq_hz: 0.3,
                gyro_amp: 3.0, // strong wrist rotation
                gyro_freq_hz: 2.2,
                orientation_wobble_rad: 0.5,
                base_pitch_rad: 0.3, // phone held in the waving hand
                base_roll_rad: 0.8,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 300.0,
                light_var: 80.0,
                proximity_near: false,
                mag_disturbance_ut: 0.0,
            },
            ActivityKind::GestureCircle => MotionProfile {
                name: "gesture_circle",
                gait: Some(GaitParams {
                    step_freq_hz: 1.0, // one circle per second
                    vertical_amp: 2.2,
                    horizontal_amp: 2.2, // equal axes -> circular path
                    impact_amp: 0.0,
                    impact_duty: 0.2,
                }),
                vibration: None,
                sway_amp: 0.15,
                sway_freq_hz: 0.2,
                gyro_amp: 1.8,
                gyro_freq_hz: 1.0,
                orientation_wobble_rad: 0.6,
                base_pitch_rad: 0.2,
                base_roll_rad: 0.4,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 300.0,
                light_var: 80.0,
                proximity_near: false,
                mag_disturbance_ut: 0.0,
            },
            ActivityKind::Jump => MotionProfile {
                name: "jump",
                gait: Some(GaitParams {
                    step_freq_hz: 1.1,
                    vertical_amp: 6.0,
                    horizontal_amp: 0.6,
                    impact_amp: 10.0, // hard landings
                    impact_duty: 0.12,
                }),
                vibration: None,
                sway_amp: 0.4,
                sway_freq_hz: 0.3,
                gyro_amp: 0.8,
                gyro_freq_hz: 1.1,
                orientation_wobble_rad: 0.2,
                base_pitch_rad: 1.2,
                base_roll_rad: 0.2,
                pressure_trend_hpa_per_s: 0.0,
                light_lux: 350.0,
                light_var: 100.0,
                proximity_near: true,
                mag_disturbance_ut: 0.0,
            },
            ActivityKind::StairsUp => MotionProfile {
                name: "stairs_up",
                gait: Some(GaitParams {
                    step_freq_hz: 1.6,
                    vertical_amp: 2.6,
                    horizontal_amp: 0.7,
                    impact_amp: 1.8,
                    impact_duty: 0.3,
                }),
                vibration: None,
                sway_amp: 0.35,
                sway_freq_hz: 0.5,
                gyro_amp: 0.7,
                gyro_freq_hz: 1.6,
                orientation_wobble_rad: 0.15,
                base_pitch_rad: 1.2,
                base_roll_rad: 0.2,
                // ~0.16 m elevation per step, 1.6 steps/s -> ~0.26 m/s;
                // 1 hPa per ~8.4 m -> ~0.031 hPa/s falling pressure.
                pressure_trend_hpa_per_s: -0.031,
                light_lux: 120.0,
                light_var: 40.0,
                proximity_near: true,
                mag_disturbance_ut: 2.0, // rebar in the stairwell
            },
        }
    }
}

impl std::fmt::Display for ActivityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Periodic body-motion (gait or gesture oscillation) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaitParams {
    /// Fundamental step/wave frequency in Hz.
    pub step_freq_hz: f64,
    /// Peak vertical linear acceleration (m/s²).
    pub vertical_amp: f64,
    /// Peak horizontal linear acceleration (m/s²).
    pub horizontal_amp: f64,
    /// Peak impact (heel-strike/landing) acceleration (m/s²).
    pub impact_amp: f64,
    /// Fraction of each period occupied by the impact pulse.
    pub impact_duty: f64,
}

/// High-frequency vibration band (engine/motor/road buzz).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VibrationParams {
    /// Low edge of the band (Hz).
    pub lo_hz: f64,
    /// High edge of the band (Hz).
    pub hi_hz: f64,
    /// Total band amplitude (m/s²).
    pub amp: f64,
    /// Number of sinusoidal components in the band.
    pub components: usize,
}

/// Full description of how an activity moves the phone. Everything the
/// signal synthesiser needs, and nothing device-specific (that comes from
/// [`crate::person::PersonProfile`] and [`crate::noise::NoiseConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionProfile {
    /// Short label for diagnostics.
    pub name: &'static str,
    /// Periodic body motion, if any.
    pub gait: Option<GaitParams>,
    /// High-frequency vibration band, if any.
    pub vibration: Option<VibrationParams>,
    /// Amplitude of slow body sway (m/s²).
    pub sway_amp: f64,
    /// Sway frequency (Hz).
    pub sway_freq_hz: f64,
    /// Peak angular velocity (rad/s).
    pub gyro_amp: f64,
    /// Dominant rotation frequency (Hz).
    pub gyro_freq_hz: f64,
    /// Amplitude of slow orientation wander (rad).
    pub orientation_wobble_rad: f64,
    /// Typical phone pitch for this context (rad).
    pub base_pitch_rad: f64,
    /// Typical phone roll for this context (rad).
    pub base_roll_rad: f64,
    /// Barometric trend (elevation change), hPa/s.
    pub pressure_trend_hpa_per_s: f64,
    /// Typical ambient light (lux).
    pub light_lux: f64,
    /// Slow light variation amplitude (lux).
    pub light_var: f64,
    /// Whether the proximity sensor is covered (phone in pocket).
    pub proximity_near: bool,
    /// Extra magnetometer disturbance (vehicle body etc.), µT.
    pub mag_disturbance_ut: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_five_matches_paper() {
        let labels: Vec<&str> = ActivityKind::BASE_FIVE.iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["drive", "e_scooter", "run", "still", "walk"]);
    }

    #[test]
    fn label_roundtrip_all_kinds() {
        for kind in ActivityKind::BASE_FIVE
            .iter()
            .chain(ActivityKind::GESTURES.iter())
        {
            assert_eq!(ActivityKind::from_label(kind.label()), Some(*kind));
        }
        assert_eq!(ActivityKind::from_label("unknown"), None);
    }

    #[test]
    fn display_is_label() {
        assert_eq!(ActivityKind::GestureHi.to_string(), "gesture_hi");
    }

    #[test]
    fn run_is_faster_and_stronger_than_walk() {
        let walk = ActivityKind::Walk.profile().gait.unwrap();
        let run = ActivityKind::Run.profile().gait.unwrap();
        assert!(run.step_freq_hz > walk.step_freq_hz);
        assert!(run.vertical_amp > walk.vertical_amp);
        assert!(run.impact_amp > walk.impact_amp);
    }

    #[test]
    fn still_has_no_periodic_motion() {
        let p = ActivityKind::Still.profile();
        assert!(p.gait.is_none());
        assert!(p.vibration.is_none());
        assert!(p.gyro_amp < 0.05);
    }

    #[test]
    fn vehicles_have_vibration_and_mag_disturbance() {
        for kind in [ActivityKind::Drive, ActivityKind::EScooter] {
            let p = kind.profile();
            assert!(p.vibration.is_some(), "{kind} should vibrate");
            assert!(p.mag_disturbance_ut > 0.0);
            assert!(p.gait.is_none());
        }
        // Vibration bands occupy distinct frequency ranges.
        let d = ActivityKind::Drive.profile().vibration.unwrap();
        let e = ActivityKind::EScooter.profile().vibration.unwrap();
        assert!(e.hi_hz < d.lo_hz);
    }

    #[test]
    fn stairs_have_negative_pressure_trend() {
        assert!(ActivityKind::StairsUp.profile().pressure_trend_hpa_per_s < 0.0);
        assert_eq!(ActivityKind::Walk.profile().pressure_trend_hpa_per_s, 0.0);
    }

    #[test]
    fn gesture_hi_is_rotation_dominant() {
        let p = ActivityKind::GestureHi.profile();
        assert!(p.gyro_amp > ActivityKind::Walk.profile().gyro_amp);
        assert_eq!(p.gait.unwrap().impact_amp, 0.0);
    }

    #[test]
    fn profiles_serialize() {
        let p = ActivityKind::Drive.profile();
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("drive"));
    }
}
