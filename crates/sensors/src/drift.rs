//! Deterministic concept-drift injection for self-healing tests.
//!
//! Faults ([`crate::faults`]) model a *broken* sensor service; drift
//! models a *changed world*: the user's gait evolves over weeks, the
//! phone is remounted from trouser pocket to arm band, or the user swaps
//! to a different handset whose IMU is mounted with another axis
//! convention and slightly different sensitivities. None of these are
//! errors — every frame is a faithful reading of the new reality — but a
//! model calibrated against the old distribution degrades until it
//! recalibrates.
//!
//! [`DriftPlan`] is the seeded, replayable description of one drift
//! scenario (the sibling of [`crate::faults::FaultPlan`]);
//! [`DriftInjector`] applies it to a stream of [`SensorFrame`]s. All
//! randomness (rotation axis, axis permutation, per-channel scale
//! shifts) is drawn once at injector construction from the plan seed, so
//! RNG consumption is a fixed function of the plan alone: the same plan
//! over the same frames replays bit-identically, and drift composes
//! freely with fault injection (apply drift first — the world changed —
//! then faults — the sensor service still misbehaves).

use crate::channels::{SensorFrame, NUM_CHANNELS};
use magneto_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Channel triples that form 3-D vectors in the device frame and
/// therefore rotate/permute together under a remount or device swap:
/// accelerometer, gyroscope, magnetometer, linear acceleration, gravity.
/// (The rotation-vector quaternion and the scalar channels are produced
/// downstream of the raw frame and are left untouched.)
const VECTOR_TRIPLES: [[usize; 3]; 5] = [
    [0, 1, 2],
    [3, 4, 5],
    [6, 7, 8],
    [9, 10, 11],
    [12, 13, 14],
];

/// Channels whose amplitude tracks movement vigour (accelerometer,
/// gyroscope, linear acceleration) — the ones a gradual gait change
/// scales. Magnetometer and gravity do not grow when the user strides
/// harder.
const MOTION_CHANNELS: [usize; 9] = [0, 1, 2, 3, 4, 5, 9, 10, 11];

/// A complete, seeded description of one concept-drift scenario. Every
/// drift run is identified by its plan; replaying the same plan yields
/// the same perturbed stream bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftPlan {
    /// Seed for the injector's frozen draws (rotation axis, permutation,
    /// scale shifts).
    pub seed: u64,
    /// Gradual gait change: target amplitude gain on motion channels
    /// (`1.0` = none). The gain ramps linearly from `1.0` at frame 0 to
    /// this value at [`gait_ramp_frames`](Self::gait_ramp_frames).
    pub gait_gain: f32,
    /// Frames over which the gait gain ramps to its target.
    pub gait_ramp_frames: u64,
    /// Abrupt sensor remount: first frame at which every vector-channel
    /// triple is rotated by a fixed seeded rotation (`None` = never).
    pub remount_frame: Option<u64>,
    /// Rotation angle of the remount, radians.
    pub remount_angle_rad: f32,
    /// Device swap: first frame at which axes are permuted (with seeded
    /// sign flips) and per-channel sensitivities shift (`None` = never).
    pub swap_frame: Option<u64>,
    /// Maximum relative per-channel scale shift of the replacement
    /// device (each channel draws its own factor in `1 ± jitter`).
    pub swap_scale_jitter: f32,
}

impl DriftPlan {
    /// A plan that drifts nothing (identity transform). Construction
    /// still draws the same frozen values as active plans, so switching
    /// drift classes on or off never desynchronises a shared seed.
    pub fn none(seed: u64) -> Self {
        DriftPlan {
            seed,
            gait_gain: 1.0,
            gait_ramp_frames: 1,
            remount_frame: None,
            remount_angle_rad: 0.0,
            swap_frame: None,
            swap_scale_jitter: 0.0,
        }
    }

    /// Gradual gait change only: amplitude ramps to `gain` over
    /// `ramp_frames` frames.
    pub fn gait_change(seed: u64, gain: f32, ramp_frames: u64) -> Self {
        DriftPlan {
            gait_gain: gain,
            gait_ramp_frames: ramp_frames.max(1),
            ..DriftPlan::none(seed)
        }
    }

    /// Abrupt sensor remount only: a fixed seeded rotation of
    /// `angle_rad` radians switches on at `frame`.
    pub fn remount(seed: u64, frame: u64, angle_rad: f32) -> Self {
        DriftPlan {
            remount_frame: Some(frame),
            remount_angle_rad: angle_rad,
            ..DriftPlan::none(seed)
        }
    }

    /// Device swap only: axis permutation + per-channel scale shift
    /// switches on at `frame`.
    pub fn device_swap(seed: u64, frame: u64, scale_jitter: f32) -> Self {
        DriftPlan {
            swap_frame: Some(frame),
            swap_scale_jitter: scale_jitter,
            ..DriftPlan::none(seed)
        }
    }

    /// An aggressive all-drifts plan for chaos sweeps: gait gain ramping
    /// to 1.6× over five seconds, a 0.35 rad remount at two seconds and
    /// a device swap (±15 % sensitivities) at four seconds.
    pub fn nasty(seed: u64) -> Self {
        DriftPlan {
            seed,
            gait_gain: 1.6,
            gait_ramp_frames: 600,
            remount_frame: Some(240),
            remount_angle_rad: 0.35,
            swap_frame: Some(480),
            swap_scale_jitter: 0.15,
        }
    }

    /// `true` when this plan perturbs nothing.
    pub fn is_identity(&self) -> bool {
        self.gait_gain == 1.0 && self.remount_frame.is_none() && self.swap_frame.is_none()
    }

    /// Build the injector that applies this plan.
    pub fn injector(&self) -> DriftInjector {
        DriftInjector::new(*self)
    }
}

/// Counts of drift actually applied so far, per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DriftStats {
    /// Frames seen.
    pub frames: u64,
    /// Frames whose motion channels were gait-scaled (gain ≠ 1).
    pub gait_scaled: u64,
    /// Frames rotated by the remount.
    pub rotated: u64,
    /// Frames permuted/rescaled by the device swap.
    pub swapped: u64,
}

impl DriftStats {
    /// Total frames touched by at least one drift class.
    pub fn drifted_frames(&self) -> u64 {
        self.gait_scaled.max(self.rotated).max(self.swapped)
    }
}

/// Applies a [`DriftPlan`] to a sequence of frames, deterministically.
#[derive(Debug, Clone)]
pub struct DriftInjector {
    plan: DriftPlan,
    /// Frames consumed (the drift clock — drift is a function of frame
    /// count, never of frame values).
    frame: u64,
    /// Remount rotation matrix (row-major), frozen at construction.
    rotation: [[f32; 3]; 3],
    /// Device-swap axis permutation: output axis `i` reads input axis
    /// `perm[i]`, flipped by `flip[i]`.
    perm: [usize; 3],
    flip: [f32; 3],
    /// Device-swap per-channel sensitivity factors.
    scales: [f32; NUM_CHANNELS],
    stats: DriftStats,
}

impl DriftInjector {
    /// Fresh injector for `plan`. All randomness is consumed here, in a
    /// fixed draw order (rotation axis → permutation → sign flips →
    /// scales), regardless of which drift classes are enabled.
    pub fn new(plan: DriftPlan) -> Self {
        let mut rng = SeededRng::new(plan.seed);
        // Remount axis: a random direction, normalised (degenerate draws
        // fall back to the z axis so the rotation is always well-formed).
        let (ax, ay, az) = (rng.normal(), rng.normal(), rng.normal());
        let norm = (ax * ax + ay * ay + az * az).sqrt();
        let axis = if norm > 1e-6 {
            [ax / norm, ay / norm, az / norm]
        } else {
            [0.0, 0.0, 1.0]
        };
        let rotation = rotation_about(axis, plan.remount_angle_rad);
        // Swap permutation: Fisher–Yates over [0, 1, 2], then sign flips.
        let mut perm = [0usize, 1, 2];
        for i in (1..3).rev() {
            perm.swap(i, rng.index(i + 1));
        }
        let mut flip = [1.0f32; 3];
        for f in &mut flip {
            if rng.chance(0.5) {
                *f = -1.0;
            }
        }
        let mut scales = [1.0f32; NUM_CHANNELS];
        for s in &mut scales {
            *s = 1.0 + rng.uniform(-plan.swap_scale_jitter, plan.swap_scale_jitter);
        }
        DriftInjector {
            plan,
            frame: 0,
            rotation,
            perm,
            flip,
            scales,
            stats: DriftStats::default(),
        }
    }

    /// The plan being applied.
    pub fn plan(&self) -> &DriftPlan {
        &self.plan
    }

    /// Drift counts so far.
    pub fn stats(&self) -> DriftStats {
        self.stats
    }

    /// The gait gain in effect at frame index `idx`.
    fn gain_at(&self, idx: u64) -> f32 {
        if self.plan.gait_gain == 1.0 {
            return 1.0;
        }
        let ramp = self.plan.gait_ramp_frames.max(1);
        let t = (idx as f32 / ramp as f32).min(1.0);
        1.0 + (self.plan.gait_gain - 1.0) * t
    }

    /// Perturb one frame. Drift never drops frames — every reading is
    /// delivered, just measured in the drifted world.
    pub fn perturb(&mut self, frame: &SensorFrame) -> SensorFrame {
        let idx = self.frame;
        self.frame += 1;
        self.stats.frames += 1;
        let mut out = frame.clone();
        // 1. Gradual gait change: amplitude gain on motion channels.
        let gain = self.gain_at(idx);
        if gain != 1.0 {
            for &c in &MOTION_CHANNELS {
                out.values[c] *= gain;
            }
            self.stats.gait_scaled += 1;
        }
        // 2. Abrupt remount: rotate every device-frame vector triple.
        if self.plan.remount_frame.is_some_and(|f| idx >= f) {
            for tri in VECTOR_TRIPLES {
                let v = [out.values[tri[0]], out.values[tri[1]], out.values[tri[2]]];
                for (i, &c) in tri.iter().enumerate() {
                    out.values[c] = self.rotation[i][0] * v[0]
                        + self.rotation[i][1] * v[1]
                        + self.rotation[i][2] * v[2];
                }
            }
            self.stats.rotated += 1;
        }
        // 3. Device swap: axis permutation with sign flips, then the
        // replacement device's per-channel sensitivities.
        if self.plan.swap_frame.is_some_and(|f| idx >= f) {
            for tri in VECTOR_TRIPLES {
                let v = [out.values[tri[0]], out.values[tri[1]], out.values[tri[2]]];
                for (i, &c) in tri.iter().enumerate() {
                    out.values[c] = self.flip[i] * v[self.perm[i]];
                }
            }
            for c in 0..NUM_CHANNELS {
                out.values[c] *= self.scales[c];
            }
            self.stats.swapped += 1;
        }
        out
    }

    /// Perturb a whole recording (same length out — drift never drops).
    pub fn apply(&mut self, frames: &[SensorFrame]) -> Vec<SensorFrame> {
        frames.iter().map(|f| self.perturb(f)).collect()
    }
}

/// Rodrigues rotation matrix about a unit `axis` by `angle` radians.
fn rotation_about(axis: [f32; 3], angle: f32) -> [[f32; 3]; 3] {
    let (s, c) = angle.sin_cos();
    let t = 1.0 - c;
    let [x, y, z] = axis;
    [
        [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
        [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
        [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityKind;
    use crate::faults::FaultPlan;
    use crate::person::PersonProfile;
    use crate::stream::{SensorStream, StreamConfig};

    fn frames(n: usize, seed: u64) -> Vec<SensorFrame> {
        let mut s = SensorStream::new(
            ActivityKind::Walk.profile(),
            PersonProfile::nominal(),
            StreamConfig::ideal(),
            SeededRng::new(seed),
        );
        (0..n).map(|_| s.next().unwrap()).collect()
    }

    #[test]
    fn replay_is_bit_identical() {
        let input = frames(900, 1);
        let plan = DriftPlan::nasty(42);
        let a = plan.injector().apply(&input);
        let b = plan.injector().apply(&input);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.timestamp.to_bits(), y.timestamp.to_bits());
            for c in 0..NUM_CHANNELS {
                assert_eq!(x.values[c].to_bits(), y.values[c].to_bits(), "channel {c}");
            }
        }
        let mut inj_a = plan.injector();
        let mut inj_b = plan.injector();
        let _ = inj_a.apply(&input);
        let _ = inj_b.apply(&input);
        assert_eq!(inj_a.stats(), inj_b.stats());
    }

    #[test]
    fn none_plan_is_identity() {
        let input = frames(300, 2);
        let plan = DriftPlan::none(7);
        assert!(plan.is_identity());
        let mut inj = plan.injector();
        let out = inj.apply(&input);
        assert_eq!(out, input);
        assert_eq!(inj.stats().frames, 300);
        assert_eq!(inj.stats().drifted_frames(), 0);
    }

    #[test]
    fn gait_ramp_is_monotone_and_capped() {
        let plan = DriftPlan::gait_change(3, 1.5, 200);
        let inj = plan.injector();
        let mut prev = 0.0f32;
        for idx in [0u64, 50, 100, 150, 200, 400] {
            let g = inj.gain_at(idx);
            assert!(g >= prev, "gain not monotone at {idx}");
            prev = g;
        }
        assert_eq!(inj.gain_at(0), 1.0);
        assert!((inj.gain_at(200) - 1.5).abs() < 1e-6);
        assert!((inj.gain_at(10_000) - 1.5).abs() < 1e-6, "gain must cap at target");
        // Applied gain shows up on motion channels, not magnetometer.
        let input = frames(400, 4);
        let out = plan.injector().apply(&input);
        let last = 399;
        assert!((out[last].values[0] - input[last].values[0] * 1.5).abs() < 1e-4);
        assert_eq!(out[last].values[6].to_bits(), input[last].values[6].to_bits());
    }

    #[test]
    fn remount_rotates_only_after_onset_and_preserves_norms() {
        let input = frames(400, 5);
        let plan = DriftPlan::remount(11, 200, 0.6);
        let out = plan.injector().apply(&input);
        // Before the onset: untouched.
        for t in 0..200 {
            assert_eq!(out[t].values, input[t].values, "frame {t} touched early");
        }
        // After: accel triple changed but its norm is preserved
        // (rotation is an isometry).
        let mut changed = 0;
        for t in 200..400 {
            let a_in = &input[t].values[0..3];
            let a_out = &out[t].values[0..3];
            if a_in != a_out {
                changed += 1;
            }
            let n_in: f32 = a_in.iter().map(|v| v * v).sum::<f32>().sqrt();
            let n_out: f32 = a_out.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n_in - n_out).abs() < 1e-3, "norm broke at {t}: {n_in} vs {n_out}");
        }
        assert!(changed > 150, "rotation changed only {changed} frames");
        // Scalar channels (pressure/light/proximity) are never rotated.
        for t in 200..400 {
            assert_eq!(out[t].values[19].to_bits(), input[t].values[19].to_bits());
        }
    }

    #[test]
    fn device_swap_permutes_and_rescales_after_onset() {
        let input = frames(300, 6);
        let plan = DriftPlan::device_swap(13, 100, 0.2);
        let mut inj = plan.injector();
        let out = inj.apply(&input);
        for t in 0..100 {
            assert_eq!(out[t].values, input[t].values);
        }
        assert_eq!(inj.stats().swapped, 200);
        // The swapped accel is a scaled, sign-flipped permutation of the
        // original triple: check one frame explicitly.
        let t = 150;
        let v = &input[t].values;
        for i in 0..3 {
            let expect = inj.flip[i] * v[inj.perm[i]] * inj.scales[i];
            assert!(
                (out[t].values[i] - expect).abs() < 1e-5,
                "axis {i}: {} vs {expect}",
                out[t].values[i]
            );
        }
    }

    #[test]
    fn composes_with_fault_injector_deterministically() {
        let input = frames(720, 8);
        let drift = DriftPlan::nasty(21);
        let faults = FaultPlan::nasty(22);
        let run = || {
            let drifted = drift.injector().apply(&input);
            faults.injector().apply(&drifted)
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            for c in 0..NUM_CHANNELS {
                assert_eq!(x.values[c].to_bits(), y.values[c].to_bits());
            }
        }
        // Drift preserved the frame count; faults dropped some.
        assert!(a.len() < input.len());
    }

    #[test]
    fn plan_serde_roundtrip() {
        for plan in [
            DriftPlan::none(1),
            DriftPlan::gait_change(2, 1.4, 300),
            DriftPlan::remount(3, 100, 0.5),
            DriftPlan::device_swap(4, 50, 0.1),
            DriftPlan::nasty(99),
        ] {
            let json = serde_json::to_string(&plan).unwrap();
            let back: DriftPlan = serde_json::from_str(&json).unwrap();
            assert_eq!(plan, back);
        }
    }
}
