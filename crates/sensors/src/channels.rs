//! The 22-channel smartphone sensor suite.
//!
//! The paper (§4.1.2): "roughly 120 sequential measurements from 22 mobile
//! sensors, e.g., accelerometer, gyroscope, and magnetometer". Android
//! exposes sensors as multi-axis channels; the canonical 22-value layout
//! reproduced here is:
//!
//! | channels | sensor | unit |
//! |---|---|---|
//! | 0–2  | accelerometer x/y/z (incl. gravity) | m/s² |
//! | 3–5  | gyroscope x/y/z | rad/s |
//! | 6–8  | magnetometer x/y/z | µT |
//! | 9–11 | linear acceleration x/y/z (gravity removed) | m/s² |
//! | 12–14| gravity x/y/z | m/s² |
//! | 15–18| rotation vector quaternion w/x/y/z | unitless |
//! | 19   | barometric pressure | hPa |
//! | 20   | ambient light | lux |
//! | 21   | proximity | cm |

use serde::{Deserialize, Serialize};

/// Number of sensor channels per frame (fixed by the paper).
pub const NUM_CHANNELS: usize = 22;

/// Nominal sampling rate in Hz ("roughly 120 sequential measurements" per
/// one-second window).
pub const SAMPLE_RATE_HZ: f64 = 120.0;

/// Identifies one of the 22 channels. The `usize` representation is the
/// channel's index in a [`SensorFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant names are self-describing
pub enum SensorChannel {
    AccelX = 0,
    AccelY = 1,
    AccelZ = 2,
    GyroX = 3,
    GyroY = 4,
    GyroZ = 5,
    MagX = 6,
    MagY = 7,
    MagZ = 8,
    LinAccX = 9,
    LinAccY = 10,
    LinAccZ = 11,
    GravityX = 12,
    GravityY = 13,
    GravityZ = 14,
    RotW = 15,
    RotX = 16,
    RotY = 17,
    RotZ = 18,
    Pressure = 19,
    Light = 20,
    Proximity = 21,
}

impl SensorChannel {
    /// All channels, in frame order.
    pub const ALL: [SensorChannel; NUM_CHANNELS] = [
        SensorChannel::AccelX,
        SensorChannel::AccelY,
        SensorChannel::AccelZ,
        SensorChannel::GyroX,
        SensorChannel::GyroY,
        SensorChannel::GyroZ,
        SensorChannel::MagX,
        SensorChannel::MagY,
        SensorChannel::MagZ,
        SensorChannel::LinAccX,
        SensorChannel::LinAccY,
        SensorChannel::LinAccZ,
        SensorChannel::GravityX,
        SensorChannel::GravityY,
        SensorChannel::GravityZ,
        SensorChannel::RotW,
        SensorChannel::RotX,
        SensorChannel::RotY,
        SensorChannel::RotZ,
        SensorChannel::Pressure,
        SensorChannel::Light,
        SensorChannel::Proximity,
    ];

    /// Index of this channel inside a [`SensorFrame`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name (used in reports and the demo UI).
    pub fn name(self) -> &'static str {
        match self {
            SensorChannel::AccelX => "accel_x",
            SensorChannel::AccelY => "accel_y",
            SensorChannel::AccelZ => "accel_z",
            SensorChannel::GyroX => "gyro_x",
            SensorChannel::GyroY => "gyro_y",
            SensorChannel::GyroZ => "gyro_z",
            SensorChannel::MagX => "mag_x",
            SensorChannel::MagY => "mag_y",
            SensorChannel::MagZ => "mag_z",
            SensorChannel::LinAccX => "linacc_x",
            SensorChannel::LinAccY => "linacc_y",
            SensorChannel::LinAccZ => "linacc_z",
            SensorChannel::GravityX => "gravity_x",
            SensorChannel::GravityY => "gravity_y",
            SensorChannel::GravityZ => "gravity_z",
            SensorChannel::RotW => "rot_w",
            SensorChannel::RotX => "rot_x",
            SensorChannel::RotY => "rot_y",
            SensorChannel::RotZ => "rot_z",
            SensorChannel::Pressure => "pressure",
            SensorChannel::Light => "light",
            SensorChannel::Proximity => "proximity",
        }
    }

    /// Physical unit string.
    pub fn unit(self) -> &'static str {
        match self {
            SensorChannel::AccelX
            | SensorChannel::AccelY
            | SensorChannel::AccelZ
            | SensorChannel::LinAccX
            | SensorChannel::LinAccY
            | SensorChannel::LinAccZ
            | SensorChannel::GravityX
            | SensorChannel::GravityY
            | SensorChannel::GravityZ => "m/s^2",
            SensorChannel::GyroX | SensorChannel::GyroY | SensorChannel::GyroZ => "rad/s",
            SensorChannel::MagX | SensorChannel::MagY | SensorChannel::MagZ => "uT",
            SensorChannel::RotW | SensorChannel::RotX | SensorChannel::RotY | SensorChannel::RotZ => {
                "quat"
            }
            SensorChannel::Pressure => "hPa",
            SensorChannel::Light => "lux",
            SensorChannel::Proximity => "cm",
        }
    }
}

/// One timestamped reading of all 22 channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorFrame {
    /// Seconds since the start of the recording session.
    pub timestamp: f64,
    /// Channel values in [`SensorChannel::ALL`] order.
    pub values: [f32; NUM_CHANNELS],
}

impl SensorFrame {
    /// A frame at `timestamp` with all channels zero.
    pub fn zeroed(timestamp: f64) -> Self {
        SensorFrame {
            timestamp,
            values: [0.0; NUM_CHANNELS],
        }
    }

    /// Read one channel.
    #[inline]
    pub fn get(&self, ch: SensorChannel) -> f32 {
        self.values[ch.index()]
    }

    /// Write one channel.
    #[inline]
    pub fn set(&mut self, ch: SensorChannel, v: f32) {
        self.values[ch.index()] = v;
    }

    /// Magnitude of the 3-axis accelerometer vector.
    pub fn accel_magnitude(&self) -> f32 {
        let (x, y, z) = (
            self.get(SensorChannel::AccelX),
            self.get(SensorChannel::AccelY),
            self.get(SensorChannel::AccelZ),
        );
        (x * x + y * y + z * z).sqrt()
    }

    /// Magnitude of the 3-axis gyroscope vector.
    pub fn gyro_magnitude(&self) -> f32 {
        let (x, y, z) = (
            self.get(SensorChannel::GyroX),
            self.get(SensorChannel::GyroY),
            self.get(SensorChannel::GyroZ),
        );
        (x * x + y * y + z * z).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_22_channels() {
        assert_eq!(NUM_CHANNELS, 22);
        assert_eq!(SensorChannel::ALL.len(), 22);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, ch) in SensorChannel::ALL.iter().enumerate() {
            assert_eq!(ch.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SensorChannel::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn units_cover_all_channels() {
        for ch in SensorChannel::ALL {
            assert!(!ch.unit().is_empty());
        }
        assert_eq!(SensorChannel::Pressure.unit(), "hPa");
        assert_eq!(SensorChannel::GyroY.unit(), "rad/s");
    }

    #[test]
    fn frame_get_set_roundtrip() {
        let mut f = SensorFrame::zeroed(1.5);
        assert_eq!(f.timestamp, 1.5);
        f.set(SensorChannel::MagY, 42.0);
        assert_eq!(f.get(SensorChannel::MagY), 42.0);
        assert_eq!(f.values[7], 42.0);
    }

    #[test]
    fn magnitudes() {
        let mut f = SensorFrame::zeroed(0.0);
        f.set(SensorChannel::AccelX, 3.0);
        f.set(SensorChannel::AccelY, 4.0);
        assert!((f.accel_magnitude() - 5.0).abs() < 1e-6);
        f.set(SensorChannel::GyroZ, 2.0);
        assert!((f.gyro_magnitude() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn frame_serde_roundtrip() {
        let mut f = SensorFrame::zeroed(0.25);
        f.set(SensorChannel::Light, 300.0);
        let json = serde_json::to_string(&f).unwrap();
        let back: SensorFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
